//! Memory-protection invariants across the whole stack.
//!
//! The paper's central correctness constraint (Section 3.3): coalescing
//! must never violate memory protection — a large page may only ever be
//! formed from base pages of a single address space, and no two address
//! spaces may ever map the same physical base frame.

use mosaic::core::FRAG_OWNER;
use mosaic::prelude::*;
use mosaic::vm::{BASE_PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE};
use std::collections::HashMap;

/// Builds a Mosaic manager with `frames` large frames and `apps`
/// registered applications, each reserving `pages` pages.
fn managers(frames: u64, apps: u16, pages: u64) -> MosaicManager {
    let mut m = MosaicManager::new(MosaicConfig::with_memory(frames * LARGE_PAGE_SIZE));
    for a in 0..apps {
        m.register_app(AppId(a));
        m.reserve(AppId(a), VirtPageNum(0), pages);
    }
    m
}

/// Asserts that no physical base frame is mapped by two address spaces.
fn assert_no_frame_sharing(m: &dyn MemoryManager, apps: u16) {
    let mut owners: HashMap<u64, AppId> = HashMap::new();
    for a in 0..apps {
        let asid = AppId(a);
        let table = match m.tables().table(asid) {
            Some(t) => t,
            None => continue,
        };
        for lpn in table.mapped_regions() {
            for (vpn, frame, _) in table.region_mappings(lpn) {
                if let Some(prev) = owners.insert(frame.raw(), asid) {
                    panic!("frame {frame} mapped by both {prev} and {asid} (page {vpn})");
                }
            }
        }
    }
}

#[test]
fn interleaved_apps_never_share_physical_frames() {
    let mut m = managers(64, 4, 4096);
    // Interleave faults from four applications across their overlapping
    // virtual ranges.
    for i in 0..2048u64 {
        for a in 0..4u16 {
            m.touch(AppId(a), VirtPageNum(i)).unwrap();
        }
    }
    assert_no_frame_sharing(&m, 4);
}

#[test]
fn coalesced_pages_are_single_owner() {
    let mut m = managers(64, 3, 2048);
    for i in 0..2048u64 {
        for a in 0..3u16 {
            m.touch(AppId(a), VirtPageNum(i)).unwrap();
        }
    }
    // Every coalesced region's 512 frames belong to exactly one app.
    for a in 0..3u16 {
        let asid = AppId(a);
        let table = m.tables().table(asid).unwrap();
        for lpn in table.mapped_regions() {
            if !table.is_coalesced(lpn) {
                continue;
            }
            for (_, frame, _) in table.region_mappings(lpn) {
                assert_eq!(
                    m.pool().owner(frame),
                    Some(asid),
                    "coalesced page of {asid} backed by a frame it does not own"
                );
            }
        }
    }
}

#[test]
fn protection_survives_dealloc_and_reuse() {
    let mut m = managers(8, 2, 2048);
    // App 0 fills most of memory, then frees it.
    for i in 0..2048u64 {
        m.touch(AppId(0), VirtPageNum(i)).unwrap();
    }
    m.deallocate(AppId(0), VirtPageNum(0), 2048);
    // App 1 takes over the recycled frames.
    for i in 0..2048u64 {
        m.touch(AppId(1), VirtPageNum(i)).unwrap();
    }
    assert_no_frame_sharing(&m, 2);
    // App 0's old translations are gone.
    let t0 = m.tables().table(AppId(0)).unwrap();
    assert_eq!(t0.mapped_base_pages(), 0);
}

#[test]
fn compaction_migrations_preserve_protection() {
    let mut m = managers(32, 2, 4096);
    for a in 0..2u16 {
        for i in 0..2048u64 {
            m.touch(AppId(a), VirtPageNum(i)).unwrap();
        }
    }
    // Deallocate most of each app's coalesced chunks to force splinter +
    // compaction with live neighbours.
    for a in 0..2u16 {
        m.deallocate(AppId(a), VirtPageNum(0), 1536 + u64::from(a) * 128);
    }
    assert_no_frame_sharing(&m, 2);
    // Surviving pages still translate and still belong to their app.
    for a in 0..2u16 {
        let asid = AppId(a);
        let first_live = 1536 + u64::from(a) * 128;
        let table = m.tables().table(asid).unwrap();
        for i in first_live..2048 {
            let t = table.translate(VirtPageNum(i).addr()).expect("survivor translates");
            assert_eq!(m.pool().owner(t.frame), Some(asid));
        }
    }
}

#[test]
fn fragmented_memory_never_leaks_frag_pages_into_translations() {
    let mut m = MosaicManager::new(MosaicConfig::with_memory(16 * LARGE_PAGE_SIZE));
    let mut rng = SimRng::from_seed(5);
    m.pre_fragment(1.0, 0.5, &mut rng);
    m.register_app(AppId(0));
    m.reserve(AppId(0), VirtPageNum(0), BASE_PAGES_PER_LARGE_PAGE * 2);
    for i in 0..BASE_PAGES_PER_LARGE_PAGE * 2 {
        m.touch(AppId(0), VirtPageNum(i)).unwrap();
    }
    // Every translated frame is owned by app 0, never by the injected
    // fragmentation data.
    let table = m.tables().table(AppId(0)).unwrap();
    for i in 0..BASE_PAGES_PER_LARGE_PAGE * 2 {
        let t = table.translate(VirtPageNum(i).addr()).unwrap();
        let owner = m.pool().owner(t.frame);
        assert_eq!(owner, Some(AppId(0)), "page {i} backed by {owner:?}");
        assert_ne!(owner, Some(FRAG_OWNER));
    }
}

#[test]
fn gpu_mmu_also_isolates_address_spaces() {
    let mut m = GpuMmuManager::new(32 * LARGE_PAGE_SIZE, 6, PageSize::Base);
    for a in 0..3u16 {
        m.register_app(AppId(a));
        m.reserve(AppId(a), VirtPageNum(0), 1024);
    }
    for i in 0..1024u64 {
        for a in 0..3u16 {
            m.touch(AppId(a), VirtPageNum(i)).unwrap();
        }
    }
    assert_no_frame_sharing(&m, 3);
}
