//! Property-based tests (proptest) on the core data structures'
//! invariants: page tables, TLBs, the frame pool, and the Mosaic
//! manager's allocation discipline.

use mosaic::prelude::*;
use mosaic::vm::{LargeFrameNum, LargePageNum, BASE_PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// Address decomposition round-trips for any address.
    #[test]
    fn address_geometry_roundtrips(raw in 0u64..(1 << 48)) {
        let a = VirtAddr(raw);
        let vpn = a.base_page();
        let lpn = a.large_page();
        prop_assert_eq!(vpn.addr().raw() + a.base_offset(), raw);
        prop_assert_eq!(lpn.addr().raw() + a.large_offset(), raw);
        prop_assert_eq!(vpn.large_page(), lpn);
        prop_assert_eq!(lpn.base_page(vpn.index_in_large()), vpn);
    }

    /// Mapping then translating returns exactly what was mapped; unmapping
    /// removes exactly that mapping.
    #[test]
    fn page_table_map_translate_unmap(
        pages in proptest::collection::btree_map(0u64..100_000, 0u64..100_000, 1..64)
    ) {
        let mut pt = PageTable::new(AppId(0));
        // Frames must be distinct: derive them from the (distinct) keys.
        for &v in pages.keys() {
            pt.map_base(VirtPageNum(v), PhysFrameNum(v + 1_000_000)).unwrap();
        }
        for &v in pages.keys() {
            let t = pt.translate(VirtPageNum(v).addr()).unwrap();
            prop_assert_eq!(t.frame, PhysFrameNum(v + 1_000_000));
            prop_assert_eq!(t.size, PageSize::Base);
        }
        for &v in pages.keys() {
            prop_assert_eq!(pt.unmap_base(VirtPageNum(v)), Some(PhysFrameNum(v + 1_000_000)));
        }
        prop_assert_eq!(pt.mapped_base_pages(), 0);
    }

    /// Coalescing never changes any translation's physical frame — the
    /// defining property of in-place coalescing.
    #[test]
    fn coalesce_preserves_translations(lpn in 0u64..512, lf in 0u64..512, probe in 0u64..512) {
        let lpn = LargePageNum(lpn);
        let lf = LargeFrameNum(lf);
        let mut pt = PageTable::new(AppId(0));
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
        let addr = lpn.base_page(probe).addr();
        let before = pt.translate(addr).unwrap();
        pt.coalesce(lpn).unwrap();
        let after = pt.translate(addr).unwrap();
        prop_assert_eq!(before.frame, after.frame);
        prop_assert_eq!(after.size, PageSize::Large);
        // Splintering restores the base view, still at the same frame.
        pt.splinter(lpn);
        let back = pt.translate(addr).unwrap();
        prop_assert_eq!(back.frame, before.frame);
        prop_assert_eq!(back.size, PageSize::Base);
    }

    /// A TLB never hits for an (asid, page) pair that was not filled, and
    /// always hits right after its own fill.
    #[test]
    fn tlb_soundness(
        fills in proptest::collection::vec((0u16..4, 0u64..1_000), 1..200),
        probe_asid in 0u16..4,
        probe_page in 0u64..1_000,
    ) {
        let mut tlb = Tlb::new(TlbConfig::paper_l1());
        let mut filled = std::collections::HashSet::new();
        for &(a, p) in &fills {
            tlb.fill(AppId(a), VirtPageNum(p).addr(), PageSize::Base);
            filled.insert((a, p));
        }
        let hit = tlb.lookup(AppId(probe_asid), VirtPageNum(probe_page).addr()).is_hit();
        if hit {
            // Hits only on genuinely filled pairs (capacity may have
            // evicted them, so the converse does not hold).
            prop_assert!(filled.contains(&(probe_asid, probe_page)));
        }
    }

    /// The TLB's occupancy never exceeds its configured capacity.
    #[test]
    fn tlb_capacity_bound(fills in proptest::collection::vec(0u64..10_000, 0..400)) {
        let cfg = TlbConfig { base_entries: 16, base_assoc: 4, large_entries: 4, large_assoc: 0, latency: 1 };
        let mut tlb = Tlb::new(cfg);
        for &p in &fills {
            tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Base);
            tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Large);
        }
        prop_assert!(tlb.occupancy() <= 20);
    }

    /// Frame-pool accounting: allocated counts match the set/cleared
    /// owners, and released frames can be taken again.
    #[test]
    fn frame_pool_accounting(ops in proptest::collection::vec((0u64..64, 0u64..512, prop::bool::ANY), 1..300)) {
        let mut pool = FramePool::new(64 * LARGE_PAGE_SIZE, 6);
        let mut model = std::collections::HashMap::new();
        for &(frame, idx, set) in &ops {
            let pfn = LargeFrameNum(frame).base_frame(idx);
            if set {
                pool.set_owner(pfn, Some(AppId(1)));
                model.insert(pfn, AppId(1));
            } else {
                pool.set_owner(pfn, None);
                model.remove(&pfn);
            }
        }
        prop_assert_eq!(pool.allocated_base_frames(), model.len() as u64);
        for (&pfn, &owner) in &model {
            prop_assert_eq!(pool.owner(pfn), Some(owner));
        }
    }

    /// Mosaic invariant under arbitrary touch sequences: every coalesced
    /// region is fully mapped, contiguous, and aligned (the In-Place
    /// Coalescer's precondition is also its postcondition).
    #[test]
    fn mosaic_coalesced_regions_are_contiguous(
        touches in proptest::collection::vec((0u16..2, 0u64..1024), 1..600)
    ) {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(64 * LARGE_PAGE_SIZE));
        for a in 0..2u16 {
            m.register_app(AppId(a));
            m.reserve(AppId(a), VirtPageNum(0), 1024);
        }
        for &(a, p) in &touches {
            m.touch(AppId(a), VirtPageNum(p)).unwrap();
        }
        for a in 0..2u16 {
            let table = m.tables().table(AppId(a)).unwrap();
            for lpn in table.mapped_regions() {
                if !table.is_coalesced(lpn) {
                    continue;
                }
                prop_assert_eq!(table.mapped_in_large(lpn), BASE_PAGES_PER_LARGE_PAGE);
                let mappings: Vec<_> = table.region_mappings(lpn).collect();
                let first = mappings[0].1;
                prop_assert_eq!(first.index_in_large(), 0, "aligned");
                for (k, &(_, frame, _)) in mappings.iter().enumerate() {
                    prop_assert_eq!(frame.raw(), first.raw() + k as u64, "contiguous");
                }
            }
        }
    }

    /// Demand paging transfers each page exactly once regardless of the
    /// touch order or repetition.
    #[test]
    fn far_faults_are_once_per_page(
        touches in proptest::collection::vec(0u64..256, 1..800)
    ) {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(16 * LARGE_PAGE_SIZE));
        m.register_app(AppId(0));
        m.reserve(AppId(0), VirtPageNum(0), 256);
        let mut unique = std::collections::HashSet::new();
        for &p in &touches {
            m.touch(AppId(0), VirtPageNum(p)).unwrap();
            unique.insert(p);
        }
        prop_assert_eq!(m.stats().far_faults, unique.len() as u64);
        prop_assert_eq!(m.stats().transferred_bytes, unique.len() as u64 * 4096);
    }

    /// The deterministic RNG's fork streams never depend on drawing order.
    #[test]
    fn rng_forks_are_order_independent(seed in any::<u64>(), a in 0u64..100, b in 0u64..100) {
        use rand::RngCore;
        let root = SimRng::from_seed(seed);
        let mut fa_first = root.fork("x", a);
        let va1 = fa_first.next_u64();
        let mut fb = root.fork("x", b);
        let _ = fb.next_u64();
        let mut fa_again = root.fork("x", a);
        prop_assert_eq!(va1, fa_again.next_u64());
    }
}
