//! Hand-rolled property-based tests on the core data structures'
//! invariants: page tables, TLBs, the frame pool, and the Mosaic
//! manager's allocation discipline.
//!
//! Each property runs many randomized cases drawn from a seeded
//! [`SimRng`], so failures reproduce exactly: the case index is the
//! fork index, and every case can be replayed in isolation.

use mosaic::prelude::*;
use mosaic::vm::{LargeFrameNum, LargePageNum, BASE_PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet};

const CASES: u64 = 64;

/// Runs `body` once per case with an independent, reproducible RNG.
fn for_each_case(label: &str, body: impl Fn(&mut SimRng)) {
    let root = SimRng::from_seed(0x04d0_5a1c_5eed);
    for case in 0..CASES {
        let mut rng = root.fork(label, case);
        body(&mut rng);
    }
}

/// Address decomposition round-trips for any address.
#[test]
fn address_geometry_roundtrips() {
    for_each_case("addr-geometry", |rng| {
        let raw = rng.below(1 << 48);
        let a = VirtAddr(raw);
        let vpn = a.base_page();
        let lpn = a.large_page();
        assert_eq!(vpn.addr().raw() + a.base_offset(), raw);
        assert_eq!(lpn.addr().raw() + a.large_offset(), raw);
        assert_eq!(vpn.large_page(), lpn);
        assert_eq!(lpn.base_page(vpn.index_in_large()), vpn);
    });
}

/// Mapping then translating returns exactly what was mapped; unmapping
/// removes exactly that mapping.
#[test]
fn page_table_map_translate_unmap() {
    for_each_case("map-translate-unmap", |rng| {
        let n = 1 + rng.below(63);
        let pages: BTreeSet<u64> = (0..n).map(|_| rng.below(100_000)).collect();
        let mut pt = PageTable::new(AppId(0));
        // Frames must be distinct: derive them from the (distinct) keys.
        for &v in &pages {
            pt.map_base(VirtPageNum(v), PhysFrameNum(v + 1_000_000)).unwrap();
        }
        for &v in &pages {
            let t = pt.translate(VirtPageNum(v).addr()).unwrap();
            assert_eq!(t.frame, PhysFrameNum(v + 1_000_000));
            assert_eq!(t.size, PageSize::Base);
        }
        for &v in &pages {
            assert_eq!(pt.unmap_base(VirtPageNum(v)), Some(PhysFrameNum(v + 1_000_000)));
        }
        assert_eq!(pt.mapped_base_pages(), 0);
    });
}

/// Coalescing never changes any translation's physical frame — the
/// defining property of in-place coalescing.
#[test]
fn coalesce_preserves_translations() {
    for_each_case("coalesce-preserves", |rng| {
        let lpn = LargePageNum(rng.below(512));
        let lf = LargeFrameNum(rng.below(512));
        let probe = rng.below(512);
        let mut pt = PageTable::new(AppId(0));
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
        let addr = lpn.base_page(probe).addr();
        let before = pt.translate(addr).unwrap();
        pt.coalesce(lpn).unwrap();
        let after = pt.translate(addr).unwrap();
        assert_eq!(before.frame, after.frame);
        assert_eq!(after.size, PageSize::Large);
        // Splintering restores the base view, still at the same frame.
        pt.splinter(lpn);
        let back = pt.translate(addr).unwrap();
        assert_eq!(back.frame, before.frame);
        assert_eq!(back.size, PageSize::Base);
    });
}

/// A TLB never hits for an (asid, page) pair that was not filled, and
/// always hits right after its own fill.
#[test]
fn tlb_soundness() {
    for_each_case("tlb-soundness", |rng| {
        let mut tlb = Tlb::new(TlbConfig::paper_l1());
        let mut filled = BTreeSet::new();
        let fills = 1 + rng.below(199);
        for _ in 0..fills {
            let a = rng.below(4) as u16;
            let p = rng.below(1_000);
            tlb.fill(AppId(a), VirtPageNum(p).addr(), PageSize::Base);
            filled.insert((a, p));
        }
        let probe_asid = rng.below(4) as u16;
        let probe_page = rng.below(1_000);
        let hit = tlb.lookup(AppId(probe_asid), VirtPageNum(probe_page).addr()).is_hit();
        if hit {
            // Hits only on genuinely filled pairs (capacity may have
            // evicted them, so the converse does not hold).
            assert!(filled.contains(&(probe_asid, probe_page)));
        }
    });
}

/// The TLB's occupancy never exceeds its configured capacity.
#[test]
fn tlb_capacity_bound() {
    for_each_case("tlb-capacity", |rng| {
        let cfg = TlbConfig {
            base_entries: 16,
            base_assoc: 4,
            large_entries: 4,
            large_assoc: 0,
            latency: 1,
        };
        let mut tlb = Tlb::new(cfg);
        for _ in 0..rng.below(400) {
            let p = rng.below(10_000);
            tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Base);
            tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Large);
        }
        assert!(tlb.occupancy() <= 20);
    });
}

/// Frame-pool accounting: allocated counts match the set/cleared
/// owners, and released frames can be taken again.
#[test]
fn frame_pool_accounting() {
    for_each_case("frame-pool-accounting", |rng| {
        let mut pool = FramePool::new(64 * LARGE_PAGE_SIZE, 6);
        let mut model = BTreeMap::new();
        let ops = 1 + rng.below(299);
        for _ in 0..ops {
            let pfn = LargeFrameNum(rng.below(64)).base_frame(rng.below(512));
            if rng.chance(0.5) {
                pool.set_owner(pfn, Some(AppId(1)));
                model.insert(pfn, AppId(1));
            } else {
                pool.set_owner(pfn, None);
                model.remove(&pfn);
            }
        }
        assert_eq!(pool.allocated_base_frames(), model.len() as u64);
        for (&pfn, &owner) in &model {
            assert_eq!(pool.owner(pfn), Some(owner));
        }
    });
}

/// Mosaic invariant under arbitrary touch sequences: every coalesced
/// region is fully mapped, contiguous, and aligned (the In-Place
/// Coalescer's precondition is also its postcondition).
#[test]
fn mosaic_coalesced_regions_are_contiguous() {
    for_each_case("mosaic-contiguous", |rng| {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(64 * LARGE_PAGE_SIZE));
        for a in 0..2u16 {
            m.register_app(AppId(a));
            m.reserve(AppId(a), VirtPageNum(0), 1024);
        }
        for _ in 0..1 + rng.below(599) {
            let a = rng.below(2) as u16;
            let p = rng.below(1024);
            m.touch(AppId(a), VirtPageNum(p)).unwrap();
        }
        for a in 0..2u16 {
            let table = m.tables().table(AppId(a)).unwrap();
            for lpn in table.mapped_regions() {
                if !table.is_coalesced(lpn) {
                    continue;
                }
                assert_eq!(table.mapped_in_large(lpn), BASE_PAGES_PER_LARGE_PAGE);
                let mappings: Vec<_> = table.region_mappings(lpn).collect();
                let first = mappings[0].1;
                assert_eq!(first.index_in_large(), 0, "aligned");
                for (k, &(_, frame, _)) in mappings.iter().enumerate() {
                    assert_eq!(frame.raw(), first.raw() + k as u64, "contiguous");
                }
            }
        }
    });
}

/// Demand paging transfers each page exactly once regardless of the
/// touch order or repetition.
#[test]
fn far_faults_are_once_per_page() {
    for_each_case("faults-once-per-page", |rng| {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(16 * LARGE_PAGE_SIZE));
        m.register_app(AppId(0));
        m.reserve(AppId(0), VirtPageNum(0), 256);
        let mut unique = BTreeSet::new();
        for _ in 0..1 + rng.below(799) {
            let p = rng.below(256);
            m.touch(AppId(0), VirtPageNum(p)).unwrap();
            unique.insert(p);
        }
        assert_eq!(m.stats().far_faults, unique.len() as u64);
        assert_eq!(m.stats().transferred_bytes, unique.len() as u64 * 4096);
    });
}

/// The deterministic RNG's fork streams never depend on drawing order.
#[test]
fn rng_forks_are_order_independent() {
    for_each_case("rng-fork-order", |rng| {
        let seed = rng.next_u64();
        let a = rng.below(100);
        let b = rng.below(100);
        let root = SimRng::from_seed(seed);
        let mut fa_first = root.fork("x", a);
        let va1 = fa_first.next_u64();
        let mut fb = root.fork("x", b);
        let _ = fb.next_u64();
        let mut fa_again = root.fork("x", a);
        assert_eq!(va1, fa_again.next_u64());
    });
}

/// Builds one instance of every manager design over `frames` large frames.
fn all_managers(frames: u64) -> Vec<Box<dyn MemoryManager>> {
    let bytes = frames * LARGE_PAGE_SIZE;
    vec![
        Box::new(MosaicManager::new(MosaicConfig::with_memory(bytes))),
        Box::new(GpuMmuManager::new(bytes, 6, PageSize::Base)),
        Box::new(GpuMmuManager::new(bytes, 6, PageSize::Large)),
        Box::new(mosaic::core::MigratingManager::new(
            bytes,
            6,
            mosaic::core::MigratingConfig::default(),
        )),
    ]
}

/// Sweeps `m`'s invariants and panics with the full report on a failure.
fn audit_clean(m: &dyn MemoryManager, when: &str) -> u64 {
    let mut report = mosaic::sim_core::AuditReport::new();
    m.audit(&mut report);
    report.assert_clean(format!("{} {when}", m.name()));
    report.checks()
}

/// `AuditInvariants` holds for every manager at every point of a random
/// alloc/free interleaving across two applications — including after
/// deallocations that drill holes into coalesced regions, and after the
/// apps exhaust physical memory.
#[test]
fn audits_hold_under_random_alloc_free_sequences() {
    for_each_case("audit-alloc-free", |rng| {
        // Small enough that OutOfMemory is actually reachable.
        let frames = 4 + rng.below(13);
        for m in &mut all_managers(frames) {
            let m = m.as_mut();
            for a in 0..2u16 {
                m.register_app(AppId(a));
                m.reserve(AppId(a), VirtPageNum(0), 2048);
            }
            assert!(audit_clean(m, "after reserve") > 0, "audit must check something");
            for step in 0..200u64 {
                let a = AppId(rng.below(2) as u16);
                match rng.below(10) {
                    // Mostly touches: grow the footprint, tolerate OOM.
                    0..=7 => match m.touch(a, VirtPageNum(rng.below(2048))) {
                        Ok(_) | Err(MemError::OutOfMemory) => {}
                        Err(e) => panic!("unexpected touch error: {e}"),
                    },
                    // Occasionally free a random subrange (may be unmapped).
                    _ => {
                        let start = rng.below(2048);
                        let pages = 1 + rng.below(512.min(2048 - start));
                        let _ = m.deallocate(a, VirtPageNum(start), pages);
                    }
                }
                if step % 20 == 19 {
                    audit_clean(m, &format!("at step {step}"));
                }
            }
            // Tear one app down completely; the survivor must still verify.
            m.deallocate(AppId(0), VirtPageNum(0), 2048);
            audit_clean(m, "after teardown");
        }
    });
}

/// The audit itself is read-only: sweeping twice yields the identical
/// report, and interleaving sweeps with traffic never changes what the
/// traffic does (footprints and stats match a sweep-free twin run).
#[test]
fn audits_are_side_effect_free_under_random_traffic() {
    for_each_case("audit-side-effect-free", |rng| {
        let seed = rng.next_u64();
        let run = |audited: bool| {
            let mut m = MosaicManager::new(MosaicConfig::with_memory(24 * LARGE_PAGE_SIZE));
            m.register_app(AppId(0));
            m.reserve(AppId(0), VirtPageNum(0), 1024);
            let mut rng = SimRng::from_seed(seed);
            for step in 0..300u64 {
                if rng.below(8) < 7 {
                    let _ = m.touch(AppId(0), VirtPageNum(rng.below(1024)));
                } else {
                    let start = rng.below(1024);
                    m.deallocate(
                        AppId(0),
                        VirtPageNum(start),
                        1 + rng.below(128.min(1024 - start)),
                    );
                }
                if audited && step % 10 == 0 {
                    audit_clean(&m, "interleaved");
                }
            }
            (m.footprint_bytes(), m.touched_bytes(), m.stats())
        };
        assert_eq!(run(true), run(false));
    });
}
