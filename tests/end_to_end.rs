//! Cross-crate integration tests: the full simulator pipeline, from
//! workload synthesis through the memory hierarchy to per-application
//! results.

use mosaic::prelude::*;

fn smoke_cfg(manager: ManagerKind) -> RunConfig {
    let mut cfg = RunConfig::new(manager).with_scale(ScaleConfig {
        ws_divisor: 32,
        mem_ops_per_warp: 60,
        warps_per_sm: 4,
        phases: 1,
    });
    cfg.system.sm_count = 8;
    cfg
}

#[test]
fn whole_pipeline_is_deterministic() {
    let w = Workload::from_names(&["HS", "GUPS"]);
    let a = run_workload(&w, smoke_cfg(ManagerKind::mosaic()));
    let b = run_workload(&w, smoke_cfg(ManagerKind::mosaic()));
    assert_eq!(a, b, "same config and seed must reproduce bit-identical results");
}

#[test]
fn different_seeds_change_results_but_not_structure() {
    let w = Workload::from_names(&["HS"]);
    let mut cfg2 = smoke_cfg(ManagerKind::GpuMmu4K);
    cfg2.seed = 43;
    let a = run_workload(&w, smoke_cfg(ManagerKind::GpuMmu4K));
    let b = run_workload(&w, cfg2);
    assert_eq!(a.apps.len(), b.apps.len());
    assert_eq!(a.apps[0].instructions, b.apps[0].instructions, "instruction count is seed-free");
    assert_ne!(a.total_cycles, b.total_cycles, "timing depends on the address streams");
}

#[test]
fn every_manager_retires_the_same_instructions() {
    let w = Workload::from_names(&["CONS", "NN"]);
    let runs = [
        run_workload(&w, smoke_cfg(ManagerKind::GpuMmu4K)),
        run_workload(&w, smoke_cfg(ManagerKind::GpuMmu2M)),
        run_workload(&w, smoke_cfg(ManagerKind::mosaic())),
        run_workload(&w, smoke_cfg(ManagerKind::GpuMmu4K).ideal_tlb()),
    ];
    for r in &runs[1..] {
        for (a, b) in r.apps.iter().zip(&runs[0].apps) {
            assert_eq!(
                a.instructions, b.instructions,
                "memory management must not change the work performed"
            );
        }
    }
}

#[test]
fn mosaic_transfers_base_pages_but_translates_large() {
    let w = Workload::from_names(&["CONS"]);
    // Enough instructions that the warps cover whole 2MB chunks, so the
    // In-Place Coalescer actually fires during the demand-paged run.
    let mut cfg = smoke_cfg(ManagerKind::mosaic());
    cfg = cfg.with_scale(ScaleConfig {
        ws_divisor: 32,
        mem_ops_per_warp: 600,
        warps_per_sm: 4,
        phases: 1,
    });
    cfg.system.sm_count = 8;
    let r = run_workload(&w, cfg);
    // Demand paging moved only 4KB base pages...
    assert_eq!(r.stats.iobus_bytes, r.stats.iobus_transfers * 4096);
    // ...while translation used coalesced 2MB pages.
    assert!(r.stats.manager.coalesces > 0);
    assert_eq!(r.stats.manager.migrations, 0, "in-place coalescing moves no data");
}

#[test]
fn gpu_mmu_2mb_transfers_large_pages() {
    let w = Workload::from_names(&["NN"]);
    let r = run_workload(&w, smoke_cfg(ManagerKind::GpuMmu2M));
    assert!(r.stats.iobus_bytes >= r.stats.iobus_transfers * 2 * 1024 * 1024);
}

#[test]
fn weighted_speedup_composes_across_crates() {
    let w = Workload::from_names(&["HS", "CONS"]);
    let cfg = smoke_cfg(ManagerKind::mosaic());
    let alone = run_alone_baselines(&w, cfg);
    assert_eq!(alone.len(), 2);
    let shared = run_workload(&w, cfg);
    let ws = weighted_speedup(&shared, &alone);
    assert!(ws.is_finite() && ws > 0.0);
    // Two applications sharing: each cannot exceed its alone performance
    // by much more than layout luck; the sum stays in a sane band.
    assert!(ws < 4.0, "weighted speedup {ws} out of band for 2 apps");
}

#[test]
fn stats_are_internally_consistent() {
    let w = Workload::from_names(&["HS", "HS", "HS"]);
    let r = run_workload(&w, smoke_cfg(ManagerKind::mosaic()));
    let s = &r.stats;
    assert!(s.l1_tlb_hits <= s.l1_tlb_total);
    assert!(s.l2_tlb_hits <= s.l2_tlb_total);
    // Every L2 probe stems from an L1 miss.
    assert!(s.l2_tlb_total <= s.l1_tlb_total - s.l1_tlb_hits);
    // Far-faults moved exactly the bytes the manager reported.
    assert_eq!(s.iobus_bytes, s.manager.transferred_bytes);
    assert_eq!(s.iobus_transfers, s.manager.far_faults);
    // Touched memory is within the footprint high-water mark.
    assert!(s.touched_bytes <= s.footprint_bytes);
    assert!(s.app_footprint_bytes <= s.footprint_bytes);
}

#[test]
fn ideal_tlb_never_walks() {
    let w = Workload::from_names(&["GUPS"]);
    let r = run_workload(&w, smoke_cfg(ManagerKind::GpuMmu4K).ideal_tlb());
    assert_eq!(r.stats.walks, 0);
    assert_eq!(r.stats.l1_tlb_total, 0, "ideal TLB is never even probed");
}

#[test]
fn preloading_eliminates_far_faults() {
    let w = Workload::from_names(&["HS", "NN"]);
    let r = run_workload(&w, smoke_cfg(ManagerKind::mosaic()).preloaded());
    assert_eq!(r.stats.iobus_transfers, 0);
    // Preloading coalesced every full chunk up front.
    assert!(r.stats.manager.coalesces > 0);
}

#[test]
fn fragmented_runs_complete_with_cac() {
    let w = Workload::from_names(&["HS"]);
    let mut cfg = smoke_cfg(ManagerKind::mosaic());
    cfg.fragmentation = Some((1.0, 0.5));
    let r = run_workload(&w, cfg);
    assert!(r.apps[0].instructions > 0, "CAC keeps the run alive under full fragmentation");
}
