//! Determinism as a contract: the same configuration and seed must
//! reproduce *bit-identical* results — down to a digest of every statistic
//! the simulator emits — no matter which manager runs, and the runtime
//! invariant auditor must be observationally free: auditing a run cannot
//! change a single bit of its outcome.
//!
//! These tests are the executable form of the policy in DESIGN.md
//! ("Determinism & invariants policy"); the static half is enforced by
//! `cargo run -p mosaic-audit -- check`.

use mosaic::prelude::*;
use mosaic_gpu::MemoryInterface;

fn tiny_cfg(manager: ManagerKind) -> RunConfig {
    let mut cfg = RunConfig::new(manager).with_scale(ScaleConfig {
        ws_divisor: 64,
        mem_ops_per_warp: 30,
        warps_per_sm: 4,
        phases: 2,
    });
    cfg.system.sm_count = 6;
    cfg
}

/// FNV-1a over the full debug rendering of a run: every counter, every
/// float (rendered exactly), every per-app result. Two digests agree iff
/// the results are bit-identical.
fn digest(r: &RunResult) -> u64 {
    let rendered = format!("{r:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn stats_digest_is_bit_identical_across_reruns_for_every_manager() {
    let w = Workload::from_names(&["HS", "CONS"]);
    for kind in [
        ManagerKind::mosaic(),
        ManagerKind::GpuMmu4K,
        ManagerKind::GpuMmu2M,
        ManagerKind::migrating(),
    ] {
        let a = run_workload(&w, tiny_cfg(kind));
        let b = run_workload(&w, tiny_cfg(kind));
        assert_eq!(digest(&a), digest(&b), "{} diverged across identical runs", a.manager);
        assert_eq!(a, b);
    }
}

#[test]
fn audited_and_unaudited_runs_are_bit_identical() {
    // The invariant sweep must be side-effect free: turning it on (or
    // cranking its cadence) cannot perturb the simulation.
    let w = Workload::from_names(&["MM", "GUPS"]);
    let base = run_workload(&w, tiny_cfg(ManagerKind::mosaic()).audited(0));
    let sparse = run_workload(&w, tiny_cfg(ManagerKind::mosaic()).audited(250_000));
    let dense = run_workload(&w, tiny_cfg(ManagerKind::mosaic()).audited(5_000));
    assert_eq!(digest(&base), digest(&sparse));
    assert_eq!(digest(&base), digest(&dense));
}

#[test]
fn fragmented_runs_are_deterministic_and_audit_clean() {
    let w = Workload::from_names(&["HS"]);
    let mut cfg = tiny_cfg(ManagerKind::mosaic()).audited(50_000);
    cfg.fragmentation = Some((1.0, 0.25));
    let a = run_workload(&w, cfg);
    let b = run_workload(&w, cfg);
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn system_audit_is_clean_and_repeatable_after_traffic() {
    let mut sys = GpuSystem::new(tiny_cfg(ManagerKind::mosaic()));
    sys.launch_app(AppId(0), VirtPageNum(0), 2048);
    let mut now = Cycle::new(0);
    for i in 0..600u64 {
        now = sys.warp_access(now, (i % 6) as usize, AppId(0), &[VirtAddr(i * 4096)]);
    }
    sys.deallocate(now, AppId(0), VirtPageNum(0), 700);
    let first = sys.audit();
    assert!(first.is_clean(), "{first}");
    assert!(first.checks() > 0, "audit must actually check something");
    // Auditing is read-only: a second sweep sees the identical state.
    let second = sys.audit();
    assert_eq!(first.checks(), second.checks());
    assert!(second.is_clean());
}
