//! `mosaic-sim` — run one multi-application workload on the simulated GPU
//! and print a full report.
//!
//! ```text
//! cargo run --release --bin mosaic-sim -- HS CONS            # Mosaic (default)
//! cargo run --release --bin mosaic-sim -- --manager gpu-mmu GUPS
//! cargo run --release --bin mosaic-sim -- --manager all HS CONS NW
//! cargo run --release --bin mosaic-sim -- --list             # the 27 applications
//! ```
//!
//! Options:
//!   --manager <mosaic|gpu-mmu|gpu-mmu-2mb|migrating|ideal|all>
//!   --preload            stage all data before cycle 0 (no demand paging)
//!   --frag <index,occ>   pre-fragment memory (Mosaic only), e.g. --frag 1.0,0.5
//!   --seed <n>           deterministic seed (default 42)
//!   --audit [cycles]     sweep runtime invariants (frame conservation,
//!                        ownership agreement, TLB coherence) every N cycles
//!                        and abort on the first violation; N defaults to
//!                        100000. Debug builds audit by default.
//!   --list               list the application roster and exit

use mosaic::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: mosaic-sim [--manager NAME] [--preload] [--frag I,O] [--seed N] [--audit [N]] \
         APP [APP...]\n\
         managers: mosaic (default), gpu-mmu, gpu-mmu-2mb, migrating, ideal, all\n\
         run with --list to see the 27 applications"
    );
    std::process::exit(2);
}

fn list_apps() -> ! {
    println!("{:<6} {:<8} {:>7} {:>22} {:>10}", "name", "suite", "WS MB", "pattern", "sensitive");
    for p in &ALL_PROFILES {
        println!(
            "{:<6} {:<8} {:>7} {:>22} {:>10}",
            p.name,
            format!("{:?}", p.suite),
            p.working_set_mb,
            format!("{:?}", p.pattern).chars().take(22).collect::<String>(),
            if p.tlb_sensitive() { "yes" } else { "no" },
        );
    }
    std::process::exit(0);
}

struct Options {
    managers: Vec<(String, RunConfig)>,
    apps: Vec<String>,
}

fn parse_args() -> Options {
    let mut manager = "mosaic".to_string();
    let mut preload = false;
    let mut frag: Option<(f64, f64)> = None;
    let mut seed = 42u64;
    let mut audit_every: Option<u64> = None;
    let mut apps = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => list_apps(),
            "--manager" => manager = args.next().unwrap_or_else(|| usage()),
            "--preload" => preload = true,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--audit" => {
                // Optional cadence operand: `--audit 50000` or bare `--audit`.
                audit_every = match args.peek().and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        args.next();
                        Some(n)
                    }
                    None => Some(RunConfig::DEFAULT_AUDIT_EVERY),
                };
            }
            "--frag" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let mut it = spec.split(',').map(|x| x.parse::<f64>());
                match (it.next(), it.next()) {
                    (Some(Ok(i)), Some(Ok(o))) => frag = Some((i, o)),
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            app => apps.push(app.to_string()),
        }
    }
    if apps.is_empty() {
        usage();
    }

    let build = |kind: ManagerKind, ideal: bool| {
        let mut cfg = RunConfig::new(kind);
        cfg.seed = seed;
        cfg.system.ideal_tlb = ideal;
        if preload {
            cfg = cfg.preloaded();
        }
        cfg.fragmentation = frag;
        cfg.audit_every = audit_every;
        cfg
    };
    let named = |name: &str| -> (String, RunConfig) {
        let cfg = match name {
            "mosaic" => build(ManagerKind::mosaic(), false),
            "gpu-mmu" => build(ManagerKind::GpuMmu4K, false),
            "gpu-mmu-2mb" => build(ManagerKind::GpuMmu2M, false),
            "migrating" => build(ManagerKind::migrating(), false),
            "ideal" => build(ManagerKind::GpuMmu4K, true),
            _ => usage(),
        };
        (name.to_string(), cfg)
    };
    let managers = if manager == "all" {
        ["gpu-mmu", "migrating", "mosaic", "ideal"].iter().map(|m| named(m)).collect()
    } else {
        vec![named(&manager)]
    };
    Options { managers, apps }
}

fn main() {
    let opts = parse_args();
    let names: Vec<&str> = opts.apps.iter().map(String::as_str).collect();
    let workload = Workload::from_names(&names);
    println!(
        "workload {} | {} SMs | seed fixed | demand paging {}",
        workload.name,
        opts.managers[0].1.system.sm_count,
        if opts.managers[0].1.paging == DemandPagingMode::OnDemand { "on" } else { "preloaded" },
    );

    let alone = run_alone_baselines(&workload, opts.managers[0].1);
    println!("\nper-application alone baselines (GPU-MMU, equal SM share):");
    for a in &alone {
        println!("  {:<8} ipc {:.3}", a.apps[0].name, a.apps[0].ipc);
    }

    for (label, cfg) in &opts.managers {
        let r = run_workload(&workload, *cfg);
        let ws = weighted_speedup(&r, &alone);
        println!("\n=== {label} ({}) ===", r.manager);
        println!("  cycles {:>12}   weighted speedup {ws:.3}", r.total_cycles);
        for a in &r.apps {
            println!(
                "  {:<8} ipc {:.3}  ({} instructions over {} cycles)",
                a.name, a.ipc, a.instructions, a.cycles
            );
        }
        let s = &r.stats;
        println!(
            "  TLB: L1 {:.1}%  L2 {:.1}%  walks {}  (mean walk {:.0} cy)",
            s.l1_tlb_hit_rate() * 100.0,
            s.l2_tlb_hit_rate() * 100.0,
            s.walks,
            s.walk_latency_mean
        );
        println!(
            "  caches: L1 {:.1}%  L2 {:.1}%  DRAM row hits {:.1}%",
            s.l1_cache_hit_rate * 100.0,
            s.l2_cache_hit_rate * 100.0,
            s.dram_row_hit_rate * 100.0
        );
        println!(
            "  paging: {} far-faults, {:.1} MB over the I/O bus (mean queue {:.0} cy, \
             mean service {:.0} cy)",
            s.iobus_transfers,
            s.iobus_bytes as f64 / (1024.0 * 1024.0),
            s.iobus_queue_mean,
            s.iobus_service_mean
        );
        if s.manager.evictions > 0 {
            println!(
                "  pressure: {} pages evicted, {:.1} MB written back, {} refaults",
                s.manager.evictions,
                s.manager.writeback_bytes as f64 / (1024.0 * 1024.0),
                s.refaults
            );
        }
        println!(
            "  manager: {} coalesces, {} splinters, {} migrations, {} emergency allocs, bloat {:.1}%",
            s.manager.coalesces,
            s.manager.splinters,
            s.manager.migrations,
            s.manager.emergency_allocations,
            s.memory_bloat * 100.0
        );
    }
}
