//! # Mosaic — a reproduction of the MICRO-50 (2017) GPU memory manager
//!
//! This crate is the facade of a full-system Rust reproduction of
//! *"Mosaic: A GPU Memory Manager with Application-Transparent Support for
//! Multiple Page Sizes"* (Ausavarungnirun et al., MICRO-50, 2017): the
//! Mosaic memory manager itself (CoCoA + In-Place Coalescer + CAC), the
//! GPU-MMU baseline it is compared against, and the entire simulation
//! substrate the paper's evaluation runs on — SM/warp execution with GTO
//! scheduling, split base/large TLBs, four-level page tables with Mosaic's
//! PTE extensions, a highly-threaded page-table walker, caches, GDDR5-like
//! DRAM, and the PCIe demand-paging path.
//!
//! ## Quick start
//!
//! Run one multi-application workload under Mosaic and compute its
//! weighted speedup against per-application alone baselines (the paper's
//! Figure 8 methodology):
//!
//! ```
//! use mosaic::prelude::*;
//!
//! let workload = Workload::from_names(&["HS", "CONS"]);
//! let mut cfg = RunConfig::new(ManagerKind::mosaic()).with_scale(ScaleConfig::smoke());
//! cfg.system.sm_count = 6;
//!
//! let alone = run_alone_baselines(&workload, cfg);
//! let mosaic = run_workload(&workload, cfg);
//! let ws = weighted_speedup(&mosaic, &alone);
//! assert!(ws > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | The paper's contribution: `MosaicManager`, `CoCoA`, `InPlaceCoalescer`, `Cac`, and the `GpuMmuManager` baseline |
//! | [`vm`] | Page tables, TLBs, the page-table walker |
//! | [`mem`] | Caches, crossbar, DRAM |
//! | [`iobus`] | The PCIe demand-paging bus |
//! | [`gpu`] | SMs, warps, GTO scheduling |
//! | [`workloads`] | The 27 synthetic applications and 235-workload suites |
//! | [`gpusim`] | Full-system assembly and the workload runner |
//! | [`experiments`] | One driver per paper figure/table |
//! | [`sim_core`] | Cycles, stats, deterministic RNG, contention primitives |

#![warn(missing_docs)]

pub use mosaic_core as core;
pub use mosaic_experiments as experiments;
pub use mosaic_gpu as gpu;
pub use mosaic_gpusim as gpusim;
pub use mosaic_iobus as iobus;
pub use mosaic_mem as mem;
pub use mosaic_sim_core as sim_core;
pub use mosaic_vm as vm;
pub use mosaic_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use mosaic_core::{
        Cac, CacConfig, CoCoA, FramePool, GpuMmuManager, InPlaceCoalescer, ManagerStats, MemError,
        MemoryManager, MgmtEvent, MosaicConfig, MosaicManager, TouchOutcome,
    };
    pub use mosaic_gpusim::{
        run_alone_baselines, run_workload, weighted_speedup, DemandPagingMode, GpuSystem,
        ManagerKind, RunConfig, RunResult, SystemConfig, SystemStats,
    };
    pub use mosaic_sim_core::{Cycle, SimRng};
    pub use mosaic_vm::{
        AppId, LargeFrameNum, LargePageNum, PageSize, PageTable, PhysAddr, PhysFrameNum, Tlb,
        TlbConfig, VirtAddr, VirtPageNum,
    };
    pub use mosaic_workloads::{
        heterogeneous_suite, homogeneous_suite, AppProfile, ScaleConfig, Workload, ALL_PROFILES,
    };
}
