//! The workload generators driving the GPU execution model, end to end
//! (without the memory hierarchy): instruction accounting, determinism,
//! and TLP behaviour.

use mosaic_gpu::{FixedLatencyMemory, Sm, SmConfig, WarpStream};
use mosaic_sim_core::SimRng;
use mosaic_workloads::{AppLayout, AppProfile, AppWarpStream, ScaleConfig, ALL_PROFILES};

fn sm_for(name: &str, warps: usize, mem_ops: u64) -> Sm {
    let profile = AppProfile::by_name(name).unwrap();
    let layout = AppLayout::build(profile, &ScaleConfig::smoke());
    let rng = SimRng::from_seed(9);
    let streams: Vec<Box<dyn WarpStream>> = (0..warps as u64)
        .map(|w| {
            Box::new(AppWarpStream::new(profile, &layout, w, warps as u64, mem_ops, &rng))
                as Box<dyn WarpStream>
        })
        .collect();
    Sm::new(0, mosaic_vm::AppId(0), SmConfig { warps, batch: 8 }, streams)
}

#[test]
fn every_profile_drives_an_sm_to_completion() {
    for p in &ALL_PROFILES {
        let mut sm = sm_for(p.name, 4, 50);
        let mut mem = FixedLatencyMemory { latency: 20 };
        let end = sm.run_to_completion(&mut mem);
        assert!(end.as_u64() > 0, "{}", p.name);
        assert_eq!(
            sm.stats().memory_instructions,
            4 * 50,
            "{}: every budgeted memory op must issue",
            p.name
        );
        assert!(!sm.is_active());
    }
}

#[test]
fn instruction_mix_matches_profile() {
    // Profiles with compute gaps interleave exactly one compute op per
    // memory op.
    let mut sm = sm_for("MM", 2, 40);
    let mut mem = FixedLatencyMemory { latency: 5 };
    sm.run_to_completion(&mut mem);
    assert_eq!(sm.stats().instructions, 2 * 40 * 2, "memory + compute pairs");
}

#[test]
fn divergent_profiles_issue_more_transactions() {
    let mut gather = sm_for("GUPS", 2, 40);
    let mut streaming = sm_for("RED", 2, 40);
    let mut mem = FixedLatencyMemory { latency: 5 };
    gather.run_to_completion(&mut mem);
    streaming.run_to_completion(&mut mem);
    assert!(
        gather.stats().transactions > streaming.stats().transactions * 4,
        "GUPS fanout 16 vs streaming fanout 1: {} vs {}",
        gather.stats().transactions,
        streaming.stats().transactions
    );
}

#[test]
fn more_warps_finish_sooner_under_memory_latency() {
    let profile = AppProfile::by_name("SCAN").unwrap();
    let layout = AppLayout::build(profile, &ScaleConfig::smoke());
    let rng = SimRng::from_seed(9);
    let run = |warps: u64| {
        let streams: Vec<Box<dyn WarpStream>> = (0..warps)
            .map(|w| {
                // Same total work, spread over more warps.
                Box::new(AppWarpStream::new(profile, &layout, w, warps, 160 / warps, &rng))
                    as Box<dyn WarpStream>
            })
            .collect();
        let mut sm =
            Sm::new(0, mosaic_vm::AppId(0), SmConfig { warps: warps as usize, batch: 8 }, streams);
        let mut mem = FixedLatencyMemory { latency: 200 };
        sm.run_to_completion(&mut mem).as_u64()
    };
    let two = run(2);
    let eight = run(8);
    assert!(eight < two, "TLP must hide latency: 8 warps {eight} vs 2 warps {two}");
}
