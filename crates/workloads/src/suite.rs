//! Workload composition: the paper's 235-workload evaluation suites.
//!
//! Section 5: homogeneous workloads are formed from multiple copies of the
//! same application (27 workloads for each concurrency level 1–5 ⇒ 135),
//! and heterogeneous workloads from random picks of distinct applications
//! (25 per concurrency level 2–5 ⇒ 100).
//!
//! [`ScaleConfig`] scales the applications down so the full suites can be
//! simulated on one machine: working sets shrink by a divisor (page
//! *counts* stay far above TLB reach, preserving all contention effects)
//! and each warp issues a bounded number of memory instructions.

use crate::profile::{AppProfile, ALL_PROFILES};
use mosaic_sim_core::SimRng;
use mosaic_vm::LARGE_PAGE_SIZE;

/// Scaling knobs for simulation tractability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Working sets are divided by this factor (paper-scale 81.5 MB
    /// average becomes ~10 MB at the default 8).
    pub ws_divisor: u32,
    /// Baseline memory instructions per warp; sweeping patterns may use
    /// more (up to 4x) so that a warp actually covers its working-set
    /// slice — the paper's applications run long enough to touch their
    /// whole working sets, repeatedly.
    pub mem_ops_per_warp: u64,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Kernel phases per application. After each phase the application
    /// deallocates its scratch region (the second half of its main
    /// buffer) and the next kernel re-allocates and re-touches it — the
    /// deallocation pattern that drives CAC between kernels
    /// (Section 4.4). `1` (the default) is the single-kernel behaviour
    /// every calibrated experiment uses.
    pub phases: u32,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig { ws_divisor: 8, mem_ops_per_warp: 300, warps_per_sm: 8, phases: 1 }
    }
}

impl ScaleConfig {
    /// A lighter configuration for quick tests and doc examples.
    pub fn smoke() -> Self {
        ScaleConfig { ws_divisor: 64, mem_ops_per_warp: 40, warps_per_sm: 8, phases: 1 }
    }

    /// Scaled working-set size for `profile`, rounded up to a whole number
    /// of 2 MB large pages (the en-masse reservation the app makes).
    pub fn ws_bytes(&self, profile: &AppProfile) -> u64 {
        let raw =
            u64::from(profile.working_set_mb) * 1024 * 1024 / u64::from(self.ws_divisor.max(1));
        raw.max(LARGE_PAGE_SIZE).div_ceil(LARGE_PAGE_SIZE) * LARGE_PAGE_SIZE
    }

    /// Memory instructions one of `total_warps` warps issues for
    /// `profile`. Sweeping patterns get enough instructions to sweep ~4
    /// slices despite hot-region redirection (capped at 4x the baseline);
    /// sampling patterns (gather/chase) cover pages probabilistically and
    /// use the baseline directly.
    pub fn mem_ops_for(&self, profile: &AppProfile, total_warps: u64) -> u64 {
        use crate::profile::AccessPattern;
        match profile.pattern {
            AccessPattern::RandomGather { .. } | AccessPattern::Chase => self.mem_ops_per_warp,
            AccessPattern::Streaming
            | AccessPattern::Strided { .. }
            | AccessPattern::Stencil { .. } => {
                // Enough instructions to sweep the slice ~4 times (the
                // warp rotates to a fresh slice after each sweep), at the
                // 512-byte sweep step, despite hot-region redirection.
                let slice_steps = self.ws_bytes(profile) / 512 / total_warps.max(1);
                let sweep = (slice_steps as f64 * 4.0 / (1.0 - profile.reuse).max(0.05)) as u64;
                sweep.clamp(self.mem_ops_per_warp, self.mem_ops_per_warp * 4)
            }
        }
    }
}

/// A multi-application workload: what runs concurrently on the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name, e.g. `"HS-HS-HS"` or `"GUPS-MM"`.
    pub name: String,
    /// The concurrently-executing applications.
    pub apps: Vec<&'static AppProfile>,
}

impl Workload {
    /// Builds a workload from application names.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown.
    pub fn from_names(names: &[&str]) -> Self {
        let apps: Vec<_> = names
            .iter()
            .map(|n| AppProfile::by_name(n).unwrap_or_else(|| panic!("unknown application {n}")))
            .collect();
        Workload { name: names.join("-"), apps }
    }

    /// Number of concurrently-executing applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Whether all applications are copies of one program.
    pub fn is_homogeneous(&self) -> bool {
        self.apps.windows(2).all(|w| w[0].name == w[1].name)
    }
}

/// The homogeneous suite for one concurrency level: 27 workloads, each
/// `copies` instances of one application (Section 5 builds these for
/// 1–5 copies).
pub fn homogeneous_suite(copies: usize) -> Vec<Workload> {
    assert!(copies >= 1, "need at least one copy");
    ALL_PROFILES
        .iter()
        .map(|p| Workload { name: vec![p.name; copies].join("-"), apps: vec![p; copies] })
        .collect()
}

/// The heterogeneous suite for one concurrency level: 25 workloads of
/// `apps_per_workload` distinct, randomly-chosen applications
/// (Section 5 builds these for 2–5 applications). Deterministic in
/// `seed`.
pub fn heterogeneous_suite(apps_per_workload: usize, seed: u64) -> Vec<Workload> {
    assert!(
        (2..=ALL_PROFILES.len()).contains(&apps_per_workload),
        "heterogeneous workloads need 2..=27 distinct applications"
    );
    let mut rng = SimRng::from_seed(seed).fork("heterogeneous-suite", apps_per_workload as u64);
    (0..25)
        .map(|_| {
            let mut pool: Vec<&'static AppProfile> = ALL_PROFILES.iter().collect();
            rng.shuffle(&mut pool);
            let mut apps: Vec<_> = pool.into_iter().take(apps_per_workload).collect();
            apps.sort_by_key(|p| p.name);
            Workload { name: apps.iter().map(|p| p.name).collect::<Vec<_>>().join("-"), apps }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_suite_shape() {
        for copies in 1..=5 {
            let suite = homogeneous_suite(copies);
            assert_eq!(suite.len(), 27);
            assert!(suite.iter().all(|w| w.app_count() == copies));
            assert!(suite.iter().all(Workload::is_homogeneous));
        }
        // 135 homogeneous workloads in total, as in the paper.
        let total: usize = (1..=5).map(|c| homogeneous_suite(c).len()).sum();
        assert_eq!(total, 135);
    }

    #[test]
    fn heterogeneous_suite_shape() {
        for n in 2..=5 {
            let suite = heterogeneous_suite(n, 7);
            assert_eq!(suite.len(), 25);
            for w in &suite {
                assert_eq!(w.app_count(), n);
                // Applications within one workload are distinct.
                let mut names: Vec<_> = w.apps.iter().map(|p| p.name).collect();
                names.sort_unstable();
                names.dedup();
                assert_eq!(names.len(), n);
            }
        }
        let total: usize = (2..=5).map(|n| heterogeneous_suite(n, 7).len()).sum();
        assert_eq!(total, 100, "100 heterogeneous workloads, as in the paper");
    }

    #[test]
    fn heterogeneous_suite_is_deterministic() {
        assert_eq!(heterogeneous_suite(3, 9), heterogeneous_suite(3, 9));
        assert_ne!(heterogeneous_suite(3, 9), heterogeneous_suite(3, 10));
    }

    #[test]
    fn scaled_working_sets_are_large_page_multiples() {
        let cfg = ScaleConfig::default();
        for p in &ALL_PROFILES {
            let ws = cfg.ws_bytes(p);
            assert_eq!(ws % LARGE_PAGE_SIZE, 0);
            assert!(ws >= LARGE_PAGE_SIZE);
        }
        // TRD (362MB) scales to ~46MB at the default divisor of 8.
        let trd = cfg.ws_bytes(AppProfile::by_name("TRD").unwrap());
        assert_eq!(trd, 46 * 1024 * 1024);
    }

    #[test]
    fn workload_from_names() {
        let w = Workload::from_names(&["HS", "CONS"]);
        assert_eq!(w.name, "HS-CONS");
        assert!(!w.is_homogeneous());
        assert!(Workload::from_names(&["HS", "HS"]).is_homogeneous());
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_name_panics() {
        let _ = Workload::from_names(&["NOPE"]);
    }
}
