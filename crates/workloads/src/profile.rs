//! The 27 application profiles.
//!
//! Application names follow the MAFIA framework's abbreviations for the
//! Parboil, SHOC, LULESH, Rodinia, and CUDA SDK programs the paper
//! evaluates. Each profile captures the properties the memory system
//! reacts to:
//!
//! * **working set** — the paper's applications touch 10–362 MB (average
//!   81.5 MB, Section 3.2); profiles carry the full-scale figure and the
//!   suite builder scales it down;
//! * **access pattern** — whether a warp's address stream is streaming,
//!   strided, stencil-shaped, a random gather, or a dependent pointer
//!   chase; this determines page-level locality, and with it TLB reach
//!   pressure (the difference between the TLB-friendly and TLB-sensitive
//!   workloads of Figure 10);
//! * **divergence** — transactions per warp memory instruction;
//! * **compute intensity** — non-memory cycles between memory
//!   instructions, which sets how much latency TLP can hide.

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Parboil (UIUC).
    Parboil,
    /// SHOC (ORNL).
    Shoc,
    /// LULESH (LLNL proxy app).
    Lulesh,
    /// Rodinia (UVA).
    Rodinia,
    /// NVIDIA CUDA SDK samples.
    CudaSdk,
}

/// Page-level access pattern of an application's dominant kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Warps sweep disjoint contiguous partitions of the working set
    /// line by line (dense linear algebra, image kernels). One
    /// transaction per instruction; excellent page locality.
    Streaming,
    /// Sequential sweep that skips `stride_pages` base pages between
    /// consecutive accesses (column-major walks, transposes). One
    /// transaction; page locality inversely proportional to the stride.
    Strided {
        /// Base pages skipped between consecutive accesses.
        stride_pages: u32,
    },
    /// 2D stencil: each instruction touches the cell's row and the rows
    /// above/below (`touches` transactions spread `row_pages` apart).
    Stencil {
        /// Transactions per instruction (routinely 3).
        touches: u32,
        /// Page distance between adjacent rows.
        row_pages: u32,
    },
    /// Indexed gather/scatter: `fanout` transactions at uniformly random
    /// pages of the working set (GUPS, histograms, graph frontiers).
    /// Maximum TLB pressure.
    RandomGather {
        /// Random transactions per instruction.
        fanout: u32,
    },
    /// Dependent chase through random pages, one transaction per
    /// instruction, no spatial locality (hash joins, tree walks).
    Chase,
}

impl AccessPattern {
    /// Mean transactions per warp memory instruction.
    pub fn mean_fanout(&self) -> f64 {
        match *self {
            AccessPattern::Streaming | AccessPattern::Chase => 1.0,
            AccessPattern::Strided { .. } => 1.0,
            AccessPattern::Stencil { touches, .. } => f64::from(touches),
            AccessPattern::RandomGather { fanout } => f64::from(fanout),
        }
    }
}

/// One application model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// MAFIA-style abbreviation (e.g. "HS" for Rodinia hotspot).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Full-scale working set in MB (before suite scaling).
    pub working_set_mb: u32,
    /// Dominant access pattern.
    pub pattern: AccessPattern,
    /// Fraction of accesses that re-touch a recent hot region (absorbed
    /// by caches/TLB): `0.0` = none, `0.9` = highly reusing.
    pub reuse: f64,
    /// Average compute cycles between memory instructions.
    pub compute_per_mem: u32,
    /// Number of *small* (sub-2 MB) allocations the application makes
    /// besides its main en-masse buffer: lookup tables, constants,
    /// parameter blocks. They follow Mosaic's unaligned base-page path,
    /// while a 2 MB-only manager burns a whole large frame on each — the
    /// source of the Section 3.2 memory bloat.
    pub small_allocs: u32,
    /// Size of each small allocation in KB.
    pub small_alloc_kb: u32,
}

impl AppProfile {
    /// Looks a profile up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<&'static AppProfile> {
        ALL_PROFILES.iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Whether this application is TLB-sensitive in the paper's sense
    /// (Figure 10): its pattern defeats page-granularity locality, so its
    /// performance moves sharply with TLB reach.
    pub fn tlb_sensitive(&self) -> bool {
        matches!(
            self.pattern,
            AccessPattern::RandomGather { .. }
                | AccessPattern::Chase
                | AccessPattern::Strided { stride_pages: 4.. }
        )
    }
}

/// The 27 applications (Section 5). Working sets span the paper's
/// 10–362 MB range with an average near its 81.5 MB figure; patterns are
/// assigned from the applications' published kernel structure.
pub const ALL_PROFILES: [AppProfile; 27] = [
    AppProfile {
        name: "3DS",
        suite: Suite::CudaSdk,
        working_set_mb: 64,
        pattern: AccessPattern::Stencil { touches: 3, row_pages: 8 },
        reuse: 0.55,
        compute_per_mem: 6,
        small_allocs: 3,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "BFS2",
        suite: Suite::Rodinia,
        working_set_mb: 96,
        pattern: AccessPattern::RandomGather { fanout: 6 },
        reuse: 0.20,
        compute_per_mem: 3,
        small_allocs: 4,
        small_alloc_kb: 192,
    },
    AppProfile {
        name: "BLK",
        suite: Suite::CudaSdk,
        working_set_mb: 48,
        pattern: AccessPattern::Streaming,
        reuse: 0.30,
        compute_per_mem: 18,
        small_allocs: 3,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "CONS",
        suite: Suite::CudaSdk,
        working_set_mb: 112,
        pattern: AccessPattern::Streaming,
        reuse: 0.45,
        compute_per_mem: 4,
        small_allocs: 2,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "FFT",
        suite: Suite::Shoc,
        working_set_mb: 80,
        pattern: AccessPattern::Strided { stride_pages: 8 },
        reuse: 0.35,
        compute_per_mem: 7,
        small_allocs: 4,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "FWT",
        suite: Suite::CudaSdk,
        working_set_mb: 64,
        pattern: AccessPattern::Strided { stride_pages: 4 },
        reuse: 0.35,
        compute_per_mem: 5,
        small_allocs: 3,
        small_alloc_kb: 192,
    },
    AppProfile {
        name: "GUPS",
        suite: Suite::Shoc,
        working_set_mb: 256,
        pattern: AccessPattern::RandomGather { fanout: 16 },
        reuse: 0.02,
        compute_per_mem: 2,
        small_allocs: 1,
        small_alloc_kb: 64,
    },
    AppProfile {
        name: "HISTO",
        suite: Suite::Parboil,
        working_set_mb: 72,
        pattern: AccessPattern::RandomGather { fanout: 4 },
        reuse: 0.40,
        compute_per_mem: 4,
        small_allocs: 5,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "HS",
        suite: Suite::Rodinia,
        working_set_mb: 40,
        pattern: AccessPattern::Stencil { touches: 3, row_pages: 4 },
        reuse: 0.60,
        compute_per_mem: 8,
        small_allocs: 2,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "JPEG",
        suite: Suite::CudaSdk,
        working_set_mb: 56,
        pattern: AccessPattern::Streaming,
        reuse: 0.50,
        compute_per_mem: 10,
        small_allocs: 6,
        small_alloc_kb: 192,
    },
    AppProfile {
        name: "LPS",
        suite: Suite::CudaSdk,
        working_set_mb: 32,
        pattern: AccessPattern::Stencil { touches: 3, row_pages: 2 },
        reuse: 0.55,
        compute_per_mem: 7,
        small_allocs: 3,
        small_alloc_kb: 96,
    },
    AppProfile {
        name: "LUD",
        suite: Suite::Rodinia,
        working_set_mb: 24,
        pattern: AccessPattern::Strided { stride_pages: 2 },
        reuse: 0.55,
        compute_per_mem: 9,
        small_allocs: 4,
        small_alloc_kb: 64,
    },
    AppProfile {
        name: "LUH",
        suite: Suite::Lulesh,
        working_set_mb: 160,
        pattern: AccessPattern::Stencil { touches: 4, row_pages: 16 },
        reuse: 0.35,
        compute_per_mem: 12,
        small_allocs: 6,
        small_alloc_kb: 512,
    },
    AppProfile {
        name: "MM",
        suite: Suite::CudaSdk,
        working_set_mb: 36,
        pattern: AccessPattern::Streaming,
        reuse: 0.70,
        compute_per_mem: 14,
        small_allocs: 2,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "MUM",
        suite: Suite::Rodinia,
        working_set_mb: 144,
        pattern: AccessPattern::Chase,
        reuse: 0.10,
        compute_per_mem: 3,
        small_allocs: 4,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "NN",
        suite: Suite::Rodinia,
        working_set_mb: 10,
        pattern: AccessPattern::Streaming,
        reuse: 0.65,
        compute_per_mem: 5,
        small_allocs: 8,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "NW",
        suite: Suite::Rodinia,
        working_set_mb: 88,
        pattern: AccessPattern::Strided { stride_pages: 6 },
        reuse: 0.25,
        compute_per_mem: 4,
        small_allocs: 3,
        small_alloc_kb: 192,
    },
    AppProfile {
        name: "QTC",
        suite: Suite::Shoc,
        working_set_mb: 120,
        pattern: AccessPattern::RandomGather { fanout: 8 },
        reuse: 0.15,
        compute_per_mem: 5,
        small_allocs: 4,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "RAY",
        suite: Suite::CudaSdk,
        working_set_mb: 52,
        pattern: AccessPattern::Chase,
        reuse: 0.30,
        compute_per_mem: 11,
        small_allocs: 5,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "RED",
        suite: Suite::Shoc,
        working_set_mb: 128,
        pattern: AccessPattern::Streaming,
        reuse: 0.15,
        compute_per_mem: 3,
        small_allocs: 1,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "SAD",
        suite: Suite::Parboil,
        working_set_mb: 76,
        pattern: AccessPattern::Stencil { touches: 2, row_pages: 6 },
        reuse: 0.45,
        compute_per_mem: 6,
        small_allocs: 4,
        small_alloc_kb: 192,
    },
    AppProfile {
        name: "SC",
        suite: Suite::Rodinia,
        working_set_mb: 104,
        pattern: AccessPattern::RandomGather { fanout: 5 },
        reuse: 0.25,
        compute_per_mem: 4,
        small_allocs: 3,
        small_alloc_kb: 256,
    },
    AppProfile {
        name: "SCAN",
        suite: Suite::Shoc,
        working_set_mb: 192,
        pattern: AccessPattern::Streaming,
        reuse: 0.10,
        compute_per_mem: 3,
        small_allocs: 2,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "SCP",
        suite: Suite::CudaSdk,
        working_set_mb: 44,
        pattern: AccessPattern::Streaming,
        reuse: 0.35,
        compute_per_mem: 5,
        small_allocs: 2,
        small_alloc_kb: 96,
    },
    AppProfile {
        name: "SPMV",
        suite: Suite::Parboil,
        working_set_mb: 168,
        pattern: AccessPattern::RandomGather { fanout: 7 },
        reuse: 0.20,
        compute_per_mem: 4,
        small_allocs: 5,
        small_alloc_kb: 192,
    },
    AppProfile {
        name: "SRAD",
        suite: Suite::Rodinia,
        working_set_mb: 60,
        pattern: AccessPattern::Stencil { touches: 3, row_pages: 5 },
        reuse: 0.50,
        compute_per_mem: 7,
        small_allocs: 3,
        small_alloc_kb: 128,
    },
    AppProfile {
        name: "TRD",
        suite: Suite::Shoc,
        working_set_mb: 362,
        pattern: AccessPattern::Streaming,
        reuse: 0.05,
        compute_per_mem: 3,
        small_allocs: 1,
        small_alloc_kb: 256,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_27_applications() {
        assert_eq!(ALL_PROFILES.len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL_PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn working_sets_match_paper_envelope() {
        let min = ALL_PROFILES.iter().map(|p| p.working_set_mb).min().unwrap();
        let max = ALL_PROFILES.iter().map(|p| p.working_set_mb).max().unwrap();
        let mean = ALL_PROFILES.iter().map(|p| f64::from(p.working_set_mb)).sum::<f64>() / 27.0;
        assert_eq!(min, 10, "paper: working sets start at 10MB");
        assert_eq!(max, 362, "paper: largest working set is 362MB");
        assert!((60.0..120.0).contains(&mean), "mean near the paper's 81.5MB, got {mean}");
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(AppProfile::by_name("hs").unwrap().name, "HS");
        assert_eq!(AppProfile::by_name("GUPS").unwrap().suite, Suite::Shoc);
        assert!(AppProfile::by_name("NOPE").is_none());
    }

    #[test]
    fn sensitivity_classification_is_pattern_driven() {
        assert!(AppProfile::by_name("GUPS").unwrap().tlb_sensitive());
        assert!(AppProfile::by_name("MUM").unwrap().tlb_sensitive());
        assert!(!AppProfile::by_name("MM").unwrap().tlb_sensitive());
        assert!(!AppProfile::by_name("CONS").unwrap().tlb_sensitive());
        // Both classes are represented, as in Figure 10.
        let sensitive = ALL_PROFILES.iter().filter(|p| p.tlb_sensitive()).count();
        assert!((5..20).contains(&sensitive));
    }

    #[test]
    fn fanout_reflects_pattern() {
        assert_eq!(AccessPattern::Streaming.mean_fanout(), 1.0);
        assert_eq!(AccessPattern::RandomGather { fanout: 16 }.mean_fanout(), 16.0);
        assert_eq!(AccessPattern::Stencil { touches: 3, row_pages: 4 }.mean_fanout(), 3.0);
    }
}

#[cfg(test)]
mod small_alloc_tests {
    use super::*;

    #[test]
    fn every_profile_declares_small_allocations_sanely() {
        for p in &ALL_PROFILES {
            assert!(p.small_allocs >= 1, "{}: apps always have some small buffers", p.name);
            assert!(p.small_alloc_kb >= 4, "{}", p.name);
            assert!(
                u64::from(p.small_alloc_kb) * 1024 < 2 * 1024 * 1024,
                "{}: small allocations must stay below one large page",
                p.name
            );
        }
    }

    #[test]
    fn small_allocation_bloat_envelope_matches_paper() {
        // The 2MB-only manager commits a whole large frame per small
        // allocation; across the roster this overhead lands in the
        // paper's reported range (+40.2% average, +367% worst case)
        // relative to the scaled main working sets.
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        for p in &ALL_PROFILES {
            let ws = f64::from(p.working_set_mb) / 8.0 * 1024.0 * 1024.0;
            let committed = f64::from(p.small_allocs) * 2.0 * 1024.0 * 1024.0;
            let touched = f64::from(p.small_allocs) * f64::from(p.small_alloc_kb) * 1024.0;
            let inflation = (ws + committed) / (ws + touched) - 1.0;
            worst = worst.max(inflation);
            sum += inflation;
        }
        let avg = sum / ALL_PROFILES.len() as f64;
        assert!((0.1..1.2).contains(&avg), "average structural bloat {avg:.2}");
        assert!(worst > 1.0, "at least one heavy-bloat application, got {worst:.2}");
    }
}
