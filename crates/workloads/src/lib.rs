//! Synthetic models of the GPGPU applications used by the Mosaic paper.
//!
//! The paper evaluates 27 applications from Parboil, SHOC, LULESH,
//! Rodinia, and the CUDA SDK, composed into 135 homogeneous and 100
//! heterogeneous multi-application workloads (235 total, Section 5). The
//! original artifact replays their SASS traces on GPGPU-Sim; this crate
//! substitutes deterministic generators that reproduce the memory-system
//! behaviour those traces exercise — working-set size, page-level access
//! pattern, divergence, reuse, and compute intensity — which is what every
//! figure in the evaluation is sensitive to.
//!
//! * [`profile`] — the 27 application profiles and their access-pattern
//!   taxonomy (streaming, strided, stencil, random-gather, pointer-chase).
//! * [`stream`] — the [`mosaic_gpu::WarpStream`] generator that turns a
//!   profile into per-warp instruction streams.
//! * [`suite`] — workload composition: the homogeneous and heterogeneous
//!   suites, and the scaling knobs that keep simulations tractable.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod layout;
pub mod profile;
pub mod stream;
pub mod suite;

pub use layout::AppLayout;
pub use profile::{AccessPattern, AppProfile, Suite, ALL_PROFILES};
pub use stream::{AppWarpStream, AppWarpStreamState};
pub use suite::{heterogeneous_suite, homogeneous_suite, ScaleConfig, Workload};
