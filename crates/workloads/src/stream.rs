//! Per-warp instruction-stream generation from application profiles.

use crate::layout::AppLayout;
use crate::profile::{AccessPattern, AppProfile};
use mosaic_gpu::{AddrList, StreamCheckpoint, WarpOp, WarpStream};
use mosaic_sim_core::SimRng;
use mosaic_vm::{VirtAddr, BASE_PAGE_SIZE};

const LINE: u64 = 128;

/// Sweep step for streaming/strided/stencil patterns. Coarser than one
/// cache line: working sets are scaled down ~8x, so per-page work is
/// scaled down too — a warp touches a page a few times and moves on,
/// keeping the pages-touched-per-instruction ratio (which is what
/// pressures TLB reach) representative of the full-scale applications.
const SWEEP_STEP: u64 = 512;

/// The address-stream generator behind one warp.
///
/// Warps partition the application's working set: streaming/strided/
/// stencil warps sweep their own contiguous slice (as GPU kernels assign
/// consecutive data to consecutive thread blocks), while gather/chase
/// warps sample the whole working set. A `reuse` fraction of accesses is
/// redirected to a small application-global hot region, which the caches
/// and TLBs absorb.
///
/// Streams are deterministic: the same construction parameters produce
/// the same instruction sequence.
///
/// # Examples
///
/// ```
/// use mosaic_workloads::{AppLayout, AppProfile, AppWarpStream, ScaleConfig};
/// use mosaic_gpu::{WarpOp, WarpStream};
/// use mosaic_sim_core::SimRng;
///
/// let profile = AppProfile::by_name("MM").unwrap();
/// let layout = AppLayout::build(profile, &ScaleConfig::smoke());
/// let rng = SimRng::from_seed(1);
/// let mut warp = AppWarpStream::new(profile, &layout, 0, 64, 10, &rng);
/// // First op is memory (kernels load before they compute).
/// assert!(matches!(warp.next_op(), WarpOp::Memory { .. }));
/// ```
#[derive(Debug)]
pub struct AppWarpStream {
    profile: &'static AppProfile,
    layout: AppLayout,
    base: VirtAddr,
    ws_bytes: u64,
    /// Start and length of this warp's slice for sweeping patterns.
    slice_start: u64,
    slice_len: u64,
    cursor: u64,
    /// Position in the tour over the small allocations' pages.
    cold_cursor: u64,
    remaining_mem_ops: u64,
    /// `true` when the next op should be the compute gap.
    pending_compute: bool,
    rng: SimRng,
}

/// Fraction of memory instructions that touch one of the application's
/// small allocations in sequence (initialization reads, parameter
/// refreshes) — enough to page all of them in over a run.
const COLD_TOUR_PROB: f64 = 0.01;

impl AppWarpStream {
    /// Creates the stream for warp `warp_idx` of `total_warps`, over a
    /// working set of `ws_bytes` starting at `base`, issuing
    /// `mem_ops` memory instructions before exiting.
    ///
    /// # Panics
    ///
    /// Panics if `total_warps` is zero or `ws_bytes < 4096`.
    pub fn new(
        profile: &'static AppProfile,
        layout: &AppLayout,
        warp_idx: u64,
        total_warps: u64,
        mem_ops: u64,
        rng: &SimRng,
    ) -> Self {
        assert!(total_warps > 0, "need at least one warp");
        let base = layout.main_base;
        let ws_bytes = layout.main_bytes;
        assert!(ws_bytes >= BASE_PAGE_SIZE, "working set smaller than one page");
        let slice_len = (ws_bytes / total_warps).max(LINE);
        let slice_start = (warp_idx * slice_len) % ws_bytes;
        AppWarpStream {
            profile,
            layout: layout.clone(),
            base,
            ws_bytes,
            slice_start,
            slice_len,
            cursor: 0,
            // Stagger the tours so warps collectively cover the small
            // allocations quickly.
            cold_cursor: warp_idx * 7,
            remaining_mem_ops: mem_ops,
            pending_compute: false,
            rng: rng.fork(profile.name, warp_idx),
        }
    }

    /// The profile this stream models.
    pub fn profile(&self) -> &'static AppProfile {
        self.profile
    }

    fn addr(&self, offset: u64) -> VirtAddr {
        VirtAddr(self.base.raw() + (offset % self.ws_bytes))
    }

    /// The hot region: the application's first small allocation (lookup
    /// tables, constants — shared by all warps, so it stays cache- and
    /// TLB-resident), or the first 32 pages of the main buffer for the
    /// rare application without small allocations.
    fn hot_addr(&mut self) -> VirtAddr {
        if self.layout.small_count > 0 {
            // Only the head of the buffer is hot (the actively-read
            // constants); the rest is paged in by the cold tour.
            let hot_span = self.layout.small_bytes.min(16 * BASE_PAGE_SIZE);
            let base = self.layout.small_base(0);
            let off = self.rng.below(hot_span / LINE) * LINE;
            VirtAddr(base.raw() + off)
        } else {
            let hot_bytes = (32 * BASE_PAGE_SIZE).min(self.ws_bytes);
            let off = self.rng.below(hot_bytes / LINE) * LINE;
            self.addr(off)
        }
    }

    /// The next stop of the cold tour over all small allocations.
    fn cold_addr(&mut self) -> VirtAddr {
        let page = self.layout.small_page(self.cold_cursor);
        self.cold_cursor += 1;
        VirtAddr(page.raw() + self.rng.below(BASE_PAGE_SIZE / LINE) * LINE)
    }

    /// Advances the sweep cursor; when a slice has been fully swept the
    /// warp moves on to a fresh slice elsewhere in the working set — the
    /// way successive thread blocks process successive data tiles. This
    /// keeps the per-SM page footprint *growing* over the run, which is
    /// what pressures TLB reach in real GPGPU kernels (a static per-warp
    /// slice would wrongly stay TLB-resident forever).
    fn advance(&mut self, step: u64) -> u64 {
        let pos = self.slice_start + self.cursor % self.slice_len;
        self.cursor += step;
        if self.cursor >= self.slice_len {
            self.cursor %= self.slice_len;
            // Jump far enough that consecutive slices of one warp do not
            // overlap slices of its neighbours for a long time.
            self.slice_start =
                (self.slice_start + self.slice_len * 61 + BASE_PAGE_SIZE) % self.ws_bytes;
        }
        pos
    }

    fn gen_addresses(&mut self) -> AddrList {
        if self.layout.small_count > 0 && self.rng.chance(COLD_TOUR_PROB) {
            return AddrList::one(self.cold_addr());
        }
        if self.rng.chance(self.profile.reuse) {
            return AddrList::one(self.hot_addr());
        }
        match self.profile.pattern {
            AccessPattern::Streaming => {
                let pos = self.advance(SWEEP_STEP);
                AddrList::one(self.addr(pos))
            }
            AccessPattern::Strided { stride_pages } => {
                let pos = self.advance(u64::from(stride_pages) * BASE_PAGE_SIZE + SWEEP_STEP);
                AddrList::one(self.addr(pos))
            }
            AccessPattern::Stencil { touches, row_pages } => {
                let center = self.advance(SWEEP_STEP);
                let pitch = u64::from(row_pages) * BASE_PAGE_SIZE;
                (0..u64::from(touches))
                    .map(|t| {
                        // Rows ..., -1, 0, +1, ... around the centre.
                        let signed = t as i64 - i64::from(touches) / 2;
                        let off = center as i64 + signed * pitch as i64;
                        self.addr(off.rem_euclid(self.ws_bytes as i64) as u64)
                    })
                    .collect()
            }
            AccessPattern::RandomGather { fanout } => (0..fanout)
                .map(|_| {
                    let off = self.rng.below(self.ws_bytes / LINE) * LINE;
                    self.addr(off)
                })
                .collect(),
            AccessPattern::Chase => {
                let off = self.rng.below(self.ws_bytes / LINE) * LINE;
                AddrList::one(self.addr(off))
            }
        }
    }
}

impl WarpStream for AppWarpStream {
    fn next_op(&mut self) -> WarpOp {
        // The compute that trails the final memory op still issues before
        // the warp exits.
        if self.pending_compute {
            self.pending_compute = false;
            // Sweeping patterns consume SWEEP_STEP bytes per memory
            // instruction, so the profile's per-128B compute intensity is
            // charged for the whole step; sampling patterns touch one
            // line per transaction.
            let lines = match self.profile.pattern {
                AccessPattern::Streaming
                | AccessPattern::Strided { .. }
                | AccessPattern::Stencil { .. } => (SWEEP_STEP / LINE) as u32,
                AccessPattern::RandomGather { .. } | AccessPattern::Chase => 1,
            };
            return WarpOp::Compute { cycles: (self.profile.compute_per_mem * lines).max(1) };
        }
        if self.remaining_mem_ops == 0 {
            return WarpOp::Exit;
        }
        self.remaining_mem_ops -= 1;
        self.pending_compute = self.profile.compute_per_mem > 0;
        WarpOp::Memory { addresses: self.gen_addresses() }
    }
}

/// The mutable cursor of one [`AppWarpStream`]: everything `next_op`
/// changes. `profile`, `layout`, `base`, `ws_bytes`, and `slice_len`
/// are fixed at construction, so restoring these six fields onto the
/// same stream replays the generator exactly — the contract the
/// speculative engine's step rollback depends on (pinned by
/// `checkpoint_restore_replays_identically` below).
#[derive(Debug, Clone)]
pub struct AppWarpStreamState {
    slice_start: u64,
    cursor: u64,
    cold_cursor: u64,
    remaining_mem_ops: u64,
    pending_compute: bool,
    rng: SimRng,
}

impl StreamCheckpoint for AppWarpStream {
    type State = AppWarpStreamState;

    fn checkpoint(&self) -> AppWarpStreamState {
        AppWarpStreamState {
            slice_start: self.slice_start,
            cursor: self.cursor,
            cold_cursor: self.cold_cursor,
            remaining_mem_ops: self.remaining_mem_ops,
            pending_compute: self.pending_compute,
            rng: self.rng.clone(),
        }
    }

    fn restore(&mut self, state: &AppWarpStreamState) {
        self.slice_start = state.slice_start;
        self.cursor = state.cursor;
        self.cold_cursor = state.cold_cursor;
        self.remaining_mem_ops = state.remaining_mem_ops;
        self.pending_compute = state.pending_compute;
        self.rng = state.rng.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn stream(name: &str, ws: u64, warp: u64, ops: u64) -> AppWarpStream {
        let profile = AppProfile::by_name(name).unwrap();
        let layout = AppLayout {
            main_base: VirtAddr(0x1000_0000),
            main_bytes: ws,
            small_count: u64::from(profile.small_allocs),
            small_bytes: u64::from(profile.small_alloc_kb) * 1024,
        };
        AppWarpStream::new(profile, &layout, warp, 64, ops, &SimRng::from_seed(42))
    }

    fn collect_pages(s: &mut AppWarpStream, max_ops: usize) -> HashSet<u64> {
        let mut pages = HashSet::new();
        for _ in 0..max_ops {
            match s.next_op() {
                WarpOp::Memory { addresses } => {
                    pages.extend(addresses.iter().map(|a| a.base_page().raw()));
                }
                WarpOp::Compute { .. } => {}
                WarpOp::Exit => break,
            }
        }
        pages
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = stream("GUPS", 8 << 20, 3, 50);
        let mut b = stream("GUPS", 8 << 20, 3, 50);
        for _ in 0..150 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_warps_differ() {
        let mut a = stream("GUPS", 8 << 20, 0, 50);
        let mut b = stream("GUPS", 8 << 20, 1, 50);
        let pa = collect_pages(&mut a, 200);
        let pb = collect_pages(&mut b, 200);
        assert_ne!(pa, pb);
    }

    #[test]
    fn exits_after_budget() {
        let mut s = stream("MM", 4 << 20, 0, 5);
        let mut mem_ops = 0;
        for _ in 0..100 {
            match s.next_op() {
                WarpOp::Memory { .. } => mem_ops += 1,
                WarpOp::Exit => break,
                _ => {}
            }
        }
        assert_eq!(mem_ops, 5);
        assert_eq!(s.next_op(), WarpOp::Exit);
    }

    #[test]
    fn streaming_touches_few_pages_gather_touches_many() {
        let ws = 16 << 20;
        let mut streaming = stream("MM", ws, 0, 300);
        let mut gather = stream("GUPS", ws, 0, 300);
        let sp = collect_pages(&mut streaming, 1000).len();
        let gp = collect_pages(&mut gather, 1000).len();
        assert!(
            gp > sp * 4,
            "gather should spread over far more pages: streaming={sp}, gather={gp}"
        );
    }

    #[test]
    fn addresses_stay_inside_the_layout() {
        let ws = 4 << 20;
        for name in ["MM", "GUPS", "HS", "FFT", "MUM"] {
            let mut s = stream(name, ws, 7, 100);
            let layout = s.layout.clone();
            for _ in 0..300 {
                if let WarpOp::Memory { addresses } = s.next_op() {
                    for a in addresses.iter() {
                        let in_main = a.raw() >= 0x1000_0000 && a.raw() < 0x1000_0000 + ws;
                        let in_small = (0..layout.small_count).any(|i| {
                            let b = layout.small_base(i).raw();
                            a.raw() >= b && a.raw() < b + layout.small_bytes
                        });
                        assert!(in_main || in_small, "{name}: {a} outside the layout");
                    }
                }
            }
        }
    }

    #[test]
    fn cold_tour_pages_in_all_small_allocations() {
        // Plenty of ops: a single warp's 1% tour must still cover every
        // small page (in real runs hundreds of warps share the tour).
        let mut s = stream("HS", 4 << 20, 0, 20_000);
        let layout = s.layout.clone();
        let pages = collect_pages(&mut s, 60_000);
        for k in 0..layout.small_pages() {
            let p = layout.small_page(k).base_page().raw();
            assert!(pages.contains(&p), "small page {k} never touched");
        }
    }

    #[test]
    fn compute_gaps_follow_memory_ops() {
        let mut s = stream("MM", 4 << 20, 0, 3);
        assert!(matches!(s.next_op(), WarpOp::Memory { .. }));
        assert!(matches!(s.next_op(), WarpOp::Compute { .. }));
        assert!(matches!(s.next_op(), WarpOp::Memory { .. }));
    }

    /// The checkpoint captures *all* mutable state: restore and replay
    /// must reproduce the exact op sequence, for every profile shape
    /// (sweeping, gather, chase — each exercises different cursors).
    #[test]
    fn checkpoint_restore_replays_identically() {
        for name in ["MM", "GUPS", "HS", "MUM"] {
            let mut s = stream(name, 8 << 20, 2, 500);
            // Burn in so cursors and RNG are mid-flight.
            for _ in 0..137 {
                s.next_op();
            }
            let saved = s.checkpoint();
            let reference: Vec<WarpOp> = (0..200).map(|_| s.next_op()).collect();
            s.restore(&saved);
            let replay: Vec<WarpOp> = (0..200).map(|_| s.next_op()).collect();
            assert_eq!(reference, replay, "{name}: restore must replay the stream exactly");
        }
    }

    #[test]
    fn stencil_produces_multiple_transactions() {
        let mut s = stream("HS", 8 << 20, 0, 50);
        let mut found = false;
        for _ in 0..200 {
            if let WarpOp::Memory { addresses } = s.next_op() {
                if addresses.len() == 3 {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "HS (3-point stencil) should emit 3-transaction instructions");
    }
}
