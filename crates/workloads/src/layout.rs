//! Per-application virtual-memory layout.
//!
//! Real GPGPU applications make one (or a few) huge en-masse allocations
//! — the behaviour CoCoA exploits — plus a number of *small* allocations:
//! lookup tables, filter constants, parameter blocks. The small ones are
//! what makes 2 MB-only management bloat memory (each costs a whole large
//! frame, Section 3.2) while Mosaic serves them from its per-application
//! free base page lists without waste.
//!
//! [`AppLayout`] places the main buffer at a 2 MB-aligned base and each
//! small allocation in its own 2 MB-aligned virtual region (so a 2 MB-only
//! manager demonstrably burns one frame per allocation).

use crate::profile::AppProfile;
use crate::suite::ScaleConfig;
use mosaic_vm::{VirtAddr, VirtPageNum, BASE_PAGE_SIZE, LARGE_PAGE_SIZE};

/// Virtual base of the main en-masse buffer.
pub const MAIN_BASE: VirtAddr = VirtAddr(0x1000_0000);
/// Virtual base of the small-allocation area; allocation `i` starts at
/// `SMALL_BASE + i * 2 MB`.
pub const SMALL_BASE: VirtAddr = VirtAddr(0x8000_0000);

/// One application's virtual allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppLayout {
    /// Base of the main buffer.
    pub main_base: VirtAddr,
    /// Size of the main buffer (a multiple of 2 MB).
    pub main_bytes: u64,
    /// Number of small allocations.
    pub small_count: u64,
    /// Size of each small allocation (a multiple of 4 KB, below 2 MB).
    pub small_bytes: u64,
}

impl AppLayout {
    /// Builds the layout for `profile` at `scale`.
    pub fn build(profile: &AppProfile, scale: &ScaleConfig) -> Self {
        let small_bytes = (u64::from(profile.small_alloc_kb) * 1024)
            .clamp(BASE_PAGE_SIZE, LARGE_PAGE_SIZE - BASE_PAGE_SIZE)
            / BASE_PAGE_SIZE
            * BASE_PAGE_SIZE;
        AppLayout {
            main_base: MAIN_BASE,
            main_bytes: scale.ws_bytes(profile),
            small_count: u64::from(profile.small_allocs),
            small_bytes,
        }
    }

    /// Base address of small allocation `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= small_count`.
    pub fn small_base(&self, i: u64) -> VirtAddr {
        debug_assert!(i < self.small_count);
        VirtAddr(SMALL_BASE.raw() + i * LARGE_PAGE_SIZE)
    }

    /// All reservations the application makes at launch, as
    /// `(first page, page count)` pairs — the main buffer first.
    pub fn reservations(&self) -> Vec<(VirtPageNum, u64)> {
        let mut r = vec![(self.main_base.base_page(), self.main_bytes / BASE_PAGE_SIZE)];
        for i in 0..self.small_count {
            r.push((self.small_base(i).base_page(), self.small_bytes / BASE_PAGE_SIZE));
        }
        r
    }

    /// Total bytes of small allocations.
    pub fn total_small_bytes(&self) -> u64 {
        self.small_count * self.small_bytes
    }

    /// Total pages across all reservations.
    pub fn total_pages(&self) -> u64 {
        (self.main_bytes + self.total_small_bytes()) / BASE_PAGE_SIZE
    }

    /// Total small pages.
    pub fn small_pages(&self) -> u64 {
        self.total_small_bytes() / BASE_PAGE_SIZE
    }

    /// The `k`-th small page (in allocation-major order), for coverage
    /// tours.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no small allocations.
    pub fn small_page(&self, k: u64) -> VirtAddr {
        assert!(self.small_count > 0, "layout has no small allocations");
        let per = self.small_bytes / BASE_PAGE_SIZE;
        let k = k % (self.small_count * per);
        let (alloc, page) = (k / per, k % per);
        VirtAddr(self.small_base(alloc).raw() + page * BASE_PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(name: &str) -> AppLayout {
        AppLayout::build(AppProfile::by_name(name).unwrap(), &ScaleConfig::default())
    }

    #[test]
    fn main_buffer_is_2mb_aligned_and_sized() {
        let l = layout("HS");
        assert_eq!(l.main_base.raw() % LARGE_PAGE_SIZE, 0);
        assert_eq!(l.main_bytes % LARGE_PAGE_SIZE, 0);
    }

    #[test]
    fn small_allocations_each_get_their_own_2mb_region() {
        let l = layout("NN");
        assert_eq!(l.small_count, 8);
        let mut regions: Vec<u64> =
            (0..l.small_count).map(|i| l.small_base(i).large_page().raw()).collect();
        regions.dedup();
        assert_eq!(regions.len(), 8, "one distinct 2MB region per allocation");
        assert!(l.small_bytes < LARGE_PAGE_SIZE);
        assert_eq!(l.small_bytes % BASE_PAGE_SIZE, 0);
    }

    #[test]
    fn reservations_cover_main_plus_smalls() {
        let l = layout("HS");
        let r = l.reservations();
        assert_eq!(r.len(), 1 + l.small_count as usize);
        assert_eq!(r[0].0, l.main_base.base_page());
        let pages: u64 = r.iter().map(|&(_, n)| n).sum();
        assert_eq!(pages, l.total_pages());
    }

    #[test]
    fn small_page_tour_walks_every_page() {
        let l = layout("HS"); // 2 allocations x 128KB = 64 pages
        let total = l.small_pages();
        let mut seen = std::collections::HashSet::new();
        for k in 0..total {
            seen.insert(l.small_page(k));
        }
        assert_eq!(seen.len() as u64, total);
        // The tour wraps.
        assert_eq!(l.small_page(total), l.small_page(0));
    }

    #[test]
    fn small_and_main_spaces_are_disjoint() {
        let l = layout("TRD");
        assert!(l.main_base.raw() + l.main_bytes <= SMALL_BASE.raw());
    }
}
