//! Mutation tripwires: every rule has a minimal corpus snippet that MUST
//! fire it, and a near-identical clean twin that MUST NOT. If a rule's
//! implementation is weakened, stubbed, or its wiring into
//! `scan_workspace` is lost, the corresponding case here fails — the
//! corpus is the mutation detector.

use mosaic_audit::{rules::RULES, Workspace};
use std::collections::BTreeSet;

fn rules_hit(sources: &[(&str, &str)]) -> BTreeSet<&'static str> {
    Workspace::from_sources(sources).scan().into_iter().map(|f| f.rule).collect()
}

fn assert_fires(rule: &str, sources: &[(&str, &str)]) {
    let hit = rules_hit(sources);
    assert!(
        hit.contains(rule),
        "`{rule}` did not fire on its tripwire corpus (got {hit:?}) — was the rule weakened?"
    );
}

fn assert_silent(sources: &[(&str, &str)]) {
    let findings = Workspace::from_sources(sources).scan();
    assert!(findings.is_empty(), "clean twin produced findings: {findings:#?}");
}

#[test]
fn every_rule_has_a_live_tripwire() {
    // Meta-check: the cases below must cover the whole rule set, so a
    // new rule cannot ship without a tripwire.
    let covered: BTreeSet<&str> = [
        "hashmap-in-sim",
        "wall-clock",
        "thread-rng",
        "panic-in-hotpath",
        "lossy-cast",
        "banned-alias",
        "interior-mutability",
        "relaxed-atomic",
        "telemetry-gate",
    ]
    .into();
    let all: BTreeSet<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(covered, all, "tripwire corpus out of sync with RULES");
}

#[test]
fn hashmap_in_sim_fires_and_respects_crate_boundary() {
    assert_fires("hashmap-in-sim", &[("crates/vm/src/x.rs", "use std::collections::HashMap;\n")]);
    assert_fires("hashmap-in-sim", &[("crates/mem/src/x.rs", "fn f() { let s: HashSet<u64>; }\n")]);
    assert_silent(&[("crates/workloads/src/x.rs", "use std::collections::HashMap;\n")]);
    assert_silent(&[("crates/vm/src/x.rs", "use std::collections::BTreeMap;\n")]);
}

#[test]
fn wall_clock_fires_in_cycle_crates_only() {
    assert_fires("wall-clock", &[("crates/gpu/src/x.rs", "fn f() { Instant::now(); }\n")]);
    assert_fires("wall-clock", &[("crates/iobus/src/x.rs", "use std::time::SystemTime;\n")]);
    assert_silent(&[("crates/bench/src/x.rs", "fn f() { Instant::now(); }\n")]);
}

#[test]
fn thread_rng_fires_everywhere() {
    assert_fires("thread-rng", &[("crates/workloads/src/x.rs", "fn f() { thread_rng(); }\n")]);
    assert_fires("thread-rng", &[("crates/vm/src/x.rs", "fn f() { Rng::from_entropy(); }\n")]);
    assert_silent(&[("crates/workloads/src/x.rs", "fn f() { SimRng::from_seed(7); }\n")]);
}

#[test]
fn panic_in_hotpath_follows_the_computed_closure() {
    let reachable = [
        (
            "crates/gpu/src/sm.rs",
            "impl Sm { pub fn advance(&mut self, t: &mut Tlb) { t.lookup(); } }\n",
        ),
        ("crates/vm/src/tlb.rs", "impl Tlb { pub fn lookup(&mut self) { self.x.unwrap(); } }\n"),
    ];
    assert_fires("panic-in-hotpath", &reachable);
    // Same panic, no path from an entry point: must not fire.
    let unreachable = [
        ("crates/gpu/src/sm.rs", "impl Sm { pub fn advance(&mut self) {} }\n"),
        ("crates/vm/src/tlb.rs", "impl Tlb { pub fn lookup(&mut self) { self.x.unwrap(); } }\n"),
    ];
    assert_silent(&unreachable);
    // Macro panics count too.
    assert_fires(
        "panic-in-hotpath",
        &[("crates/gpu/src/sm.rs", "impl Sm { pub fn advance(&mut self) { panic!(\"x\"); } }\n")],
    );
}

#[test]
fn lossy_cast_fires_on_narrowing_only() {
    assert_fires(
        "lossy-cast",
        &[("crates/mem/src/x.rs", "fn f(a: PhysAddr) -> u32 { a.raw() as u32 }\n")],
    );
    assert_silent(&[("crates/mem/src/x.rs", "fn f(a: PhysAddr) -> u64 { a.raw() as u64 }\n")]);
}

#[test]
fn banned_alias_fires_on_rename_reexport_and_glob() {
    // In-file rename.
    assert_fires(
        "banned-alias",
        &[("crates/vm/src/x.rs", "use std::collections::HashMap as Map;\n")],
    );
    // Cross-crate re-export chain: the cycle crate never writes HashMap.
    assert_fires(
        "banned-alias",
        &[
            ("crates/workloads/src/lib.rs", "pub use std::collections::HashMap as FastMap;\n"),
            ("crates/vm/src/x.rs", "use mosaic_workloads::FastMap;\nstruct S { m: FastMap }\n"),
        ],
    );
    // Glob over a banned module.
    assert_fires("banned-alias", &[("crates/vm/src/x.rs", "use std::collections::*;\n")]);
    // Benign renames stay silent.
    assert_silent(&[("crates/vm/src/x.rs", "use std::collections::BTreeMap as Map;\n")]);
    assert_silent(&[("crates/workloads/src/x.rs", "use std::collections::HashMap as Map;\n")]);
}

#[test]
fn interior_mutability_fires_on_cells_and_static_mut() {
    assert_fires("interior-mutability", &[("crates/vm/src/x.rs", "use std::cell::RefCell;\n")]);
    assert_fires("interior-mutability", &[("crates/mem/src/x.rs", "static mut COUNT: u64 = 0;\n")]);
    assert_silent(&[("crates/telemetry/src/x.rs", "use std::cell::RefCell;\n")]);
}

#[test]
fn relaxed_atomic_fires_outside_the_allowlist() {
    assert_fires(
        "relaxed-atomic",
        &[("crates/vm/src/x.rs", "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n")],
    );
    assert_silent(&[("crates/vm/src/x.rs", "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }\n")]);
}

#[test]
fn telemetry_gate_fires_outside_emit_and_on_state_calls() {
    assert_fires(
        "telemetry-gate",
        &[(
            "crates/gpu/src/x.rs",
            "use mosaic_telemetry::Event;\nfn f(c: u64) { let e = Event::Epoch { cycle: c }; }\n",
        )],
    );
    assert_fires(
        "telemetry-gate",
        &[("crates/gpu/src/x.rs", "fn f() { mosaic_telemetry::set_enabled(true); }\n")],
    );
    // The sanctioned form: construction inside the emit closure.
    assert_silent(&[(
        "crates/gpu/src/x.rs",
        "use mosaic_telemetry::{emit, Event};\nfn f(c: u64) { emit(|| Event::Epoch { cycle: c }); }\n",
    )]);
    // An unrelated Event enum in a cycle crate is not telemetry.
    assert_silent(&[("crates/gpu/src/x.rs", "enum Event { A }\nfn f() { let _ = Event::A; }\n")]);
}

#[test]
fn cfg_test_items_stay_unflagged() {
    assert_silent(&[(
        "crates/vm/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { Instant::now(); }\n}\n",
    )]);
}

#[test]
fn comments_and_strings_stay_unflagged() {
    assert_silent(&[(
        "crates/vm/src/x.rs",
        "// HashMap Instant thread_rng Ordering::Relaxed RefCell\nfn f() { let s = \"HashMap\"; let _ = s; }\n",
    )]);
}
