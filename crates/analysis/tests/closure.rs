//! Pins the computed hot-path closure against the real tree.
//!
//! The analyzer used to carry a hand-maintained `HOT_PATH_FILES` list of
//! ten files. The closure is computed from the call graph now; these
//! tests pin that the computation covers everything the old list did
//! (the old list is frozen here as history — it must never be the
//! implementation again) and that it finds the hot files the list
//! missed, the whole point of computing it.

use mosaic_audit::Workspace;
use std::path::Path;

/// The deleted `HOT_PATH_FILES` constant, frozen at its final value. The
/// computed closure must always cover it: a regression here means the
/// graph lost edges the old list knew about.
const OLD_HOT_PATH_FILES: [&str; 10] = [
    "crates/gpu/src/sm.rs",
    "crates/gpu/src/warp.rs",
    "crates/gpusim/src/system.rs",
    "crates/iobus/src/lib.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/dram.rs",
    "crates/mem/src/xbar.rs",
    "crates/vm/src/tlb.rs",
    "crates/vm/src/walk_cache.rs",
    "crates/vm/src/walker.rs",
];

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    Workspace::load(&root).unwrap()
}

#[test]
fn computed_closure_covers_the_old_hot_file_list() {
    let closure = real_workspace().closure();
    let files = closure.files();
    for old in OLD_HOT_PATH_FILES {
        assert!(
            files.contains(&old),
            "computed closure lost {old}, which the deleted HOT_PATH_FILES had;\nclosure files: {files:#?}"
        );
    }
}

#[test]
fn computed_closure_finds_hot_files_the_old_list_missed() {
    // The managers run inside warp_access (fault handling) and
    // deallocate (compaction); the old list never covered them. If these
    // drop out, the closure stopped seeing through the manager dispatch.
    let closure = real_workspace().closure();
    let files = closure.files();
    for new in [
        "crates/core/src/mosaic_mgr.rs",
        "crates/core/src/cocoa.rs",
        "crates/core/src/cac.rs",
        "crates/sim-core/src/queue.rs",
        "crates/vm/src/page_table.rs",
        // The multi-GPU fleet path: placement decides residency on every
        // L1-missing access, and remote traffic rides the interconnect.
        "crates/core/src/placement.rs",
        "crates/mem/src/interconnect.rs",
    ] {
        assert!(files.contains(&new), "{new} missing from closure: {files:#?}");
    }
}

#[test]
fn every_entry_point_resolves_on_the_real_tree() {
    let closure = real_workspace().closure();
    assert!(
        closure.unresolved_entries().is_empty(),
        "stale entry specs: {:#?}",
        closure.unresolved_entries()
    );
    // Every entry also resolves to exactly one definition on this tree —
    // a second match would mean the graph is merging unrelated types.
    for entry in &closure.entries {
        assert_eq!(entry.resolved.len(), 1, "{}: {:#?}", entry.spec, entry.resolved);
    }
}

#[test]
fn closure_is_substantial_but_not_everything() {
    let ws = real_workspace();
    let closure = ws.closure();
    let total: usize = ws
        .files
        .iter()
        .filter(|f| mosaic_audit::rules::is_cycle_crate(&f.path))
        .map(|f| f.fns.len())
        .sum();
    assert!(closure.members.len() >= 100, "only {} members", closure.members.len());
    assert!(
        closure.members.len() < total,
        "closure swallowed every one of the {total} cycle-crate functions — \
         the over-approximation collapsed into 'everything is hot'"
    );
}
