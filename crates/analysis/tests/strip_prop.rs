//! Property test for `lexer::strip`, run over every real workspace file:
//! stripping must be offset-stable (1 char in, 1 char out; erased chars
//! become spaces, everything else — newlines included — survives
//! byte-identically), because every rule reports line numbers computed
//! from the stripped text.

use mosaic_audit::lexer::strip;
use mosaic_audit::source_files;
use std::path::Path;

#[test]
fn strip_is_offset_stable_on_every_workspace_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap();
    let files = source_files(&root).unwrap();
    assert!(files.len() > 50, "walked only {} files", files.len());
    for file in files {
        let src = std::fs::read_to_string(&file).unwrap();
        let out = strip(&src);
        assert_eq!(
            out.chars().count(),
            src.chars().count(),
            "{}: strip changed the character count",
            file.display()
        );
        assert_eq!(
            out.lines().count(),
            src.lines().count(),
            "{}: strip changed the line count",
            file.display()
        );
        for (idx, (a, b)) in src.chars().zip(out.chars()).enumerate() {
            assert!(
                b == a || b == ' ',
                "{}: char {idx}: {a:?} became {b:?} (only erasure-to-space is allowed)",
                file.display()
            );
            if a == '\n' {
                assert_eq!(b, '\n', "{}: newline at {idx} was erased", file.display());
            }
        }
    }
}

#[test]
fn strip_is_offset_stable_on_adversarial_snippets() {
    // The escape shapes that have historically broken hand-rolled
    // lexers: escaped-quote char literals, byte chars, unicode escapes,
    // raw strings with hashes, nested block comments.
    let cases = [
        "let q = '\\''; let h = HashMap::new();",
        "let b = b'x'; let e = b'\\'';",
        "let c = '\\u{1F600}'; done();",
        "let r = r#\"quote \" inside\"#; after();",
        "let s = \"esc \\\" and \\\\\"; after();",
        "/* a /* nested */ b */ code();",
        "let t = 'a'; let life: &'a str = x;",
    ];
    for src in cases {
        let out = strip(src);
        assert_eq!(out.chars().count(), src.chars().count(), "{src:?} -> {out:?}");
        for (a, b) in src.chars().zip(out.chars()) {
            assert!(b == a || b == ' ', "{src:?} -> {out:?}");
        }
    }
}
