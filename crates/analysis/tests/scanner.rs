//! End-to-end tests for `mosaic-audit check`: the violation fixtures must
//! be flagged (and fail the binary with a nonzero exit), the clean fixture
//! must pass, and — the gate that matters — the real repository must scan
//! clean under its checked-in allowlist.

use mosaic_audit::{check, Allowlist};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn violation_fixtures_are_all_flagged() {
    let report = check(&fixture("violations"), &Allowlist::default()).unwrap();
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &report.findings {
        *by_rule.entry(f.rule).or_default() += 1;
    }
    assert_eq!(by_rule.get("hashmap-in-sim"), Some(&4), "{:#?}", report.findings);
    assert_eq!(by_rule.get("wall-clock"), Some(&3), "{:#?}", report.findings);
    assert_eq!(by_rule.get("thread-rng"), Some(&2), "{:#?}", report.findings);
    assert_eq!(by_rule.get("panic-in-hotpath"), Some(&3), "{:#?}", report.findings);
    assert_eq!(by_rule.get("lossy-cast"), Some(&2), "{:#?}", report.findings);
    assert_eq!(by_rule.get("banned-alias"), Some(&5), "{:#?}", report.findings);
    assert_eq!(by_rule.get("interior-mutability"), Some(&5), "{:#?}", report.findings);
    assert_eq!(by_rule.get("relaxed-atomic"), Some(&1), "{:#?}", report.findings);
    assert_eq!(by_rule.get("telemetry-gate"), Some(&2), "{:#?}", report.findings);
    assert_eq!(report.findings.len(), 27);
}

#[test]
fn panics_outside_the_computed_closure_are_not_flagged() {
    // tlb.rs's `unreachable_helper` has an unwrap but no caller: the
    // closure boundary, not a file list, decides what is hot.
    let report = check(&fixture("violations"), &Allowlist::default()).unwrap();
    let tlb_lines: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| f.rule == "panic-in-hotpath" && f.path.ends_with("tlb.rs"))
        .map(|f| f.line)
        .collect();
    assert_eq!(tlb_lines, [6, 7, 9], "{:#?}", report.findings);
}

#[test]
fn alias_smuggling_is_flagged_end_to_end() {
    // The cross-crate re-export chain: vm/smuggled.rs names HashMap only
    // through mosaic_workloads::FastMap, and is still flagged.
    let report = check(&fixture("violations"), &Allowlist::default()).unwrap();
    let aliases: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "banned-alias")
        .map(|f| f.path.as_str())
        .collect();
    assert!(aliases.iter().all(|p| p.ends_with("smuggled.rs")), "{aliases:?}");
    let fastmap: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "banned-alias" && f.message.contains("FastMap"))
        .collect();
    assert!(!fastmap.is_empty(), "the re-export chain was not resolved: {:#?}", report.findings);
    // The re-exporting (non-cycle) crate itself is not flagged.
    assert!(!report.findings.iter().any(|f| f.path.ends_with("reexport.rs")));
}

#[test]
fn non_cycle_crates_may_use_containers_and_panics() {
    let report = check(&fixture("violations"), &Allowlist::default()).unwrap();
    let outside: Vec<_> = report.findings.iter().filter(|f| f.path.contains("workloads")).collect();
    assert_eq!(outside.len(), 1, "{outside:#?}");
    assert_eq!(outside[0].rule, "thread-rng");
}

#[test]
fn clean_fixture_passes() {
    let report = check(&fixture("clean"), &Allowlist::default()).unwrap();
    assert!(report.is_clean(), "{report:#?}");
    assert!(report.unresolved_entries.is_empty(), "{:#?}", report.unresolved_entries);
    assert_eq!(report.files, 2);
}

#[test]
fn allowlist_exempts_fixture_findings() {
    let allow = Allowlist::parse(
        "hashmap-in-sim crates/vm/src/bad_hashmap.rs fixture exercise\n\
         panic-in-hotpath crates/vm/src/tlb.rs fixture exercise\n",
    )
    .unwrap();
    let report = check(&fixture("violations"), &allow).unwrap();
    assert_eq!(report.exempted.len(), 7);
    assert_eq!(report.findings.len(), 20);
    assert!(report.stale_allows.is_empty());
}

#[test]
fn the_repository_scans_clean() {
    let root = repo_root();
    let allow_text = std::fs::read_to_string(root.join("crates/analysis/allow.list")).unwrap();
    let allow = Allowlist::parse(&allow_text).unwrap();
    let report = check(&root, &allow).unwrap();
    assert!(
        report.is_clean(),
        "the tree violates the determinism/invariant policy:\n{}",
        report.findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.unresolved_entries.is_empty(),
        "stale entry points (the closure silently shrank): {:#?}",
        report.unresolved_entries
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries (prune them): {:#?}",
        report.stale_allows
    );
    assert!(report.files > 50, "walked only {} files — tree layout changed?", report.files);
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_mosaic-audit");
    let bad = Command::new(bin)
        .args(["check", fixture("violations").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("hashmap-in-sim"), "{stdout}");
    assert!(stdout.contains("banned-alias"), "{stdout}");

    let good =
        Command::new(bin).args(["check", fixture("clean").to_str().unwrap()]).output().unwrap();
    assert_eq!(good.status.code(), Some(0), "{good:?}");
}

#[test]
fn stale_allowlist_entries_fail_check_without_escape_hatch() {
    // The clean fixture has no findings, so any allowlist entry written
    // for it is stale. Stale entries fail `check`; --allow-stale
    // downgrades them to a warning.
    let bin = env!("CARGO_BIN_EXE_mosaic-audit");
    let dir = std::env::temp_dir().join(format!("mosaic-audit-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src = dir.join("crates/vm/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::copy(fixture("clean").join("crates/vm/src/good.rs"), src.join("good.rs")).unwrap();
    let gpu = dir.join("crates/gpu/src");
    std::fs::create_dir_all(&gpu).unwrap();
    std::fs::copy(fixture("clean").join("crates/gpu/src/machine.rs"), gpu.join("machine.rs"))
        .unwrap();
    let allow_dir = dir.join("crates/analysis");
    std::fs::create_dir_all(&allow_dir).unwrap();
    std::fs::write(
        allow_dir.join("allow.list"),
        "wall-clock crates/vm/src/good.rs never matched anything\n",
    )
    .unwrap();

    let strict = Command::new(bin).args(["check", dir.to_str().unwrap()]).output().unwrap();
    assert_eq!(strict.status.code(), Some(1), "{strict:?}");
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(stderr.contains("stale allowlist entry"), "{stderr}");

    let lenient =
        Command::new(bin).args(["check", dir.to_str().unwrap(), "--allow-stale"]).output().unwrap();
    assert_eq!(lenient.status.code(), Some(0), "{lenient:?}");
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(stderr.contains("warning: stale"), "{stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_output_is_emitted_for_check_and_graph() {
    let bin = env!("CARGO_BIN_EXE_mosaic-audit");
    let out = Command::new(bin)
        .args(["check", fixture("violations").to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"rule\":\"banned-alias\""), "{stdout}");
    assert!(stdout.contains("\"clean\":false"), "{stdout}");

    let graph = Command::new(bin)
        .args(["graph", fixture("violations").to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&graph.stdout);
    assert!(stdout.contains("\"spec\":\"Sm::advance\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"lookup\""), "{stdout}");
}

#[test]
fn explain_prints_rationale_for_every_rule() {
    let bin = env!("CARGO_BIN_EXE_mosaic-audit");
    for rule in mosaic_audit::rules::RULES {
        let out = Command::new(bin).args(["explain", rule.id]).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule.id), "{stdout}");
        assert!(stdout.len() > 100, "explain text for {} is too thin: {stdout}", rule.id);
    }
    let unknown = Command::new(bin).args(["explain", "no-such-rule"]).output().unwrap();
    assert_eq!(unknown.status.code(), Some(2), "{unknown:?}");
}
