//! End-to-end tests for `mosaic-audit check`: the violation fixtures must
//! be flagged (and fail the binary with a nonzero exit), the clean fixture
//! must pass, and — the gate that matters — the real repository must scan
//! clean under its checked-in allowlist.

use mosaic_audit::{check, Allowlist};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn violation_fixtures_are_all_flagged() {
    let report = check(&fixture("violations"), &Allowlist::default()).unwrap();
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &report.findings {
        *by_rule.entry(f.rule).or_default() += 1;
    }
    assert_eq!(by_rule.get("hashmap-in-sim"), Some(&4), "{:#?}", report.findings);
    assert_eq!(by_rule.get("wall-clock"), Some(&2), "{:#?}", report.findings);
    assert_eq!(by_rule.get("thread-rng"), Some(&2), "{:#?}", report.findings);
    assert_eq!(by_rule.get("panic-in-hotpath"), Some(&3), "{:#?}", report.findings);
    assert_eq!(by_rule.get("lossy-cast"), Some(&2), "{:#?}", report.findings);
    assert_eq!(report.findings.len(), 13);
}

#[test]
fn non_cycle_crates_may_use_containers_and_panics() {
    let report = check(&fixture("violations"), &Allowlist::default()).unwrap();
    let outside: Vec<_> = report.findings.iter().filter(|f| f.path.contains("workloads")).collect();
    assert_eq!(outside.len(), 1, "{outside:#?}");
    assert_eq!(outside[0].rule, "thread-rng");
}

#[test]
fn clean_fixture_passes() {
    let report = check(&fixture("clean"), &Allowlist::default()).unwrap();
    assert!(report.is_clean(), "{:#?}", report.findings);
    assert_eq!(report.files, 1);
}

#[test]
fn allowlist_exempts_fixture_findings() {
    let allow = Allowlist::parse(
        "hashmap-in-sim crates/vm/src/bad_hashmap.rs fixture exercise\n\
         panic-in-hotpath crates/vm/src/tlb.rs fixture exercise\n",
    )
    .unwrap();
    let report = check(&fixture("violations"), &allow).unwrap();
    assert_eq!(report.exempted.len(), 7);
    assert_eq!(report.findings.len(), 6);
    assert!(report.stale_allows.is_empty());
}

#[test]
fn the_repository_scans_clean() {
    let root = repo_root();
    let allow_text = std::fs::read_to_string(root.join("crates/analysis/allow.list")).unwrap();
    let allow = Allowlist::parse(&allow_text).unwrap();
    let report = check(&root, &allow).unwrap();
    assert!(
        report.is_clean(),
        "the tree violates the determinism/invariant policy:\n{}",
        report.findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries (prune them): {:#?}",
        report.stale_allows
    );
    assert!(report.files > 50, "walked only {} files — tree layout changed?", report.files);
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_mosaic-audit");
    let bad = Command::new(bin)
        .args(["check", fixture("violations").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("hashmap-in-sim"), "{stdout}");

    let good =
        Command::new(bin).args(["check", fixture("clean").to_str().unwrap()]).output().unwrap();
    assert_eq!(good.status.code(), Some(0), "{good:?}");
}
