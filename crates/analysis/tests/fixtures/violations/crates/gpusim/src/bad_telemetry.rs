// Fixture: telemetry outside the emit() closure gate in a cycle-level
// crate. The gated emit at the end is the negative case. Scanner input
// only; never compiled.
use mosaic_telemetry::Event;

pub fn step(cycle: u64) {
    let early = Event::Epoch { cycle };
    mosaic_telemetry::set_enabled(true);
    drop(early);
    mosaic_telemetry::emit(|| Event::Epoch { cycle });
}
