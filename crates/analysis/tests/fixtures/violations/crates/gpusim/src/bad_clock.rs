// Fixture: wall-clock time and entropy randomness in simulation logic.
// Scanner input only; never compiled.
use std::time::Instant;

pub fn step() -> u128 {
    // "Instant" in this comment and in the string below must NOT count.
    let label = "Instant::now";
    let t = Instant::now();
    let _ = rand::thread_rng();
    let _ = label;
    t.elapsed().as_nanos()
}
