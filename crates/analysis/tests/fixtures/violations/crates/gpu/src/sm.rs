// Fixture: the per-cycle entry point. `advance` reaches `Tlb::lookup`
// through a method call, which is what puts tlb.rs's panics in the
// computed hot-path closure. Scanner input only; never compiled.
impl Sm {
    pub fn advance(&mut self, tlb: &mut Tlb) {
        let frame = tlb.lookup(self.page);
        self.issue(frame);
    }

    fn issue(&mut self, frame: u64) {
        self.last = frame;
    }
}
