// Fixture: relaxed atomics in a cycle-level crate. Scanner input only;
// never compiled.
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
