// Fixture: lossy casts of address/cycle-typed values.
// Scanner input only; never compiled.
pub fn channel(addr: PhysAddr, now: Cycle) -> (u32, u32) {
    let a = addr.raw() as u32; // truncates above 4 GiB
    let c = now.as_u64() as u32;
    let fine = addr.raw() as u64; // widening-as-written: allowed
    let _ = fine;
    (a, c)
}
