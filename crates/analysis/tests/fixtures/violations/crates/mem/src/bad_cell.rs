// Fixture: interior mutability in a cycle-level crate. Scanner input
// only; never compiled.
use std::cell::{Cell, RefCell};

pub struct Banks {
    hint: Cell,
    rows: RefCell,
}

static mut LAST_ROW: u64 = 0;
