// Fixture: panics on the per-cycle hot path (this path IS in the
// hot-path list). Scanner input only; never compiled.
pub fn lookup(&mut self, page: u64) -> u64 {
    let slot = self.sets.get(&page).unwrap();
    let entry = slot.newest().expect("slot occupied");
    if entry.page != page {
        panic!("tag mismatch");
    }
    entry.frame
}
