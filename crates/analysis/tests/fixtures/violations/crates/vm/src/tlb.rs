// Fixture: panics in a function reachable from an entry point (the
// closure pulls `Tlb::lookup` in through the method call in sm.rs —
// there is no file list). Scanner input only; never compiled.
impl Tlb {
    pub fn lookup(&mut self, page: u64) -> u64 {
        let slot = self.sets.get(&page).unwrap();
        let entry = slot.newest().expect("slot occupied");
        if entry.page != page {
            panic!("tag mismatch");
        }
        entry.frame
    }

    pub fn unreachable_helper(&self) {
        // NOT in the closure (nothing calls it), so this panic is the
        // closure boundary's negative case: it must not be flagged.
        self.table.first().unwrap();
    }
}
