// Fixture: nondeterministic containers in a cycle-level crate.
// This file is scanner input only; it is never compiled.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct Tracker {
    pages: HashMap<u64, u64>,
    dirty: HashSet<u64>,
}

#[cfg(test)]
mod tests {
    // Exempt: HashMap in tests is fine.
    use std::collections::HashMap;
}
