// Fixture: the alias loopholes. `FastMap` is mosaic_workloads' re-export
// of std::collections::HashMap — the name HashMap never appears in this
// file, so the ident rule alone cannot see it. Scanner input only.
use mosaic_workloads::FastMap;
use std::collections::*;
use std::time::SystemTime as Stamp;

pub struct Residency {
    pages: FastMap,
    born: Stamp,
}
