// Fixture: a non-cycle crate re-exporting a banned container under a new
// name. Nothing is wrong *here* (workloads is host-side); the smuggle is
// flagged where a cycle crate imports it. Scanner input only.
pub use std::collections::HashMap as FastMap;
