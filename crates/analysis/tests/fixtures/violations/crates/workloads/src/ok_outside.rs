// Fixture: the workloads crate is NOT cycle-level, so containers and
// panics here are fine — but entropy-seeded randomness never is.
// Scanner input only; never compiled.
use std::collections::HashMap;

pub fn build() -> HashMap<u64, u64> {
    let mut rng = rand::thread_rng();
    let m = HashMap::new();
    m.get(&0).unwrap();
    m
}
