// Fixture: minimal definitions of every per-cycle entry point, so the
// computed closure resolves on this tree — a tree whose declared entry
// points resolve to nothing fails the check (the closure would silently
// shrink). Scanner input only; never compiled.
impl Sm {
    pub fn advance(&mut self) {}
}
impl GpuSystem {
    pub fn warp_access(&mut self) {}
    pub fn warp_access_timed(&mut self) {}
    pub fn deallocate(&mut self) {}
    pub fn evict_pressure(&mut self) {}
}
impl PageTableWalker {
    pub fn walk(&mut self) {}
}
impl Dram {
    pub fn access(&mut self) {}
    pub fn access_timed(&mut self) {}
    pub fn narrow_page_copy(&mut self) {}
    pub fn bulk_page_copy(&mut self) {}
}
impl Cache {
    pub fn access(&mut self) {}
}
impl Crossbar {
    pub fn traverse(&mut self) {}
}
impl IoBus {
    pub fn transfer(&mut self) {}
}
impl PlacementMap {
    pub fn access(&mut self) {}
}
impl Interconnect {
    pub fn traverse(&mut self) {}
    pub fn transfer(&mut self) {}
}
