// Fixture: a file the policy fully accepts. Scanner input only.
// A HashMap in a comment is fine, as is "thread_rng" in a string.
use std::collections::BTreeMap;

pub fn translate(map: &BTreeMap<u64, u64>, page: u64) -> Option<u64> {
    let name = "thread_rng";
    let _ = name;
    map.get(&page).copied()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_use_anything() {
        let _ = (HashMap::<u8, u8>::new(), Instant::now());
    }
}
