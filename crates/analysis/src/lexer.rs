//! A minimal Rust source "lexer" for the audit scanner: it does not
//! tokenize, it *erases* everything the rules must never match inside —
//! line comments, (nested) block comments, string literals, raw string
//! literals, byte strings, and character literals — replacing their
//! contents with spaces so that byte offsets and line numbers of the
//! surviving code are unchanged.
//!
//! Hand-rolled on purpose: the scanner must build with zero external
//! dependencies (the workspace builds offline), and the subset of Rust
//! lexical structure it needs is small and stable.

/// Erases comments and literal contents from `source`, preserving layout.
///
/// Every erased character becomes a space (newlines are kept), so
/// `strip(s).lines().nth(k)` lines up exactly with `s.lines().nth(k)`.
///
/// # Examples
///
/// ```
/// use mosaic_audit::lexer::strip;
/// let s = strip("let x = \"HashMap\"; // HashMap\nuse std::collections::HashMap;");
/// assert!(!s.lines().next().unwrap().contains("HashMap"));
/// assert!(s.lines().nth(1).unwrap().contains("HashMap"));
/// ```
pub fn strip(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;

    let keep = |out: &mut String, c: char| out.push(c);
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });

    while i < n {
        let c = chars[i];
        // Line comment (also covers doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                blank(&mut out, chars[i]);
                i += 1;
            }
            continue;
        }
        // Block comment, nested per Rust.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br##"..."##.
        if c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r') {
            let start = if c == 'b' { i + 2 } else { i + 1 };
            let mut j = start;
            while j < n && chars[j] == '#' {
                j += 1;
            }
            let hashes = j - start;
            // Only a raw string if an opening quote follows the hashes and
            // `r`/`br` is not the tail of a longer identifier.
            let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
            if !prev_ident && j < n && chars[j] == '"' {
                for &c in &chars[i..=j] {
                    keep(&mut out, c);
                }
                i = j + 1;
                // Scan to the closing quote followed by `hashes` hashes.
                while i < n {
                    if chars[i] == '"'
                        && i + hashes < n
                        && chars[i + 1..=i + hashes].iter().all(|&h| h == '#')
                    {
                        for &c in &chars[i..=i + hashes] {
                            keep(&mut out, c);
                        }
                        i += hashes + 1;
                        break;
                    }
                    blank(&mut out, chars[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (byte) string.
        if c == '"' {
            keep(&mut out, c);
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '"' {
                    keep(&mut out, chars[i]);
                    i += 1;
                    break;
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Character literal vs. lifetime: `'x'` and `'\n'` are literals;
        // `'a` in `&'a str` is not (no closing quote right after one
        // "payload"). A quote after an identifier char is never a literal
        // (it closes nothing — e.g. the `'` in `it's` never appears in
        // code position anyway once comments/strings are gone).
        if c == '\'' {
            let is_escape = i + 1 < n && chars[i + 1] == '\\';
            let closes_simple = i + 2 < n && chars[i + 2] == '\'';
            if is_escape {
                keep(&mut out, c);
                i += 1;
                // Blank the backslash and the escaped character
                // unconditionally — `'\''` must not stop at the escaped
                // quote — then blank any multi-char escape payload
                // (`'\u{1F600}'`) until the real closing quote.
                blank(&mut out, chars[i]);
                i += 1;
                if i < n {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
                while i < n && chars[i] != '\'' {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
                if i < n {
                    keep(&mut out, chars[i]);
                    i += 1;
                }
                continue;
            }
            if closes_simple {
                keep(&mut out, c);
                blank(&mut out, chars[i + 1]);
                keep(&mut out, chars[i + 2]);
                i += 3;
                continue;
            }
            // Lifetime: keep as-is.
            keep(&mut out, c);
            i += 1;
            continue;
        }
        keep(&mut out, c);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let s = strip("code(); // HashMap here\nmore();");
        assert_eq!(s.lines().next().unwrap().trim_end(), "code();");
        assert_eq!(s.lines().nth(1).unwrap(), "more();");
    }

    #[test]
    fn block_comments_nest_and_keep_lines() {
        let s = strip("a /* one /* two */ still */ b\nc");
        assert!(s.starts_with("a "));
        assert!(s.lines().next().unwrap().ends_with(" b"));
        assert!(!s.contains("two"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let s = strip(r#"let x = "Instant::now()"; y"#);
        assert!(!s.contains("Instant"));
        assert!(s.contains("\""));
        assert!(s.ends_with("; y"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = strip(r#"let x = "a\"HashMap\"b"; HashMap"#);
        assert_eq!(s.matches("HashMap").count(), 1);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = strip("let x = r#\"thread_rng\"#; thread_rng();");
        assert_eq!(s.matches("thread_rng").count(), 1);
    }

    #[test]
    fn lifetimes_survive_char_literal_handling() {
        let s = strip("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let s = strip("let c = 'H'; let e = '\\n'; HashMap");
        assert!(!s.contains("'H'"));
        assert!(s.contains("HashMap"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_swallow_the_line() {
        let s = strip("let q = '\\''; let h = HashMap::new();");
        assert_eq!(s.matches("HashMap").count(), 1, "{s:?}");
        assert_eq!(s.chars().count(), "let q = '\\''; let h = HashMap::new();".chars().count());
    }

    #[test]
    fn byte_char_literals_are_blanked() {
        let s = strip("let b = b'x'; let e = b'\\''; Instant");
        assert!(!s.contains("'x'"));
        assert_eq!(s.matches("Instant").count(), 1, "{s:?}");
    }

    #[test]
    fn unicode_escape_char_literal_is_blanked_to_the_close() {
        let s = strip("let c = '\\u{1F600}'; SystemTime");
        assert!(!s.contains("1F600"));
        assert_eq!(s.matches("SystemTime").count(), 1, "{s:?}");
    }

    #[test]
    fn doc_comments_are_blanked() {
        let s = strip("/// uses HashMap internally\nfn f() {}");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("fn f()"));
    }
}
