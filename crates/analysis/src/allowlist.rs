//! The checked-in allowlist: the *only* way a rule violation stays in the
//! tree, and every entry must say why.
//!
//! Format (`crates/analysis/allow.list`): one entry per line,
//!
//! ```text
//! <rule> <repo-relative-path> <justification...>
//! ```
//!
//! `#`-lines and blank lines are ignored. An entry exempts every finding
//! of that rule in that file — per-file granularity keeps the list short
//! and forces a file-level answer to "why is this construct sound here?".
//! Entries that match nothing are reported (stale exemptions hide future
//! regressions) but do not fail the check.

use crate::rules::{Finding, RULES};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule the entry exempts.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Why the construct is sound there (mandatory).
    pub justification: String,
    /// 1-based line in the allowlist file (for error reporting).
    pub line: usize,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allow.list:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the allowlist text.
    ///
    /// # Errors
    ///
    /// Returns every malformed line: unknown rule names, missing fields,
    /// or a missing justification.
    pub fn parse(text: &str) -> Result<Self, Vec<ParseError>> {
        let mut entries = Vec::new();
        let mut errors = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default().to_string();
            let path = parts.next().unwrap_or_default().to_string();
            let justification = parts.next().unwrap_or_default().trim().to_string();
            if !RULES.iter().any(|r| r.id == rule) {
                errors.push(ParseError { line, message: format!("unknown rule `{rule}`") });
                continue;
            }
            if path.is_empty() {
                errors.push(ParseError { line, message: "missing path".to_string() });
                continue;
            }
            if justification.is_empty() {
                errors.push(ParseError {
                    line,
                    message: "missing justification: every exemption must say why".to_string(),
                });
                continue;
            }
            entries.push(Entry { rule, path, justification, line });
        }
        if errors.is_empty() {
            Ok(Allowlist { entries })
        } else {
            Err(errors)
        }
    }

    /// Whether `finding` is exempted.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|e| e.rule == finding.rule && e.path == finding.path)
    }

    /// Splits `findings` into (surviving, exempted).
    pub fn filter(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        findings.into_iter().partition(|f| !self.allows(f))
    }

    /// Entries that exempted none of `findings` — stale, worth pruning.
    pub fn unused<'a>(&'a self, all_findings: &[Finding]) -> Vec<&'a Entry> {
        self.entries
            .iter()
            .filter(|e| !all_findings.iter().any(|f| f.rule == e.rule && f.path == e.path))
            .collect()
    }

    /// All entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding { rule, path: path.to_string(), line: 1, message: String::new() }
    }

    #[test]
    fn parses_entries_and_comments() {
        let a = Allowlist::parse(
            "# a comment\n\nhashmap-in-sim crates/vm/src/x.rs interned keys, order never observed\n",
        )
        .unwrap();
        assert_eq!(a.entries().len(), 1);
        assert_eq!(a.entries()[0].rule, "hashmap-in-sim");
        assert!(a.allows(&finding("hashmap-in-sim", "crates/vm/src/x.rs")));
        assert!(!a.allows(&finding("wall-clock", "crates/vm/src/x.rs")));
        assert!(!a.allows(&finding("hashmap-in-sim", "crates/vm/src/y.rs")));
    }

    #[test]
    fn rejects_unknown_rule_and_missing_justification() {
        let err = Allowlist::parse("no-such-rule a.rs why\nwall-clock b.rs\n").unwrap_err();
        assert_eq!(err.len(), 2);
        assert!(err[0].message.contains("unknown rule"));
        assert!(err[1].message.contains("justification"));
    }

    #[test]
    fn unused_entries_are_reported() {
        let a = Allowlist::parse("wall-clock crates/mem/src/x.rs measured on host\n").unwrap();
        let unused = a.unused(&[finding("wall-clock", "crates/mem/src/other.rs")]);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].path, "crates/mem/src/x.rs");
    }

    #[test]
    fn filter_partitions() {
        let a = Allowlist::parse("thread-rng crates/gpu/src/x.rs legacy, tracked\n").unwrap();
        let (kept, exempted) = a.filter(vec![
            finding("thread-rng", "crates/gpu/src/x.rs"),
            finding("thread-rng", "crates/gpu/src/y.rs"),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(exempted.len(), 1);
        assert_eq!(kept[0].path, "crates/gpu/src/y.rs");
    }
}
