//! `mosaic-audit` — the workspace's determinism/invariant static-analysis
//! pass.
//!
//! A cycle-accurate simulator's results are only meaningful if the same
//! seed always produces the same run. This crate scans every Rust source
//! file under `crates/*/src` (plus the root `src/`) for the constructs
//! that historically break that guarantee or mask broken invariants:
//!
//! * `HashMap`/`HashSet` in cycle-level crates (iteration order leaks
//!   host randomness into simulated state),
//! * wall-clock time (`Instant`, `SystemTime`) in simulation logic,
//! * entropy-seeded randomness (`thread_rng`, `from_entropy`),
//! * `unwrap`/`expect`/`panic!` on per-cycle hot paths,
//! * lossy `as` casts of address/cycle-typed values.
//!
//! Violations that are individually justified live in
//! `crates/analysis/allow.list`; everything else fails the check. The
//! scanner is hand-rolled and dependency-free (the workspace builds
//! offline): see [`lexer`] for the comment/string eraser, [`rules`] for
//! the checks, and [`allowlist`] for the exemption format.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p mosaic-audit -- check            # scan the repo, exit 1 on findings
//! cargo run -p mosaic-audit -- check some/dir   # scan a different root
//! ```
//!
//! The runtime half of the policy is the `AuditInvariants` trait in
//! `mosaic-sim-core` (frame conservation, ownership agreement, TLB
//! coherence), swept by the gpusim runner every `audit_every` cycles.

#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod rules;

pub use allowlist::Allowlist;
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// Everything one `check` run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Findings not covered by the allowlist (the check fails on any).
    pub findings: Vec<Finding>,
    /// Findings covered by the allowlist.
    pub exempted: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Stale allowlist entries (rule+path pairs that matched nothing).
    pub stale_allows: Vec<String>,
}

impl ScanReport {
    /// Whether the check passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Collects every `.rs` file the policy covers: `crates/*/src/**` and the
/// root package's `src/**`, sorted for deterministic output.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes (rule selection and
/// allowlist matching are defined on this form).
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Scans one file's raw source (comments/strings are stripped here).
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    rules::scan_stripped(rel_path, &lexer::strip(source))
}

/// Runs the full check over `root` with `allow`, reading every covered
/// source file.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree).
pub fn check(root: &Path, allow: &Allowlist) -> std::io::Result<ScanReport> {
    let mut all = Vec::new();
    let files = source_files(root)?;
    let count = files.len();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        all.extend(scan_source(&relative(root, &file), &source));
    }
    let stale = allow
        .unused(&all)
        .into_iter()
        .map(|e| format!("{} {} ({})", e.rule, e.path, e.justification))
        .collect();
    let (findings, exempted) = allow.filter(all);
    Ok(ScanReport { findings, exempted, files: count, stale_allows: stale })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/repo");
        let p = Path::new("/repo/crates/vm/src/tlb.rs");
        assert_eq!(relative(root, p), "crates/vm/src/tlb.rs");
    }

    #[test]
    fn scan_source_end_to_end() {
        let f = scan_source("crates/vm/src/x.rs", "use std::collections::HashMap; // HashMap\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hashmap-in-sim");
        assert_eq!(f[0].line, 1);
    }
}
