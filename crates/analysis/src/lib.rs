//! `mosaic-audit` — the workspace's determinism/invariant static-analysis
//! pass.
//!
//! A cycle-accurate simulator's results are only meaningful if the same
//! seed always produces the same run. This crate parses every Rust source
//! file under `crates/*/src` (plus the root `src/`) and checks the
//! constructs that historically break that guarantee or mask broken
//! invariants. It is syntax-aware, not a line scanner:
//!
//! * [`lexer`] erases comments and literal contents, preserving layout;
//! * [`tokens`] chops the stripped source into a token stream;
//! * [`parse`] extracts `use` trees (including `as` renames and globs),
//!   `fn`/`impl` items, and call sites, excluding `#[cfg(test)]` items;
//! * [`graph`] builds a cross-crate call graph and *computes* the
//!   hot-path closure from the per-cycle entry points — there is no
//!   hand-maintained hot-file list to go stale;
//! * [`rules`] runs the policy over the parsed workspace: banned
//!   containers/clocks/entropy (including alias and re-export evasions),
//!   interior mutability and relaxed atomics in cycle crates, the
//!   telemetry `emit()` gate, lossy casts, and panics anywhere in the
//!   computed closure.
//!
//! Violations that are individually justified live in
//! `crates/analysis/allow.list`; everything else fails the check. The
//! analyzer is hand-rolled and dependency-free (the workspace builds
//! offline).
//!
//! Run it as:
//!
//! ```text
//! cargo run -p mosaic-audit -- check                 # scan the repo, exit 1 on findings
//! cargo run -p mosaic-audit -- check --format json   # machine-readable findings
//! cargo run -p mosaic-audit -- graph                 # dump the computed hot-path closure
//! cargo run -p mosaic-audit -- explain panic-in-hotpath
//! ```
//!
//! The runtime half of the policy is the `AuditInvariants` trait in
//! `mosaic-sim-core` (frame conservation, ownership agreement, TLB
//! coherence), swept by the gpusim runner every `audit_every` cycles.

#![warn(missing_docs)]

pub mod allowlist;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod tokens;

pub use allowlist::Allowlist;
pub use graph::Closure;
pub use rules::Finding;

use parse::FileModel;
use std::path::{Path, PathBuf};

/// The parsed workspace: every covered file as a [`FileModel`].
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Parsed files, sorted by path.
    pub files: Vec<FileModel>,
}

impl Workspace {
    /// Parses in-memory sources (tests, fixtures). Paths must be
    /// repo-relative with forward slashes.
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        let mut files: Vec<FileModel> = sources
            .iter()
            .map(|(path, src)| parse::parse_file(path, tokens::tokenize(&lexer::strip(src))))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Loads and parses every covered source file under `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unreadable tree).
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        for file in source_files(root)? {
            let source = std::fs::read_to_string(&file)?;
            let rel = relative(root, &file);
            files.push(parse::parse_file(&rel, tokens::tokenize(&lexer::strip(&source))));
        }
        Ok(Workspace { files })
    }

    /// Computes the hot-path closure over this workspace.
    pub fn closure(&self) -> Closure {
        graph::compute_closure(&self.files)
    }

    /// Runs every rule over this workspace (closure computed internally).
    pub fn scan(&self) -> Vec<Finding> {
        rules::scan_workspace(&self.files, &self.closure())
    }
}

/// Everything one `check` run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Findings not covered by the allowlist (the check fails on any).
    pub findings: Vec<Finding>,
    /// Findings covered by the allowlist.
    pub exempted: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Stale allowlist entries (rule+path pairs that matched nothing).
    pub stale_allows: Vec<String>,
    /// Declared entry points that resolved to no definition — the
    /// closure would silently shrink, so these fail the check too.
    pub unresolved_entries: Vec<String>,
}

impl ScanReport {
    /// Whether the check passes (stale allowlist entries are a separate,
    /// CLI-level failure with its own escape hatch).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unresolved_entries.is_empty()
    }
}

/// A full analysis: the report plus the computed closure behind it.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// The check outcome.
    pub report: ScanReport,
    /// The hot-path closure the panic rule ran on.
    pub closure: Closure,
}

/// Collects every `.rs` file the policy covers: `crates/*/src/**` and the
/// root package's `src/**`, sorted for deterministic output.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes (rule selection and
/// allowlist matching are defined on this form).
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Scans one in-memory file (closure computed over just that file).
/// Convenience for tests; real runs go through [`analyze`] so cross-file
/// aliases and reachability are visible.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    Workspace::from_sources(&[(rel_path, source)]).scan()
}

/// Builds a report from an already-parsed workspace and an allowlist.
pub fn analyze_workspace(ws: &Workspace, allow: &Allowlist) -> Analysis {
    let closure = ws.closure();
    let all = rules::scan_workspace(&ws.files, &closure);
    let stale = allow
        .unused(&all)
        .into_iter()
        .map(|e| format!("{} {} ({})", e.rule, e.path, e.justification))
        .collect();
    let (findings, exempted) = allow.filter(all);
    let unresolved = closure.unresolved_entries().iter().map(|s| s.to_string()).collect();
    Analysis {
        report: ScanReport {
            findings,
            exempted,
            files: ws.files.len(),
            stale_allows: stale,
            unresolved_entries: unresolved,
        },
        closure,
    }
}

/// Runs the full analysis over `root` with `allow`, reading every covered
/// source file.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree).
pub fn analyze(root: &Path, allow: &Allowlist) -> std::io::Result<Analysis> {
    Ok(analyze_workspace(&Workspace::load(root)?, allow))
}

/// Runs the full check over `root` with `allow` (report only).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable tree).
pub fn check(root: &Path, allow: &Allowlist) -> std::io::Result<ScanReport> {
    Ok(analyze(root, allow)?.report)
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
        json_escape(f.rule),
        json_escape(&f.path),
        f.line,
        json_escape(&f.message)
    )
}

fn string_array_json(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    format!("[{}]", inner.join(","))
}

/// Renders a [`ScanReport`] as a JSON document (hand-rolled: the
/// workspace builds offline, no serde).
pub fn report_json(report: &ScanReport) -> String {
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let exempted: Vec<String> = report.exempted.iter().map(finding_json).collect();
    format!(
        "{{\"files\":{},\"clean\":{},\"findings\":[{}],\"exempted\":[{}],\
         \"stale_allows\":{},\"unresolved_entries\":{}}}",
        report.files,
        report.is_clean(),
        findings.join(","),
        exempted.join(","),
        string_array_json(&report.stale_allows),
        string_array_json(&report.unresolved_entries)
    )
}

fn fn_ref_json(m: &graph::FnRef) -> String {
    let self_ty = match &m.self_ty {
        Some(ty) => format!("\"{}\"", json_escape(ty)),
        None => "null".to_string(),
    };
    format!(
        "{{\"path\":\"{}\",\"self_ty\":{},\"name\":\"{}\",\"line\":{}}}",
        json_escape(&m.path),
        self_ty,
        json_escape(&m.name),
        m.line
    )
}

/// Renders the computed hot-path closure as a JSON document.
pub fn closure_json(closure: &Closure) -> String {
    let entries: Vec<String> = closure
        .entries
        .iter()
        .map(|e| {
            let resolved: Vec<String> = e.resolved.iter().map(fn_ref_json).collect();
            format!(
                "{{\"spec\":\"{}\",\"resolved\":[{}]}}",
                json_escape(e.spec),
                resolved.join(",")
            )
        })
        .collect();
    let members: Vec<String> = closure.members.iter().map(fn_ref_json).collect();
    let files: Vec<String> =
        closure.files().iter().map(|p| format!("\"{}\"", json_escape(p))).collect();
    format!(
        "{{\"entries\":[{}],\"members\":[{}],\"files\":[{}]}}",
        entries.join(","),
        members.join(","),
        files.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/repo");
        let p = Path::new("/repo/crates/vm/src/tlb.rs");
        assert_eq!(relative(root, p), "crates/vm/src/tlb.rs");
    }

    #[test]
    fn scan_source_end_to_end() {
        let f = scan_source("crates/vm/src/x.rs", "use std::collections::HashMap; // HashMap\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hashmap-in-sim");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = ScanReport {
            findings: vec![Finding {
                rule: "wall-clock",
                path: "crates/vm/src/x.rs".to_string(),
                line: 3,
                message: "Instant with \"quotes\"".to_string(),
            }],
            exempted: Vec::new(),
            files: 1,
            stale_allows: vec!["wall-clock crates/vm/src/y.rs (old)".to_string()],
            unresolved_entries: Vec::new(),
        };
        let j = report_json(&report);
        assert!(j.contains("\"files\":1"));
        assert!(j.contains("\"clean\":false"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"line\":3"));
    }

    #[test]
    fn closure_json_contains_entries_and_members() {
        let ws = Workspace::from_sources(&[(
            "crates/gpu/src/sm.rs",
            "impl Sm { pub fn advance(&mut self) { self.pick(); } fn pick(&self) {} }\n",
        )]);
        let j = closure_json(&ws.closure());
        assert!(j.contains("\"spec\":\"Sm::advance\""));
        assert!(j.contains("\"name\":\"pick\""));
        assert!(j.contains("crates/gpu/src/sm.rs"));
    }
}
