//! Layer 3 of the analyzer: a cross-crate call graph over the parsed
//! workspace, and the reachability pass that *computes* the hot-path
//! closure the panic rule runs on.
//!
//! Nodes are the functions defined in cycle-level crates (see
//! [`crate::rules::CYCLE_CRATES`]). Edges are resolved from the call
//! sites the parser extracted:
//!
//! * `Type::method(..)` paths resolve by `(self type, name)`, with the
//!   type name first mapped through the file's `use` renames;
//! * `recv.method(..)` method calls resolve *by name to every function
//!   with that name* — receiver types are not inferred, so the graph
//!   over-approximates. For a soundness pass that is the right
//!   direction: the computed closure can only be too big, never too
//!   small;
//! * bare `helper(..)` calls resolve to free functions with that name;
//! * closures are attributed to the function whose body defines them.
//!
//! Entry points — the per-cycle tick/issue/access loops of the simulated
//! machine — are declared in [`ENTRY_POINTS`] as `Type::method` pairs.
//! Everything reachable from them is the hot path: a panic there takes
//! down the whole simulation, so `panic-in-hotpath` applies to each
//! member function, wherever its file lives.

use crate::parse::{Callee, FileModel};
use crate::rules::is_cycle_crate;
use std::collections::{BTreeMap, BTreeSet};

/// The per-cycle entry points of the simulated machine, as
/// `Type::method`. Everything reachable from these is hot. Adding a new
/// per-cycle engine (an eviction pump, a second GPU's tick) means adding
/// its entry here — the closure then extends itself.
pub const ENTRY_POINTS: &[&str] = &[
    // The SM issue loop: one call per warp scheduling slot.
    "Sm::advance",
    // The memory system behind it: every warp memory instruction.
    "GpuSystem::warp_access",
    "GpuSystem::warp_access_timed",
    // Mid-run management traffic (between-kernel deallocation drives
    // CAC compaction and shootdowns).
    "GpuSystem::deallocate",
    // Address-translation machinery ticks.
    "PageTableWalker::walk",
    // DRAM, cache, crossbar, and IO-bus device ticks.
    "Dram::access",
    "Dram::access_timed",
    "Dram::narrow_page_copy",
    "Dram::bulk_page_copy",
    "Cache::access",
    "Crossbar::traverse",
    "IoBus::transfer",
    // The demand-paging eviction pump: fires on every out-of-memory
    // fault under oversubscription (eviction, write-back, shootdowns).
    "GpuSystem::evict_pressure",
    // The multi-GPU fleet path: placement resolution on every L1-missing
    // access, and the inter-GPU link fabric it charges remote requests
    // and migration/replication payloads through.
    "PlacementMap::access",
    "Interconnect::traverse",
    "Interconnect::transfer",
];

/// A function in the computed closure, addressable for humans.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Repo-relative file path.
    pub path: String,
    /// `impl`/`trait` self type, if any.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based definition line.
    pub line: u32,
}

impl std::fmt::Display for FnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.self_ty {
            Some(ty) => write!(f, "{}::{} ({}:{})", ty, self.name, self.path, self.line),
            None => write!(f, "{} ({}:{})", self.name, self.path, self.line),
        }
    }
}

/// One declared entry point and the definitions it resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryResolution {
    /// The `Type::method` spec from [`ENTRY_POINTS`].
    pub spec: &'static str,
    /// Matching function definitions (empty = the spec is stale).
    pub resolved: Vec<FnRef>,
}

/// The computed hot-path closure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Closure {
    /// Entry point resolutions, in [`ENTRY_POINTS`] order.
    pub entries: Vec<EntryResolution>,
    /// Every reachable function, sorted by (path, line).
    pub members: Vec<FnRef>,
    /// (file index, fn index) keys of the members, for rule lookups.
    keys: BTreeSet<(usize, usize)>,
}

impl Closure {
    /// Whether `files[file_idx].fns[fn_idx]` is in the closure.
    pub fn contains(&self, file_idx: usize, fn_idx: usize) -> bool {
        self.keys.contains(&(file_idx, fn_idx))
    }

    /// The distinct files the closure touches, sorted.
    pub fn files(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.members.iter().map(|m| m.path.as_str()).collect();
        set.into_iter().collect()
    }

    /// Entry specs that resolved to no definition (stale declarations —
    /// the analyzer is lying to itself if these exist).
    pub fn unresolved_entries(&self) -> Vec<&'static str> {
        self.entries.iter().filter(|e| e.resolved.is_empty()).map(|e| e.spec).collect()
    }
}

/// Computes the hot-path closure over the parsed workspace files.
pub fn compute_closure(files: &[FileModel]) -> Closure {
    // Node universe: functions in cycle-level crates.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut by_ty_name: BTreeMap<(&str, &str), Vec<(usize, usize)>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_cycle_crate(&file.path) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push((fi, gi));
            match &f.self_ty {
                Some(ty) => by_ty_name.entry((ty, &f.name)).or_default().push((fi, gi)),
                None => free_by_name.entry(&f.name).or_default().push((fi, gi)),
            }
        }
    }

    // Per-file `use` rename maps for resolving `Alias::method(..)`.
    let rename: Vec<BTreeMap<&str, &str>> = files
        .iter()
        .map(|file| {
            file.uses
                .iter()
                .filter(|u| u.local != "*")
                .filter_map(|u| Some((u.local.as_str(), u.target.last()?.as_str())))
                .collect()
        })
        .collect();

    let mut entries = Vec::new();
    let mut work: Vec<(usize, usize)> = Vec::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for spec in ENTRY_POINTS {
        let (ty, name) = spec.split_once("::").unwrap_or(("", spec));
        let resolved = by_ty_name.get(&(ty, name)).cloned().unwrap_or_default();
        for &node in &resolved {
            if seen.insert(node) {
                work.push(node);
            }
        }
        entries.push(EntryResolution {
            spec,
            resolved: resolved.iter().map(|&(fi, gi)| fn_ref(files, fi, gi)).collect(),
        });
    }

    while let Some((fi, gi)) = work.pop() {
        let file = &files[fi];
        let def = &file.fns[gi];
        for call in &def.calls {
            let targets: Vec<(usize, usize)> = match &call.callee {
                Callee::Method(name) => by_name.get(name.as_str()).cloned().unwrap_or_default(),
                Callee::Path(segs) => {
                    let last = segs.last().map(String::as_str).unwrap_or_default();
                    if segs.len() == 1 {
                        free_by_name.get(last).cloned().unwrap_or_default()
                    } else {
                        let ty_seg = segs[segs.len() - 2].as_str();
                        let ty = if ty_seg == "Self" {
                            def.self_ty.as_deref().unwrap_or(ty_seg)
                        } else {
                            rename[fi].get(ty_seg).copied().unwrap_or(ty_seg)
                        };
                        if ty.starts_with(char::is_uppercase) {
                            by_ty_name.get(&(ty, last)).cloned().unwrap_or_default()
                        } else {
                            // Module-qualified free function.
                            free_by_name.get(last).cloned().unwrap_or_default()
                        }
                    }
                }
                Callee::Macro(_) => Vec::new(),
            };
            for node in targets {
                if seen.insert(node) {
                    work.push(node);
                }
            }
        }
    }

    let mut members: Vec<FnRef> = seen.iter().map(|&(fi, gi)| fn_ref(files, fi, gi)).collect();
    members.sort();
    Closure { entries, members, keys: seen }
}

fn fn_ref(files: &[FileModel], fi: usize, gi: usize) -> FnRef {
    let f = &files[fi].fns[gi];
    FnRef {
        path: files[fi].path.clone(),
        self_ty: f.self_ty.clone(),
        name: f.name.clone(),
        line: f.line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;
    use crate::parse::parse_file;
    use crate::tokens::tokenize;

    fn ws(sources: &[(&str, &str)]) -> Vec<FileModel> {
        sources.iter().map(|(p, s)| parse_file(p, tokenize(&strip(s)))).collect()
    }

    fn member_names(c: &Closure) -> Vec<String> {
        c.members.iter().map(|m| m.name.clone()).collect()
    }

    #[test]
    fn reaches_through_direct_and_method_calls() {
        let files = ws(&[(
            "crates/gpu/src/sm.rs",
            "impl Sm {\n\
             \x20   pub fn advance(&mut self) { self.pick(); helper(); }\n\
             \x20   fn pick(&self) {}\n\
             }\n\
             fn helper() { leaf(); }\n\
             fn leaf() {}\n\
             fn unrelated() {}\n",
        )]);
        let c = compute_closure(&files);
        let names = member_names(&c);
        assert!(names.contains(&"advance".to_string()));
        assert!(names.contains(&"pick".to_string()));
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"leaf".to_string()));
        assert!(!names.contains(&"unrelated".to_string()));
    }

    #[test]
    fn method_calls_cross_crates_by_name() {
        let files = ws(&[
            (
                "crates/gpu/src/sm.rs",
                "impl Sm { pub fn advance(&mut self, t: &mut Tlb) { t.lookup(1); } }\n",
            ),
            (
                "crates/vm/src/tlb.rs",
                "impl Tlb { pub fn lookup(&mut self, p: u64) -> u64 { self.probe(p) }\n\
                 fn probe(&self, p: u64) -> u64 { p } }\n",
            ),
        ]);
        let c = compute_closure(&files);
        let names = member_names(&c);
        assert!(names.contains(&"lookup".to_string()));
        assert!(names.contains(&"probe".to_string()));
    }

    #[test]
    fn use_renames_resolve_for_qualified_calls() {
        let files = ws(&[
            (
                "crates/gpu/src/sm.rs",
                "use mosaic_vm::PageTableWalker as Walker;\n\
                 impl Sm { pub fn advance(&mut self) { Walker::walk(); } }\n",
            ),
            (
                "crates/vm/src/walker.rs",
                "impl PageTableWalker { pub fn walk() { step(); } }\nfn step() {}\n",
            ),
        ]);
        let c = compute_closure(&files);
        let names = member_names(&c);
        assert!(names.contains(&"walk".to_string()), "{names:?}");
        assert!(names.contains(&"step".to_string()), "{names:?}");
    }

    #[test]
    fn non_cycle_crates_are_not_nodes() {
        let files = ws(&[
            ("crates/gpu/src/sm.rs", "impl Sm { pub fn advance(&mut self) { build(); } }\n"),
            ("crates/workloads/src/gen.rs", "pub fn build() { panic!(\"host side\"); }\n"),
        ]);
        let c = compute_closure(&files);
        assert_eq!(member_names(&c), ["advance"]);
    }

    #[test]
    fn unresolved_entries_are_reported() {
        let files = ws(&[("crates/gpu/src/sm.rs", "fn nothing_here() {}\n")]);
        let c = compute_closure(&files);
        assert!(c.unresolved_entries().contains(&"Sm::advance"));
        assert!(c.members.is_empty());
    }

    #[test]
    fn closure_files_are_deduplicated_and_sorted() {
        let files = ws(&[
            (
                "crates/gpu/src/sm.rs",
                "impl Sm { pub fn advance(&mut self, c: &mut Cache) { c.access(1); } }\n",
            ),
            ("crates/mem/src/cache.rs", "impl Cache { pub fn access(&mut self, a: u64) {} }\n"),
        ]);
        let c = compute_closure(&files);
        assert_eq!(c.files(), ["crates/gpu/src/sm.rs", "crates/mem/src/cache.rs"]);
    }
}
