//! Layer 1 of the analyzer: a real token stream on top of
//! [`crate::lexer::strip`].
//!
//! The lexer erases comment and literal *contents*; this module chops the
//! surviving characters into identifiers, numbers, lifetimes, literal
//! shells, and punctuation, each tagged with its 1-based source line.
//! `::` is fused into a single token so the item parser and the rules can
//! treat paths uniformly. Everything stays hand-rolled and
//! dependency-free — the workspace builds offline.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `use`, ...).
    Ident,
    /// A lifetime (`'a`). The leading quote is part of the token.
    Lifetime,
    /// A numeric literal (`42`, `0xC0FFEE`, `1_000u64`).
    Number,
    /// The shell of a string/char literal whose contents the lexer
    /// erased (`""`, `''`).
    Literal,
    /// A punctuation token: one character, except the fused `::`.
    Punct,
}

/// One token of stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text. For [`TokKind::Literal`] this is the delimiter
    /// only (contents were erased); for [`TokKind::Punct`] it is the
    /// punctuation itself (`"::"` for the fused path separator).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes *stripped* source (see [`crate::lexer::strip`]). Feeding raw
/// source through here would mis-lex comments and literal contents.
pub fn tokenize(stripped: &str) -> Vec<Tok> {
    let chars: Vec<char> = stripped.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok { kind: TokKind::Ident, text, line });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok { kind: TokKind::Number, text, line });
            continue;
        }
        // A quote after stripping is either a lifetime (`'a`: ident char
        // immediately after, no closing quote) or the erased shell of a
        // char literal (`'   '`).
        if c == '\'' {
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Lifetime, text, line });
            } else {
                i += 1;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                toks.push(Tok { kind: TokKind::Literal, text: "'".to_string(), line });
            }
            continue;
        }
        // The erased shell of a (raw) string literal: everything up to
        // the closing quote is spaces/newlines after stripping.
        if c == '"' {
            i += 1;
            while i < n && chars[i] != '"' {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            toks.push(Tok { kind: TokKind::Literal, text: "\"".to_string(), line });
            continue;
        }
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            toks.push(Tok { kind: TokKind::Punct, text: "::".to_string(), line });
            i += 2;
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&strip(src))
    }

    fn texts(src: &str) -> Vec<String> {
        toks(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_paths_and_calls() {
        assert_eq!(
            texts("use std::collections::HashMap;"),
            ["use", "std", "::", "collections", "::", "HashMap", ";"]
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let t = toks("a\n\nb();\n");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 3);
        assert!(t[1].is_ident("b"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = toks("fn f<'a>(x: &'a str, c: char) { let _ = 'H'; }");
        assert!(t.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(t.iter().any(|t| t.kind == TokKind::Literal && t.text == "'"));
    }

    #[test]
    fn string_shells_collapse_to_one_token() {
        let t = toks("let s = \"Instant::now() HashMap\"; done");
        assert!(!t.iter().any(|t| t.is_ident("Instant")));
        assert!(t.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn numbers_and_suffixes() {
        let t = toks("let x = 0xC0FFEE_u64 + 12;");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Number).count(), 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let t = toks("let s = \"a\nb\";\nnext");
        let next = t.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn spaced_colons_are_not_fused() {
        // `a: :b` is not valid Rust; we only fuse adjacent colons, which
        // is what rustfmt-formatted paths always look like.
        assert_eq!(texts("x: u64"), ["x", ":", "u64"]);
        assert_eq!(texts("E::V"), ["E", "::", "V"]);
    }
}
