//! The `mosaic-audit` command-line front end.
//!
//! ```text
//! mosaic-audit check [ROOT]        scan ROOT (default: .) and exit 1 on findings
//! mosaic-audit rules               list the rules
//! ```

use mosaic_audit::{check, rules::RULES, Allowlist};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: mosaic-audit <command>\n\
         \n\
         commands:\n\
         \x20 check [ROOT]   scan ROOT (default: current directory) against the\n\
         \x20                determinism/invariant policy; exit 1 on findings\n\
         \x20 rules          list the rules\n\
         \n\
         the allowlist is read from ROOT/crates/analysis/allow.list when present"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for (rule, what) in RULES {
                println!("{rule}\n    {what}");
            }
        }
        Some("check") => {
            if args.len() > 2 {
                usage();
            }
            let root = Path::new(args.get(1).map(String::as_str).unwrap_or("."));
            std::process::exit(run_check(root));
        }
        _ => usage(),
    }
}

fn run_check(root: &Path) -> i32 {
    if !root.is_dir() {
        eprintln!("mosaic-audit: {} is not a directory", root.display());
        return 2;
    }
    let allow_path = root.join("crates/analysis/allow.list");
    let allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mosaic-audit: cannot read {}: {e}", allow_path.display());
                return 2;
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(errors) => {
                for e in errors {
                    eprintln!("mosaic-audit: {e}");
                }
                return 2;
            }
        }
    } else {
        Allowlist::default()
    };

    let report = match check(root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mosaic-audit: scan failed: {e}");
            return 2;
        }
    };
    for stale in &report.stale_allows {
        eprintln!("mosaic-audit: warning: stale allowlist entry: {stale}");
    }
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "mosaic-audit: {} file(s), {} finding(s), {} exempted, {} stale allowlist entr(y/ies)",
        report.files,
        report.findings.len(),
        report.exempted.len(),
        report.stale_allows.len()
    );
    i32::from(!report.is_clean())
}
