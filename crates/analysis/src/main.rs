//! The `mosaic-audit` command-line front end.
//!
//! ```text
//! mosaic-audit check [ROOT] [--format json] [--allow-stale]
//! mosaic-audit graph [ROOT] [--format json]
//! mosaic-audit rules
//! mosaic-audit explain <rule>
//! ```

use mosaic_audit::{analyze, closure_json, report_json, rules, Allowlist, Workspace};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: mosaic-audit <command>\n\
         \n\
         commands:\n\
         \x20 check [ROOT] [--format json] [--allow-stale]\n\
         \x20                scan ROOT (default: current directory) against the\n\
         \x20                determinism/invariant policy; exit 1 on findings or\n\
         \x20                stale allowlist entries (--allow-stale downgrades\n\
         \x20                staleness to a warning)\n\
         \x20 graph [ROOT] [--format json]\n\
         \x20                dump the computed hot-path closure: entry points,\n\
         \x20                member functions, files\n\
         \x20 rules          list the rules\n\
         \x20 explain <rule> print a rule's full rationale\n\
         \n\
         the allowlist is read from ROOT/crates/analysis/allow.list when present"
    );
    std::process::exit(2);
}

/// Flags shared by `check` and `graph`.
struct Opts {
    root: String,
    json: bool,
    allow_stale: bool,
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut opts = Opts { root: ".".to_string(), json: false, allow_stale: false };
    let mut root_seen = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => opts.json = true,
                    Some("text") => opts.json = false,
                    _ => return None,
                }
            }
            "--allow-stale" => opts.allow_stale = true,
            flag if flag.starts_with('-') => return None,
            root => {
                if root_seen {
                    return None;
                }
                opts.root = root.to_string();
                root_seen = true;
            }
        }
        i += 1;
    }
    Some(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in rules::RULES {
                println!("{}\n    {}", rule.id, rule.summary);
            }
        }
        Some("explain") => {
            let Some(id) = args.get(1) else { usage() };
            match rules::rule(id) {
                Some(rule) => {
                    println!("{}\n\n{}\n\n{}", rule.id, rule.summary, rule.explain);
                }
                None => {
                    eprintln!("mosaic-audit: unknown rule `{id}`; see `mosaic-audit rules`");
                    std::process::exit(2);
                }
            }
        }
        Some("check") => {
            let Some(opts) = parse_opts(&args[1..]) else { usage() };
            std::process::exit(run_check(&opts));
        }
        Some("graph") => {
            let Some(opts) = parse_opts(&args[1..]) else { usage() };
            std::process::exit(run_graph(&opts));
        }
        _ => usage(),
    }
}

fn load_allowlist(root: &Path) -> Result<Allowlist, i32> {
    let allow_path = root.join("crates/analysis/allow.list");
    if !allow_path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = match std::fs::read_to_string(&allow_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mosaic-audit: cannot read {}: {e}", allow_path.display());
            return Err(2);
        }
    };
    match Allowlist::parse(&text) {
        Ok(a) => Ok(a),
        Err(errors) => {
            for e in errors {
                eprintln!("mosaic-audit: {e}");
            }
            Err(2)
        }
    }
}

fn run_check(opts: &Opts) -> i32 {
    let root = Path::new(&opts.root);
    if !root.is_dir() {
        eprintln!("mosaic-audit: {} is not a directory", root.display());
        return 2;
    }
    let allow = match load_allowlist(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let analysis = match analyze(root, &allow) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mosaic-audit: scan failed: {e}");
            return 2;
        }
    };
    let report = &analysis.report;
    let stale_fails = !report.stale_allows.is_empty() && !opts.allow_stale;
    if opts.json {
        println!("{}", report_json(report));
        return i32::from(!report.is_clean() || stale_fails);
    }
    for stale in &report.stale_allows {
        if opts.allow_stale {
            eprintln!("mosaic-audit: warning: stale allowlist entry: {stale}");
        } else {
            eprintln!(
                "mosaic-audit: stale allowlist entry (matches nothing — prune it or pass \
                 --allow-stale): {stale}"
            );
        }
    }
    for spec in &report.unresolved_entries {
        eprintln!(
            "mosaic-audit: entry point `{spec}` resolved to no definition — the computed \
             closure is missing it (update graph::ENTRY_POINTS)"
        );
    }
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "mosaic-audit: {} file(s), {} finding(s), {} exempted, {} stale allowlist entr(y/ies), \
         closure: {} function(s) in {} file(s)",
        report.files,
        report.findings.len(),
        report.exempted.len(),
        report.stale_allows.len(),
        analysis.closure.members.len(),
        analysis.closure.files().len()
    );
    i32::from(!report.is_clean() || stale_fails)
}

fn run_graph(opts: &Opts) -> i32 {
    let root = Path::new(&opts.root);
    if !root.is_dir() {
        eprintln!("mosaic-audit: {} is not a directory", root.display());
        return 2;
    }
    let ws = match Workspace::load(root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("mosaic-audit: scan failed: {e}");
            return 2;
        }
    };
    let closure = ws.closure();
    if opts.json {
        println!("{}", closure_json(&closure));
    } else {
        println!("entry points:");
        for entry in &closure.entries {
            if entry.resolved.is_empty() {
                println!("  {}  (UNRESOLVED)", entry.spec);
            } else {
                for r in &entry.resolved {
                    println!("  {}  -> {}:{}", entry.spec, r.path, r.line);
                }
            }
        }
        println!("\nclosure ({} functions):", closure.members.len());
        for m in &closure.members {
            println!("  {m}");
        }
        println!("\nfiles ({}):", closure.files().len());
        for f in closure.files() {
            println!("  {f}");
        }
    }
    i32::from(!closure.unresolved_entries().is_empty())
}
