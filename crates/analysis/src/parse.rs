//! Layer 2 of the analyzer: an item-level parser over the token stream.
//!
//! This is not a full Rust parser — it extracts exactly what the rules
//! and the call graph need, and skips everything else with balanced
//! delimiter matching:
//!
//! * `use` trees, including `as` renames, nested groups, and glob
//!   imports (the alias loopholes the old line scanner could not see),
//! * `fn` definitions with their `impl`/`trait` self type and body span,
//! * call and method-call sites inside each body (plus macro
//!   invocations, which is how `panic!` is found),
//! * `#[cfg(test)]` items, which are *excluded*: their tokens are marked
//!   not-included and their functions are not recorded, so tests keep
//!   their license to panic and use host facilities.

use crate::tokens::{Tok, TokKind};

/// One name bound by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// The name the binding introduces in this file; `"*"` for a glob.
    pub local: String,
    /// The full path the name refers to, as written (first segment may
    /// be `crate`, `self`, `super`, or an external crate name).
    pub target: Vec<String>,
    /// Whether the binding is re-exported (`pub use`).
    pub is_pub: bool,
    /// 1-based source line of the binding.
    pub line: u32,
}

/// What a call site calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// A path call: `helper(..)`, `Type::method(..)`,
    /// `module::helper(..)`. Segments as written.
    Path(Vec<String>),
    /// A method call: `recv.method(..)`. Receiver types are not
    /// inferred; the graph layer resolves these by name, conservatively.
    Method(String),
    /// A macro invocation: `panic!(..)`, `vec![..]`.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// What is called.
    pub callee: Callee,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One function definition (or trait-method declaration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self type it is defined on, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Token index range of the body (including braces); empty for
    /// body-less trait declarations.
    pub body: (usize, usize),
    /// Call sites found in the body.
    pub calls: Vec<Call>,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileModel {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The crate the file belongs to, as a Rust identifier
    /// (`mosaic_vm`, ...).
    pub krate: String,
    /// The file's token stream.
    pub tokens: Vec<Tok>,
    /// Per-token flag: `false` for tokens inside attributes or inside
    /// `#[cfg(test)]` items — rules must not match those.
    pub included: Vec<bool>,
    /// `use` bindings in the file (test items excluded).
    pub uses: Vec<UseBinding>,
    /// Functions defined in the file (test items excluded).
    pub fns: Vec<FnDef>,
}

/// The crate identifier a repo-relative path belongs to.
pub fn crate_ident(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or("");
        if dir == "analysis" {
            "mosaic_audit".to_string()
        } else {
            format!("mosaic_{}", dir.replace('-', "_"))
        }
    } else {
        "mosaic".to_string()
    }
}

/// Keywords that look like a call when followed by `(`.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "loop"
            | "in"
            | "move"
            | "unsafe"
            | "as"
            | "else"
            | "dyn"
            | "ref"
            | "mut"
            | "let"
            | "fn"
            | "await"
            | "break"
            | "continue"
            | "where"
            | "impl"
    )
}

/// Parses one file's token stream into a [`FileModel`].
pub fn parse_file(path: &str, tokens: Vec<Tok>) -> FileModel {
    let included = vec![true; tokens.len()];
    let mut p = Parser { t: &tokens, i: 0, included, uses: Vec::new(), fns: Vec::new() };
    p.items(false, None);
    FileModel {
        path: path.to_string(),
        krate: crate_ident(path),
        included: p.included,
        uses: p.uses,
        fns: p.fns,
        tokens,
    }
}

struct Parser<'t> {
    t: &'t [Tok],
    i: usize,
    included: Vec<bool>,
    uses: Vec<UseBinding>,
    fns: Vec<FnDef>,
}

impl Parser<'_> {
    fn cur(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn cur_is_punct(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_punct(s))
    }

    fn cur_is_ident(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(s))
    }

    /// Consumes a balanced `open`..`close` group starting at the current
    /// token (which must be `open`); returns the index one past the
    /// closing delimiter.
    fn skip_balanced(&mut self, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        while let Some(tok) = self.cur() {
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    break;
                }
            }
            self.i += 1;
        }
        self.i
    }

    /// Consumes a balanced generic-argument group starting at `<`.
    /// `>` directly after `-` is an arrow (`Fn() -> T` bounds), not a
    /// closing bracket.
    fn skip_angle(&mut self) {
        let mut depth = 0usize;
        while let Some(tok) = self.cur() {
            if tok.is_punct("<") {
                depth += 1;
            } else if tok.is_punct(">") {
                let arrow = self.i > 0 && self.t[self.i - 1].is_punct("-");
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        break;
                    }
                }
            }
            self.i += 1;
        }
    }

    /// Marks `[from, to)` as excluded from rule matching.
    fn exclude(&mut self, from: usize, to: usize) {
        let to = to.min(self.included.len());
        for flag in &mut self.included[from..to] {
            *flag = false;
        }
    }

    /// Consumes one whole item generically: everything up to a `;` at
    /// depth 0 or through the item's first balanced `{ .. }` block.
    fn skip_item(&mut self) {
        while let Some(tok) = self.cur() {
            if tok.is_punct(";") {
                self.i += 1;
                return;
            }
            if tok.is_punct("{") {
                self.skip_balanced("{", "}");
                return;
            }
            if tok.is_punct("(") {
                self.skip_balanced("(", ")");
                continue;
            }
            if tok.is_punct("[") {
                self.skip_balanced("[", "]");
                continue;
            }
            self.i += 1;
        }
    }

    /// Whether the attribute starting at `start` (`#`) is a `cfg(..)`
    /// whose arguments mention `test`.
    fn attr_mentions_cfg_test(&self, start: usize, end: usize) -> bool {
        let toks = &self.t[start..end.min(self.t.len())];
        toks.iter().any(|t| t.is_ident("cfg")) && toks.iter().any(|t| t.is_ident("test"))
    }

    /// The item loop: parses items until end of input (or the closing
    /// `}` of the enclosing block when `stop_at_close`).
    fn items(&mut self, stop_at_close: bool, self_ty: Option<&str>) {
        let mut pending_test = false;
        let mut is_pub = false;
        while let Some(tok) = self.cur() {
            if tok.is_punct("}") {
                self.i += 1;
                if stop_at_close {
                    return;
                }
                continue;
            }
            if tok.is_punct("#") {
                let start = self.i;
                self.i += 1;
                if self.cur_is_punct("!") {
                    self.i += 1;
                }
                if self.cur_is_punct("[") {
                    let end = self.skip_balanced("[", "]");
                    self.exclude(start, end);
                    if self.attr_mentions_cfg_test(start, end) {
                        pending_test = true;
                    }
                }
                continue;
            }
            if tok.is_punct("{") {
                // A block belonging to an item we did not model (const
                // initializer, macro body, ...): its tokens stay
                // included for ident rules, but nothing inside is an
                // item of this scope.
                self.skip_balanced("{", "}");
                continue;
            }
            if tok.kind != TokKind::Ident {
                self.i += 1;
                continue;
            }
            match tok.text.as_str() {
                "pub" => {
                    self.i += 1;
                    if self.cur_is_punct("(") {
                        self.skip_balanced("(", ")");
                    }
                    is_pub = true;
                    continue;
                }
                "use" => {
                    let start = self.i;
                    self.parse_use(is_pub, pending_test);
                    if pending_test {
                        let end = self.i;
                        self.exclude(start, end);
                    }
                }
                "mod" => {
                    self.i += 1;
                    self.i += 1; // module name
                    if self.cur_is_punct("{") {
                        if pending_test {
                            let start = self.i;
                            self.skip_balanced("{", "}");
                            self.exclude(start, self.i);
                        } else {
                            self.i += 1;
                            self.items(true, None);
                        }
                    } else if self.cur_is_punct(";") {
                        self.i += 1;
                    }
                }
                "impl" => {
                    if pending_test {
                        let start = self.i;
                        self.skip_item();
                        self.exclude(start, self.i);
                    } else {
                        let ty = self.parse_impl_header();
                        if self.cur_is_punct("{") {
                            self.i += 1;
                            self.items(true, ty.as_deref());
                        }
                    }
                }
                "trait" => {
                    if pending_test {
                        let start = self.i;
                        self.skip_item();
                        self.exclude(start, self.i);
                    } else {
                        self.i += 1;
                        let name =
                            self.cur().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
                        // Scan to the trait body, skipping bounds.
                        while let Some(t) = self.cur() {
                            if t.is_punct("{") || t.is_punct(";") {
                                break;
                            }
                            if t.is_punct("<") {
                                self.skip_angle();
                            } else {
                                self.i += 1;
                            }
                        }
                        if self.cur_is_punct("{") {
                            self.i += 1;
                            self.items(true, name.as_deref());
                        } else if self.cur_is_punct(";") {
                            self.i += 1;
                        }
                    }
                }
                "fn" => {
                    self.parse_fn(self_ty, pending_test);
                }
                "unsafe" | "async" | "extern" | "default" => {
                    // Qualifier before `fn`/`impl`/`trait` (or `extern
                    // crate`): step over it, keeping pending flags.
                    self.i += 1;
                    continue;
                }
                "const" if self.t.get(self.i + 1).is_some_and(|t| t.is_ident("fn")) => {
                    self.i += 1;
                    continue;
                }
                _ => {
                    // An item we do not model (struct, enum, static,
                    // const, type alias, item-level macro): consume it
                    // whole so a pending `#[cfg(test)]` applies to it
                    // and not to whatever follows. Its tokens stay
                    // included for ident-level rules.
                    let start = self.i;
                    self.skip_item();
                    if pending_test {
                        self.exclude(start, self.i);
                    }
                }
            }
            pending_test = false;
            is_pub = false;
        }
    }

    /// Parses `use <tree>;` from the `use` keyword.
    fn parse_use(&mut self, is_pub: bool, skip_record: bool) {
        self.i += 1; // `use`
        if self.cur_is_punct("::") {
            self.i += 1; // leading `::` (extern prelude)
        }
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, is_pub, skip_record);
        while let Some(tok) = self.cur() {
            let done = tok.is_punct(";");
            self.i += 1;
            if done {
                break;
            }
        }
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, is_pub: bool, skip_record: bool) {
        let depth = prefix.len();
        while let Some(tok) = self.cur() {
            if tok.is_punct("*") {
                let line = tok.line;
                self.i += 1;
                if !skip_record {
                    self.uses.push(UseBinding {
                        local: "*".to_string(),
                        target: prefix.clone(),
                        is_pub,
                        line,
                    });
                }
                break;
            }
            if tok.is_punct("{") {
                self.i += 1;
                loop {
                    if self.cur_is_punct("}") {
                        self.i += 1;
                        break;
                    }
                    if self.cur_is_punct(",") {
                        self.i += 1;
                        continue;
                    }
                    if self.cur().is_none() || self.cur_is_punct(";") {
                        break;
                    }
                    self.use_tree(prefix, is_pub, skip_record);
                }
                break;
            }
            if tok.kind != TokKind::Ident {
                break;
            }
            let seg = tok.text.clone();
            let line = tok.line;
            self.i += 1;
            if self.cur_is_punct("::") {
                prefix.push(seg);
                self.i += 1;
                continue;
            }
            // Leaf segment, possibly renamed.
            let mut target = prefix.clone();
            let mut local = seg.clone();
            if seg == "self" {
                local = prefix.last().cloned().unwrap_or_else(|| "self".to_string());
            } else {
                target.push(seg);
            }
            if self.cur_is_ident("as") {
                self.i += 1;
                if let Some(alias) = self.cur().filter(|t| t.kind == TokKind::Ident) {
                    local = alias.text.clone();
                    self.i += 1;
                }
            }
            if !skip_record {
                self.uses.push(UseBinding { local, target, is_pub, line });
            }
            break;
        }
        prefix.truncate(depth);
    }

    /// Parses an `impl` header from the `impl` keyword up to (not
    /// including) the body `{`; returns the self type's last path
    /// segment.
    fn parse_impl_header(&mut self) -> Option<String> {
        self.i += 1; // `impl`
        if self.cur_is_punct("<") {
            self.skip_angle();
        }
        let mut ty: Option<String> = None;
        let mut prev_was_pathsep = false;
        while let Some(tok) = self.cur() {
            if tok.is_punct("{") || tok.is_punct(";") {
                break;
            }
            if tok.is_ident("where") {
                while let Some(t) = self.cur() {
                    if t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("<") {
                        self.skip_angle();
                    } else {
                        self.i += 1;
                    }
                }
                break;
            }
            if tok.is_ident("for") {
                self.i += 1;
                if self.cur_is_punct("<") {
                    // `for<'a>` higher-ranked bound, not a trait impl.
                    self.skip_angle();
                } else {
                    ty = None;
                }
                prev_was_pathsep = false;
                continue;
            }
            if tok.is_punct("<") {
                self.skip_angle();
                prev_was_pathsep = false;
                continue;
            }
            if tok.is_punct("(") {
                self.skip_balanced("(", ")");
                prev_was_pathsep = false;
                continue;
            }
            if tok.kind == TokKind::Ident {
                let word = tok.text.clone();
                if !matches!(word.as_str(), "dyn" | "const" | "unsafe" | "mut" | "async")
                    && (prev_was_pathsep || ty.is_none())
                {
                    ty = Some(word);
                }
                prev_was_pathsep = false;
                self.i += 1;
                continue;
            }
            prev_was_pathsep = tok.is_punct("::");
            self.i += 1;
        }
        ty
    }

    /// Parses a `fn` item from the `fn` keyword; records it unless
    /// `excluded`.
    fn parse_fn(&mut self, self_ty: Option<&str>, excluded: bool) {
        let fn_kw = self.i;
        self.i += 1; // `fn`
        let Some(name_tok) = self.cur().filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.i += 1;
        if self.cur_is_punct("<") {
            self.skip_angle();
        }
        if self.cur_is_punct("(") {
            self.skip_balanced("(", ")");
        }
        // Return type / where clause, up to the body or `;`.
        loop {
            let Some(tok) = self.cur() else { return };
            if tok.is_punct(";") {
                self.i += 1;
                if !excluded {
                    self.fns.push(FnDef {
                        name,
                        self_ty: self_ty.map(str::to_string),
                        line,
                        body: (self.i, self.i),
                        calls: Vec::new(),
                    });
                }
                return;
            }
            if tok.is_punct("{") {
                break;
            }
            if tok.is_punct("<") {
                self.skip_angle();
            } else if tok.is_punct("(") {
                self.skip_balanced("(", ")");
            } else if tok.is_punct("[") {
                self.skip_balanced("[", "]");
            } else {
                self.i += 1;
            }
        }
        let body_start = self.i;
        self.skip_balanced("{", "}");
        let body_end = self.i;
        if excluded {
            self.exclude(fn_kw, body_end);
            return;
        }
        let calls = extract_calls(self.t, body_start + 1, body_end.saturating_sub(1));
        self.fns.push(FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            line,
            body: (body_start, body_end),
            calls,
        });
    }
}

/// Whether a call's argument list opens at `j` (skipping one optional
/// turbofish `::<..>`), returning the index of the `(` if so.
fn call_paren_after(t: &[Tok], j: usize) -> Option<usize> {
    let next = t.get(j)?;
    if next.is_punct("(") {
        return Some(j);
    }
    if next.is_punct("::") && t.get(j + 1).is_some_and(|t| t.is_punct("<")) {
        // Skip the turbofish.
        let mut depth = 0usize;
        let mut k = j + 1;
        while let Some(tok) = t.get(k) {
            if tok.is_punct("<") {
                depth += 1;
            } else if tok.is_punct(">") && !t[k - 1].is_punct("-") {
                depth -= 1;
                if depth == 0 {
                    return t.get(k + 1).is_some_and(|t| t.is_punct("(")).then_some(k + 1);
                }
            }
            k += 1;
        }
    }
    None
}

/// Extracts call sites from a body token range.
fn extract_calls(t: &[Tok], from: usize, to: usize) -> Vec<Call> {
    let mut calls = Vec::new();
    let to = to.min(t.len());
    for j in from..to {
        let tok = &t[j];
        if tok.kind != TokKind::Ident {
            continue;
        }
        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if t.get(j + 1).is_some_and(|n| n.is_punct("!"))
            && t.get(j + 2).is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
        {
            calls.push(Call { callee: Callee::Macro(tok.text.clone()), line: tok.line });
            continue;
        }
        if is_expr_keyword(&tok.text) {
            continue;
        }
        let prev = j.checked_sub(1).map(|k| &t[k]);
        if call_paren_after(t, j + 1).is_none() {
            // A path *reference* (`xs.map(Cycle::as_u64)`, `Some(Self::helper)`)
            // still names a callee: record multi-segment paths at their
            // final segment so function references create edges too.
            if prev.is_some_and(|p| p.is_punct("::"))
                && !t.get(j + 1).is_some_and(|n| n.is_punct("::"))
            {
                let mut segs = vec![tok.text.clone()];
                let mut k = j;
                while k >= 2 && t[k - 1].is_punct("::") && t[k - 2].kind == TokKind::Ident {
                    segs.insert(0, t[k - 2].text.clone());
                    k -= 2;
                }
                if segs.len() > 1 {
                    calls.push(Call { callee: Callee::Path(segs), line: tok.line });
                }
            }
            continue;
        }
        if prev.is_some_and(|p| p.is_punct(".")) {
            calls.push(Call { callee: Callee::Method(tok.text.clone()), line: tok.line });
            continue;
        }
        if prev.is_some_and(|p| p.is_punct("::")) {
            // Walk the path backwards: `a::b::name(`.
            let mut segs = vec![tok.text.clone()];
            let mut k = j;
            while k >= 2 && t[k - 1].is_punct("::") && t[k - 2].kind == TokKind::Ident {
                segs.insert(0, t[k - 2].text.clone());
                k -= 2;
            }
            if segs.len() == 1 {
                // `<T as Trait>::name(` — qualified path we cannot walk;
                // fall back to name-level matching.
                calls.push(Call { callee: Callee::Method(tok.text.clone()), line: tok.line });
            } else {
                calls.push(Call { callee: Callee::Path(segs), line: tok.line });
            }
            continue;
        }
        calls.push(Call { callee: Callee::Path(vec![tok.text.clone()]), line: tok.line });
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;
    use crate::tokens::tokenize;

    fn model(src: &str) -> FileModel {
        parse_file("crates/vm/src/x.rs", tokenize(&strip(src)))
    }

    fn bindings(src: &str) -> Vec<(String, String, bool)> {
        model(src).uses.into_iter().map(|u| (u.local, u.target.join("::"), u.is_pub)).collect()
    }

    #[test]
    fn plain_use_binds_last_segment() {
        assert_eq!(
            bindings("use std::collections::BTreeMap;"),
            [("BTreeMap".into(), "std::collections::BTreeMap".into(), false)]
        );
    }

    #[test]
    fn renamed_use_binds_the_alias() {
        assert_eq!(
            bindings("use std::collections::HashMap as Map;"),
            [("Map".into(), "std::collections::HashMap".into(), false)]
        );
    }

    #[test]
    fn nested_groups_and_self() {
        assert_eq!(
            bindings("use a::b::{self, c::D, e as F};"),
            [
                ("b".into(), "a::b".into(), false),
                ("D".into(), "a::b::c::D".into(), false),
                ("F".into(), "a::b::e".into(), false),
            ]
        );
    }

    #[test]
    fn glob_imports_are_recorded() {
        assert_eq!(
            bindings("use std::collections::*;"),
            [("*".into(), "std::collections".into(), false)]
        );
    }

    #[test]
    fn pub_use_is_marked() {
        assert_eq!(
            bindings("pub use std::time::Instant as Clock;"),
            [("Clock".into(), "std::time::Instant".into(), true)]
        );
    }

    #[test]
    fn fns_carry_their_impl_type() {
        let m = model(
            "pub struct Tlb;\n\
             impl Tlb {\n    pub fn lookup(&self) -> u64 { self.probe() }\n}\n\
             impl Default for Tlb {\n    fn default() -> Self { Tlb }\n}\n\
             fn free_fn() {}\n",
        );
        let sigs: Vec<_> = m.fns.iter().map(|f| (f.self_ty.as_deref(), f.name.as_str())).collect();
        assert_eq!(sigs, [(Some("Tlb"), "lookup"), (Some("Tlb"), "default"), (None, "free_fn")]);
    }

    #[test]
    fn trait_methods_carry_the_trait_name() {
        let m = model("trait Sink {\n    fn record(&mut self);\n    fn flush(&mut self) {}\n}\n");
        let sigs: Vec<_> = m.fns.iter().map(|f| (f.self_ty.as_deref(), f.name.as_str())).collect();
        assert_eq!(sigs, [(Some("Sink"), "record"), (Some("Sink"), "flush")]);
    }

    #[test]
    fn generic_impls_resolve_the_self_type() {
        let m = model(
            "impl<S: WarpStream> Sm<S> { fn advance(&mut self) {} }\n\
             impl WarpStream for Box<dyn WarpStream> { fn next_op(&mut self) {} }\n",
        );
        let sigs: Vec<_> = m.fns.iter().map(|f| (f.self_ty.as_deref(), f.name.as_str())).collect();
        assert_eq!(sigs, [(Some("Sm"), "advance"), (Some("Box"), "next_op")]);
    }

    #[test]
    fn calls_are_extracted_with_shape() {
        let m = model(
            "fn f(x: &T) {\n\
             \x20   helper(1);\n\
             \x20   x.method(2);\n\
             \x20   Tlb::lookup(x);\n\
             \x20   crate::module::free(3);\n\
             \x20   panic!(\"boom\");\n\
             \x20   let v: Vec<u64> = xs.iter().collect::<Vec<_>>();\n\
             }\n",
        );
        let calls = &m.fns[0].calls;
        assert!(calls.contains(&Call { callee: Callee::Path(vec!["helper".into()]), line: 2 }));
        assert!(calls.contains(&Call { callee: Callee::Method("method".into()), line: 3 }));
        assert!(calls.contains(&Call {
            callee: Callee::Path(vec!["Tlb".into(), "lookup".into()]),
            line: 4
        }));
        assert!(calls.contains(&Call {
            callee: Callee::Path(vec!["crate".into(), "module".into(), "free".into()]),
            line: 5
        }));
        assert!(calls.contains(&Call { callee: Callee::Macro("panic".into()), line: 6 }));
        assert!(calls.contains(&Call { callee: Callee::Method("collect".into()), line: 7 }));
    }

    #[test]
    fn cfg_test_items_are_excluded() {
        let m = model(
            "fn real() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n    fn fake() { panic!(\"x\"); }\n}\n",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
        // Tokens of the test module are excluded.
        let excluded_idents: Vec<_> = m
            .tokens
            .iter()
            .zip(&m.included)
            .filter(|(t, inc)| !**inc && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(excluded_idents.contains(&"fake"));
        assert!(!excluded_idents.contains(&"real"));
    }

    #[test]
    fn cfg_test_fn_is_excluded_mid_file() {
        let m = model("#[cfg(test)]\nfn probe() {}\nfn real() {}\n");
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn attributes_are_excluded_from_matching() {
        let m = model("#[derive(Debug, Clone)]\npub struct S;\n");
        let derive = m.tokens.iter().position(|t| t.is_ident("Debug")).unwrap();
        assert!(!m.included[derive]);
        let s = m.tokens.iter().position(|t| t.is_ident("S")).unwrap();
        assert!(m.included[s]);
    }

    #[test]
    fn crate_idents_derive_from_paths() {
        assert_eq!(crate_ident("crates/vm/src/tlb.rs"), "mosaic_vm");
        assert_eq!(crate_ident("crates/sim-core/src/rng.rs"), "mosaic_sim_core");
        assert_eq!(crate_ident("src/lib.rs"), "mosaic");
        assert_eq!(crate_ident("crates/analysis/src/lib.rs"), "mosaic_audit");
    }
}
