//! The audit rules: what the determinism/invariant policy bans and where.
//!
//! Every rule works on *stripped* source (see [`crate::lexer::strip`]) so
//! comments and string literals can mention banned constructs freely, and
//! everything from the first `#[cfg(test)]` to the end of the file is
//! exempt (test modules sit at the bottom of each file in this workspace;
//! tests may use wall-clocks and unwraps at will).

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// The rule identifiers, for `--help` style listings.
pub const RULES: [(&str, &str); 5] = [
    (
        "hashmap-in-sim",
        "HashMap/HashSet in a cycle-level crate: iteration order would leak \
         host randomness into simulated state (use BTreeMap/BTreeSet)",
    ),
    (
        "wall-clock",
        "std::time::Instant/SystemTime in simulation logic: simulated \
         behavior must depend only on simulated time",
    ),
    (
        "thread-rng",
        "thread_rng or entropy-seeded randomness: all streams must come \
         from the seeded SimRng",
    ),
    (
        "panic-in-hotpath",
        "unwrap()/expect()/panic! in a per-cycle hot-path file: recoverable \
         conditions must be handled, invariants belong in the audit",
    ),
    (
        "lossy-cast",
        "lossy `as` cast of an address/cycle-typed value: addresses and \
         cycle counts are u64 end to end",
    ),
];

/// Crates whose code runs at cycle granularity: everything the simulated
/// state or timing can observe. The workloads/experiments/bench crates sit
/// outside the simulated machine and may use host facilities.
pub const CYCLE_CRATES: [&str; 7] = ["sim-core", "gpu", "gpusim", "vm", "core", "mem", "iobus"];

/// Files on the per-warp-access hot path, where a panic takes down the
/// whole simulation: panics there must be either eliminated or explicitly
/// justified in the allowlist.
pub const HOT_PATH_FILES: [&str; 10] = [
    "crates/gpu/src/sm.rs",
    "crates/gpu/src/warp.rs",
    "crates/vm/src/tlb.rs",
    "crates/vm/src/walker.rs",
    "crates/vm/src/walk_cache.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/dram.rs",
    "crates/mem/src/xbar.rs",
    "crates/iobus/src/lib.rs",
    "crates/gpusim/src/system.rs",
];

/// The crate a repo-relative path belongs to (`crates/<name>/...`), if any.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn is_cycle_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| CYCLE_CRATES.contains(&c))
}

fn is_hot_path(path: &str) -> bool {
    HOT_PATH_FILES.contains(&path)
}

/// Whether `needle` occurs in `line` as a whole identifier (not as part of
/// a longer one, which would be a different name entirely).
fn has_ident(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !line[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= line.len()
            || !line[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Narrow integer types an address- or cycle-typed u64 must never be cast
/// into with `as` (silent truncation).
const NARROW_INTS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Detects `<expr>.raw() as <narrow>` / `<expr>.as_u64() as <narrow>`:
/// the typed-address escape hatches immediately truncated.
fn lossy_cast(line: &str) -> Option<String> {
    for source in [".raw()", ".as_u64()"] {
        let mut from = 0;
        while let Some(pos) = line[from..].find(source) {
            let after = from + pos + source.len();
            let rest = line[after..].trim_start();
            if let Some(cast) = rest.strip_prefix("as ") {
                let ty: String =
                    cast.trim_start().chars().take_while(|c| c.is_alphanumeric()).collect();
                if NARROW_INTS.contains(&ty.as_str()) {
                    return Some(format!("`{source} as {ty}` silently truncates"));
                }
            }
            from = after;
        }
    }
    None
}

/// Scans one file's *stripped* source, returning every finding. `path` is
/// repo-relative with forward slashes; it selects which rules apply.
pub fn scan_stripped(path: &str, stripped: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let cycle = is_cycle_crate(path);
    let hot = is_hot_path(path);
    for (idx, line) in stripped.lines().enumerate() {
        // Test modules (from `#[cfg(test)]` down) are exempt from every
        // rule: they run off the simulated clock and may panic freely.
        if line.contains("#[cfg(test)]") {
            break;
        }
        let lineno = idx + 1;
        let mut push = |rule: &'static str, message: String| {
            findings.push(Finding { rule, path: path.to_string(), line: lineno, message });
        };
        if cycle {
            for name in ["HashMap", "HashSet"] {
                if has_ident(line, name) {
                    push(
                        "hashmap-in-sim",
                        format!("{name} in a cycle-level crate: use BTreeMap/BTreeSet"),
                    );
                }
            }
            for name in ["Instant", "SystemTime"] {
                if has_ident(line, name) {
                    push(
                        "wall-clock",
                        format!("{name} in simulation logic: use the simulated clock"),
                    );
                }
            }
        }
        if has_ident(line, "thread_rng") || has_ident(line, "from_entropy") {
            push(
                "thread-rng",
                "entropy-seeded randomness: derive a stream from the seeded SimRng".to_string(),
            );
        }
        if hot {
            for pat in [".unwrap()", ".expect(", "panic!(", "unreachable!("] {
                if line.contains(pat) {
                    push("panic-in-hotpath", format!("`{pat}` on the per-cycle hot path"));
                }
            }
        }
        if cycle {
            if let Some(msg) = lossy_cast(line) {
                push("lossy-cast", msg);
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_stripped(path, &crate::lexer::strip(src))
    }

    #[test]
    fn hashmap_flagged_only_in_cycle_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan("crates/vm/src/x.rs", src).len(), 1);
        assert_eq!(scan("crates/workloads/src/x.rs", src).len(), 0);
    }

    #[test]
    fn hashmap_in_comment_or_string_is_fine() {
        let src = "// a HashMap would be wrong\nlet s = \"HashMap\";\n";
        assert!(scan("crates/vm/src/x.rs", src).is_empty());
    }

    #[test]
    fn identifier_boundaries_respected() {
        assert!(scan("crates/vm/src/x.rs", "struct MyHashMapLike;\n").is_empty());
        assert_eq!(scan("crates/vm/src/x.rs", "let m: HashMap<u8,u8>;\n").len(), 1);
    }

    #[test]
    fn wall_clock_flagged() {
        let f = scan("crates/gpusim/src/x.rs", "let t = std::time::Instant::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn thread_rng_flagged_everywhere() {
        let f = scan("crates/workloads/src/x.rs", "let mut r = rand::thread_rng();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "thread-rng");
    }

    #[test]
    fn panics_flagged_only_in_hot_path_files() {
        let src = "let x = y.unwrap();\n";
        let f = scan("crates/vm/src/tlb.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panic-in-hotpath");
        assert!(scan("crates/vm/src/page_table.rs", src).is_empty());
    }

    #[test]
    fn lossy_casts_flagged() {
        let f = scan("crates/vm/src/x.rs", "let c = addr.raw() as u32;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lossy-cast");
        assert!(scan("crates/vm/src/x.rs", "let c = addr.raw() as u64;\n").is_empty());
        assert!(scan("crates/vm/src/x.rs", "let c = addr.raw() as f64;\n").is_empty());
        assert_eq!(scan("crates/vm/src/x.rs", "let c = t.as_u64() as u32;\n").len(), 1);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n";
        assert!(scan("crates/vm/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_line_numbers() {
        let src = "fn a() {}\nuse std::collections::HashSet;\n";
        let f = scan("crates/mem/src/x.rs", src);
        assert_eq!(f[0].line, 2);
    }
}
