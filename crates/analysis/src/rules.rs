//! The audit rules: what the determinism/invariant policy bans and where.
//!
//! Rules run over the *parsed* workspace (token stream + item model +
//! call graph), not over raw lines: comments and string literals are
//! erased by [`crate::lexer::strip`], `#[cfg(test)]` items are excluded
//! by the parser, and the hot path is the reachability closure computed
//! by [`crate::graph`] — not a hand-maintained file list.

use crate::graph::Closure;
use crate::parse::{Callee, FileModel, UseBinding};
use std::collections::BTreeMap;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// One rule: identifier, one-line summary, and the long-form rationale
/// printed by `mosaic-audit explain <rule>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable identifier (used in findings and `allow.list`).
    pub id: &'static str,
    /// One-line summary for listings.
    pub summary: &'static str,
    /// Long-form rationale: why the construct is banned, what to use
    /// instead, and when an allowlist entry is legitimate.
    pub explain: &'static str,
}

/// Every rule the analyzer enforces.
pub const RULES: &[Rule] = &[
    Rule {
        id: "hashmap-in-sim",
        summary: "HashMap/HashSet in a cycle-level crate: iteration order would leak \
                  host randomness into simulated state (use BTreeMap/BTreeSet)",
        explain: "std's hash containers randomize their hash seed per process, so any \
                  iteration over them observes a host-random order. In a cycle-level \
                  crate that order can reach simulated state or timing, breaking the \
                  same-seed-same-run contract every figure and golden digest depends \
                  on. Use BTreeMap/BTreeSet (deterministic order) instead. Allowlist \
                  only if iteration order provably never escapes (and say why).",
    },
    Rule {
        id: "wall-clock",
        summary: "std::time::Instant/SystemTime in simulation logic: simulated \
                  behavior must depend only on simulated time",
        explain: "Simulated behavior must be a function of simulated time (`Cycle`), \
                  never of how fast the host happens to run. Instant/SystemTime in a \
                  cycle-level crate means timing leaks into results. Host-side timing \
                  (benchmarks, progress meters) belongs in the bench/experiments \
                  crates, which this rule does not cover.",
    },
    Rule {
        id: "thread-rng",
        summary: "thread_rng or entropy-seeded randomness: all streams must come \
                  from the seeded SimRng",
        explain: "Every random stream in the workspace must fork from the run's seed \
                  (SimRng::from_seed + fork), so a seed fully determines a run. \
                  thread_rng/from_entropy pull host entropy and are banned everywhere, \
                  including workload generators — a workload built from entropy cannot \
                  be reproduced from its config.",
    },
    Rule {
        id: "panic-in-hotpath",
        summary: "unwrap()/expect()/panic! in a function reachable from a per-cycle \
                  entry point: recoverable conditions must be handled, invariants \
                  belong in the audit",
        explain: "The hot path is computed, not listed: every function reachable in \
                  the call graph from the per-cycle entry points (see `mosaic-audit \
                  graph`) is hot, because a panic there takes down the whole \
                  simulation mid-run. Return Option/Result for recoverable states; \
                  move invariant checks into the AuditInvariants sweep. Allowlist \
                  entries are per file and must argue why the panic is unreachable \
                  by construction.",
    },
    Rule {
        id: "lossy-cast",
        summary: "lossy `as` cast of an address/cycle-typed value: addresses and \
                  cycle counts are u64 end to end",
        explain: "`.raw() as u32` and friends silently truncate addresses above 4 GiB \
                  and cycle counts past ~4e9 — both occur in long runs. Keep u64 end \
                  to end; narrow only through checked conversions that make the \
                  failure mode explicit.",
    },
    Rule {
        id: "banned-alias",
        summary: "a `use ... as` rename, re-export, or glob that smuggles a banned \
                  type past the ident rules (e.g. `use std::collections::HashMap as \
                  Map`)",
        explain: "The ident rules match names; a rename (`use std::collections::\
                  HashMap as Map`), a cross-crate re-export (`pub use` in a non-cycle \
                  crate, imported by a cycle crate), or a glob over std::collections/\
                  std::time lets banned constructs in without their name ever \
                  appearing. The analyzer resolves use-trees (including renames and \
                  re-export chains) and flags both the smuggling binding and every \
                  use of the alias.",
    },
    Rule {
        id: "interior-mutability",
        summary: "RefCell/Cell/UnsafeCell or `static mut` in a cycle-level crate: \
                  hidden mutation defeats the determinism audit",
        explain: "Interior mutability lets &self methods mutate state the runtime \
                  audit and the conformance oracles cannot see, and `static mut` \
                  adds cross-run leakage on top. Cycle-level state must be owned and \
                  mutated through &mut so every write is visible to the borrow \
                  checker and the audit. Allowlist only result-invariant caches \
                  (e.g. a scan-position hint) with a digest-level argument.",
    },
    Rule {
        id: "relaxed-atomic",
        summary: "Ordering::Relaxed atomics outside the allowlisted host-side \
                  executors: relaxed ordering has no place in simulated state",
        explain: "Relaxed atomics provide no happens-before edges; results read \
                  through them can differ run to run under the parallel sweep \
                  executor. The only sanctioned uses are host-side coordination \
                  that is provably result-invariant (the sweep executor's progress \
                  counter, telemetry reassembly), each carried by an allowlist \
                  entry. Anything else must use a stronger ordering or a lock.",
    },
    Rule {
        id: "telemetry-gate",
        summary: "telemetry use outside the zero-overhead emit() closure gate in a \
                  cycle-level crate",
        explain: "Cycle crates may only touch telemetry through `emit(|| Event::..)` \
                  (and the `enabled()` fast check): the closure keeps event \
                  construction off the disabled path, which is what makes traced and \
                  untraced runs bit-identical. Constructing an Event outside emit, \
                  or calling set_enabled/set_sink/TraceSession from a cycle crate, \
                  puts tracing state on the simulated path.",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Crates whose code runs at cycle granularity: everything the simulated
/// state or timing can observe. The workloads/experiments/bench crates sit
/// outside the simulated machine and may use host facilities.
pub const CYCLE_CRATES: [&str; 7] = ["sim-core", "gpu", "gpusim", "vm", "core", "mem", "iobus"];

/// The crate a repo-relative path belongs to (`crates/<name>/...`), if any.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Whether a repo-relative path is in a cycle-level crate.
pub fn is_cycle_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| CYCLE_CRATES.contains(&c))
}

/// Banned container/clock names (cycle crates only).
const BANNED_CYCLE_NAMES: [(&str, &str, &str); 4] = [
    ("HashMap", "hashmap-in-sim", "use BTreeMap/BTreeSet"),
    ("HashSet", "hashmap-in-sim", "use BTreeMap/BTreeSet"),
    ("Instant", "wall-clock", "use the simulated clock"),
    ("SystemTime", "wall-clock", "use the simulated clock"),
];

/// Entropy names (banned everywhere).
const BANNED_EVERYWHERE_NAMES: [&str; 2] = ["thread_rng", "from_entropy"];

/// Interior-mutability cell types (cycle crates only).
const CELL_NAMES: [&str; 5] = ["Cell", "RefCell", "UnsafeCell", "OnceCell", "LazyCell"];

/// Narrow integer types an address- or cycle-typed u64 must never be cast
/// into with `as` (silent truncation).
const NARROW_INTS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Modules whose glob import smuggles banned types into a cycle crate.
const BANNED_GLOB_MODULES: [&str; 2] = ["std::collections", "std::time"];

/// Scans the whole parsed workspace against every rule.
pub fn scan_workspace(files: &[FileModel], closure: &Closure) -> Vec<Finding> {
    let exports = export_map(files);
    let mut findings = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        scan_idents(file, &mut findings);
        scan_aliases(file, &exports, &mut findings);
        scan_telemetry_gate(file, &mut findings);
        scan_hot_panics(files, closure, fi, &mut findings);
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Token-level ident rules: banned names, interior mutability, relaxed
/// atomics, lossy casts.
fn scan_idents(file: &FileModel, findings: &mut Vec<Finding>) {
    let cycle = is_cycle_crate(&file.path);
    let toks = &file.tokens;
    let mut push = |rule: &'static str, line: u32, message: String| {
        findings.push(Finding { rule, path: file.path.clone(), line: line as usize, message });
    };
    for (i, tok) in toks.iter().enumerate() {
        if !file.included[i] || tok.kind != crate::tokens::TokKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        if cycle {
            for (banned, rule, fix) in BANNED_CYCLE_NAMES {
                if name == banned {
                    let what = match rule {
                        "hashmap-in-sim" => format!("{banned} in a cycle-level crate: {fix}"),
                        _ => format!("{banned} in simulation logic: {fix}"),
                    };
                    push(rule, tok.line, what);
                }
            }
            if CELL_NAMES.contains(&name) {
                push(
                    "interior-mutability",
                    tok.line,
                    format!("{name} in a cycle-level crate: hidden mutation defeats the audit"),
                );
            }
            if name == "static" && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
                push(
                    "interior-mutability",
                    tok.line,
                    "`static mut` in a cycle-level crate: global mutable state leaks across runs"
                        .to_string(),
                );
            }
            // `.raw() as <narrow>` / `.as_u64() as <narrow>`.
            if (name == "raw" || name == "as_u64")
                && i >= 1
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(")"))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("as"))
            {
                if let Some(ty) = toks.get(i + 4) {
                    if NARROW_INTS.contains(&ty.text.as_str()) {
                        push(
                            "lossy-cast",
                            tok.line,
                            format!("`.{name}() as {}` silently truncates", ty.text),
                        );
                    }
                }
            }
        }
        if BANNED_EVERYWHERE_NAMES.contains(&name) {
            push(
                "thread-rng",
                tok.line,
                "entropy-seeded randomness: derive a stream from the seeded SimRng".to_string(),
            );
        }
        if name == "Relaxed"
            && i >= 2
            && toks[i - 1].is_punct("::")
            && toks[i - 2].is_ident("Ordering")
        {
            push(
                "relaxed-atomic",
                tok.line,
                "Ordering::Relaxed: no happens-before edge; use a stronger ordering or \
                 get the file allowlisted as host-side-only"
                    .to_string(),
            );
        }
    }
}

/// Workspace-wide `pub use` re-export map: (crate ident, exported name)
/// -> target path as written at the re-export site.
fn export_map(files: &[FileModel]) -> BTreeMap<(String, String), Vec<String>> {
    let mut map = BTreeMap::new();
    for file in files {
        for u in &file.uses {
            if u.is_pub && u.local != "*" {
                map.insert((file.krate.clone(), u.local.clone()), u.target.clone());
            }
        }
    }
    map
}

/// Follows a `use` target through cross-crate `pub use` chains to the
/// path it ultimately names.
fn ultimate_target(
    file: &FileModel,
    binding: &UseBinding,
    exports: &BTreeMap<(String, String), Vec<String>>,
) -> Vec<String> {
    let mut target = binding.target.clone();
    let mut krate = file.krate.clone();
    let mut hops = 0;
    loop {
        hops += 1;
        if hops > 8 {
            return target;
        }
        let Some(first) = target.first().cloned() else { return target };
        let next_krate = if first == "crate" || first == "self" || first == "super" {
            krate.clone()
        } else if first.starts_with("mosaic") {
            first
        } else {
            return target; // std / external: as resolved as it gets
        };
        let Some(name) = target.last() else { return target };
        match exports.get(&(next_krate.clone(), name.clone())) {
            Some(re) if *re != target => {
                target = re.clone();
                krate = next_krate;
            }
            _ => return target,
        }
    }
}

/// What a resolved path is banned as, if anything.
fn banned_as(resolved: &[String], cycle: bool) -> Option<(&'static str, &'static str)> {
    let last = resolved.last().map(String::as_str)?;
    if BANNED_EVERYWHERE_NAMES.contains(&last) {
        return Some(("thread-rng", last_static(last)));
    }
    if !cycle {
        return None;
    }
    BANNED_CYCLE_NAMES
        .iter()
        .find(|(banned, _, _)| *banned == last)
        .map(|(banned, _, _)| ("banned-alias", *banned))
        .or_else(|| {
            (last == "Relaxed" && resolved.iter().any(|s| s == "Ordering"))
                .then_some(("banned-alias", "Relaxed"))
        })
}

/// Static name for the entropy sources (for message formatting).
fn last_static(name: &str) -> &'static str {
    match name {
        "thread_rng" => "thread_rng",
        "from_entropy" => "from_entropy",
        "Relaxed" => "Relaxed",
        _ => "banned construct",
    }
}

/// The alias rules: renamed/re-exported/glob-imported banned constructs,
/// plus every use of such an alias.
fn scan_aliases(
    file: &FileModel,
    exports: &BTreeMap<(String, String), Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let cycle = is_cycle_crate(&file.path);
    let mut banned_locals: Vec<(String, String, u32)> = Vec::new(); // (local, canonical, line)
    for u in &file.uses {
        if u.local == "*" {
            if cycle {
                let module = u.target.join("::");
                if BANNED_GLOB_MODULES.iter().any(|m| module.ends_with(m)) {
                    findings.push(Finding {
                        rule: "banned-alias",
                        path: file.path.clone(),
                        line: u.line as usize,
                        message: format!(
                            "glob import of {module}: banned types become nameable without \
                             their name ever appearing"
                        ),
                    });
                }
            }
            continue;
        }
        let resolved = ultimate_target(file, u, exports);
        let Some((_, canonical)) = banned_as(&resolved, cycle) else { continue };
        // A plain `use std::collections::HashMap;` is already flagged by
        // the ident rules (the banned name appears); the alias rule
        // covers the smuggling forms, where the local name differs.
        if u.local == canonical {
            continue;
        }
        findings.push(Finding {
            rule: "banned-alias",
            path: file.path.clone(),
            line: u.line as usize,
            message: format!(
                "`{}` is an alias of {} — renaming does not lift the ban",
                u.local,
                resolved.join("::")
            ),
        });
        banned_locals.push((u.local.clone(), resolved.join("::"), u.line));
    }
    // Flag every use of a banned alias (beyond its binding line).
    for (i, tok) in file.tokens.iter().enumerate() {
        if !file.included[i] || tok.kind != crate::tokens::TokKind::Ident {
            continue;
        }
        for (local, canonical, bind_line) in &banned_locals {
            if tok.text == *local && tok.line != *bind_line {
                findings.push(Finding {
                    rule: "banned-alias",
                    path: file.path.clone(),
                    line: tok.line as usize,
                    message: format!("`{local}` here is {canonical}"),
                });
            }
        }
    }
}

/// The telemetry gate: cycle crates may only touch telemetry through
/// `emit(|| ..)` and `enabled()`.
fn scan_telemetry_gate(file: &FileModel, findings: &mut Vec<Finding>) {
    if !is_cycle_crate(&file.path) {
        return;
    }
    // Local names bound to telemetry items in this file. Only names that
    // provably come from mosaic_telemetry participate — an unrelated
    // `Event` enum in a cycle crate is not this rule's business.
    let mut event_names: Vec<String> = Vec::new();
    let mut emit_names: Vec<String> = Vec::new();
    for u in &file.uses {
        if u.target.first().is_some_and(|s| s == "mosaic_telemetry") {
            if u.target.last().is_some_and(|s| s == "Event") {
                event_names.push(u.local.clone());
            }
            if u.target.last().is_some_and(|s| s == "emit") {
                emit_names.push(u.local.clone());
            }
        }
    }
    let toks = &file.tokens;
    for f in &file.fns {
        let (start, end) = f.body;
        let mut emit_depths: Vec<usize> = Vec::new();
        let mut paren_depth = 0usize;
        let mut j = start;
        while j < end.min(toks.len()) {
            let tok = &toks[j];
            if tok.is_punct("(") {
                paren_depth += 1;
            } else if tok.is_punct(")") {
                paren_depth = paren_depth.saturating_sub(1);
                while emit_depths.last().is_some_and(|&d| d > paren_depth) {
                    emit_depths.pop();
                }
            } else if tok.kind == crate::tokens::TokKind::Ident && file.included[j] {
                let name = tok.text.as_str();
                let qualified_telemetry = j >= 2
                    && toks[j - 1].is_punct("::")
                    && toks[j - 2].is_ident("mosaic_telemetry");
                let unqualified = !toks.get(j.wrapping_sub(1)).is_some_and(|t| t.is_punct("::"));
                let is_emit = (qualified_telemetry && name == "emit")
                    || (unqualified && emit_names.iter().any(|e| e.as_str() == name));
                if is_emit && toks.get(j + 1).is_some_and(|t| t.is_punct("(")) {
                    emit_depths.push(paren_depth + 1);
                    paren_depth += 1;
                    j += 2;
                    continue;
                }
                let gated_event = toks.get(j + 1).is_some_and(|t| t.is_punct("::"))
                    && ((qualified_telemetry && name == "Event")
                        || (unqualified && event_names.iter().any(|e| e.as_str() == name)));
                if gated_event && emit_depths.is_empty() {
                    findings.push(Finding {
                        rule: "telemetry-gate",
                        path: file.path.clone(),
                        line: tok.line as usize,
                        message: format!(
                            "`{name}::..` constructed outside `emit(|| ..)`: events must be \
                             built inside the gate closure"
                        ),
                    });
                }
                if matches!(name, "set_enabled" | "set_sink" | "TraceSession")
                    && (qualified_telemetry
                        || file.uses.iter().any(|u| {
                            u.local == name
                                && u.target.first().is_some_and(|s| s == "mosaic_telemetry")
                        }))
                {
                    findings.push(Finding {
                        rule: "telemetry-gate",
                        path: file.path.clone(),
                        line: tok.line as usize,
                        message: format!(
                            "`{name}` called from a cycle-level crate: tracing state belongs \
                             to the experiments layer"
                        ),
                    });
                }
            }
            j += 1;
        }
    }
}

/// The closure-based panic rule: `.unwrap()`, `.expect(..)`, `panic!`,
/// `unreachable!`, `todo!`, `unimplemented!` in any function reachable
/// from a per-cycle entry point.
fn scan_hot_panics(files: &[FileModel], closure: &Closure, fi: usize, findings: &mut Vec<Finding>) {
    let file = &files[fi];
    for (gi, f) in file.fns.iter().enumerate() {
        if !closure.contains(fi, gi) {
            continue;
        }
        let ctx = match &f.self_ty {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        };
        for call in &f.calls {
            let what = match &call.callee {
                Callee::Method(m) if m == "unwrap" => Some(".unwrap()"),
                Callee::Method(m) if m == "expect" => Some(".expect(..)"),
                Callee::Macro(m) if m == "panic" => Some("panic!"),
                Callee::Macro(m) if m == "unreachable" => Some("unreachable!"),
                Callee::Macro(m) if m == "todo" => Some("todo!"),
                Callee::Macro(m) if m == "unimplemented" => Some("unimplemented!"),
                _ => None,
            };
            if let Some(what) = what {
                findings.push(Finding {
                    rule: "panic-in-hotpath",
                    path: file.path.clone(),
                    line: call.line as usize,
                    message: format!("`{what}` in `{ctx}`, reachable from a per-cycle entry point"),
                });
            }
        }
    }
}
