//! The GPU-MMU baseline memory manager (Section 3.1).
//!
//! Power et al.'s GPU MMU design with the paper's modification: a
//! 512-entry shared L2 TLB in place of the page-walk cache. Its allocator
//! is what Figure 1a depicts: base pages are handed out in fault-arrival
//! order from a shared "open" large frame, so pages of different
//! applications interleave within large frames and virtually-contiguous
//! pages scatter physically. Consequently the baseline can essentially
//! never coalesce without migrating data — which it therefore never does.
//!
//! The same type also provides the **2 MB-only** configuration used by the
//! Section 3 motivation experiments: every first touch materializes (and
//! transfers!) an entire large page, exposing both the six-fold far-fault
//! latency and the memory bloat of large-page-only management.

use crate::frames::FramePool;
use crate::{EvictOutcome, ManagerStats, MemError, MemoryManager, MgmtEvent, TouchOutcome};
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PageTableSet, PhysFrameNum, VirtPageNum,
    BASE_PAGES_PER_LARGE_PAGE, BASE_PAGE_SIZE, LARGE_PAGE_SIZE,
};
use std::collections::BTreeSet;

/// The baseline manager.
///
/// # Examples
///
/// ```
/// use mosaic_core::{GpuMmuManager, MemoryManager};
/// use mosaic_vm::{AppId, PageSize, VirtPageNum};
///
/// let mut mmu = GpuMmuManager::new(64 * 2 * 1024 * 1024, 6, PageSize::Base);
/// mmu.register_app(AppId(0));
/// mmu.reserve(AppId(0), VirtPageNum(0), 1024);
/// let outcome = mmu.touch(AppId(0), VirtPageNum(7)).unwrap();
/// assert_eq!(outcome.transfer_bytes, 4096); // base-page far-fault
/// ```
#[derive(Debug)]
pub struct GpuMmuManager {
    page_size: PageSize,
    tables: PageTableSet,
    pool: FramePool,
    /// The shared partially-filled frame base allocations bump through —
    /// the source of Figure 1a's inter-application interleaving.
    open: Option<(LargeFrameNum, u64)>,
    reservations: Vec<(AppId, VirtPageNum, u64)>,
    touched: BTreeSet<(AppId, VirtPageNum)>,
    stats: ManagerStats,
}

impl GpuMmuManager {
    /// Creates the baseline manager over `memory_bytes` of physical memory
    /// striped across `channels`, managing pages of size `page_size`.
    pub fn new(memory_bytes: u64, channels: usize, page_size: PageSize) -> Self {
        GpuMmuManager {
            page_size,
            tables: PageTableSet::new(),
            pool: FramePool::new(memory_bytes, channels),
            open: None,
            reservations: Vec::new(),
            touched: BTreeSet::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The page size this instance manages (4 KB baseline or the 2 MB-only
    /// motivation configuration).
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Access to the frame pool (for experiment instrumentation).
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    fn is_reserved(&self, asid: AppId, vpn: VirtPageNum) -> bool {
        self.reservations.iter().any(|&(a, start, n)| {
            a == asid && vpn.raw() >= start.raw() && vpn.raw() < start.raw() + n
        })
    }

    fn alloc_base_interleaved(&mut self, asid: AppId) -> Result<mosaic_vm::PhysFrameNum, MemError> {
        let (lf, idx) = match self.open.take() {
            Some((lf, idx)) if idx < BASE_PAGES_PER_LARGE_PAGE => (lf, idx),
            _ => (self.pool.take_free_frame().ok_or(MemError::OutOfMemory)?, 0),
        };
        let pfn = lf.base_frame(idx);
        self.pool.set_owner(pfn, Some(asid));
        if idx + 1 < BASE_PAGES_PER_LARGE_PAGE {
            self.open = Some((lf, idx + 1));
        }
        Ok(pfn)
    }

    fn touch_base(&mut self, asid: AppId, vpn: VirtPageNum) -> Result<TouchOutcome, MemError> {
        if self.tables.table_mut(asid).is_mapped(vpn) {
            return Ok(TouchOutcome::default());
        }
        let pfn = self.alloc_base_interleaved(asid)?;
        self.tables.table_mut(asid).map_base(vpn, pfn).expect("checked unmapped above");
        self.pool.set_mapping(pfn, vpn);
        self.stats.far_faults += 1;
        self.stats.transferred_bytes += BASE_PAGE_SIZE;
        Ok(TouchOutcome { transfer_bytes: BASE_PAGE_SIZE, events: Vec::new() })
    }

    fn touch_large(&mut self, asid: AppId, vpn: VirtPageNum) -> Result<TouchOutcome, MemError> {
        let lpn = vpn.large_page();
        if self.tables.table_mut(asid).is_mapped(vpn) {
            return Ok(TouchOutcome::default());
        }
        if self.tables.table_mut(asid).is_coalesced(lpn) {
            // A hole drilled by a partial deallocation inside a still-live
            // large page. The backing frame cannot have been handed out
            // again (only fully-drained frames return to the pool), so the
            // page is restored into its original slot; contiguity and the
            // large mapping are untouched.
            let table = self.tables.table_mut(asid);
            let (_, neighbor, _) = table
                .region_mappings(lpn)
                .next()
                .expect("a coalesced region with a hole retains a mapping");
            let slot = neighbor.large_frame().base_frame(vpn.index_in_large());
            table.map_base(vpn, slot).expect("hole checked unmapped above");
            self.pool.set_owner(slot, Some(asid));
            self.pool.set_mapping(slot, vpn);
            self.stats.far_faults += 1;
            self.stats.transferred_bytes += BASE_PAGE_SIZE;
            return Ok(TouchOutcome { transfer_bytes: BASE_PAGE_SIZE, events: Vec::new() });
        }
        // Materialize the whole large page: one frame, 512 contiguous
        // mappings, coalesced so the TLB can use a single large entry.
        let lf = self.pool.take_free_frame().ok_or(MemError::OutOfMemory)?;
        let table = self.tables.table_mut(asid);
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            table.map_base(lpn.base_page(i), lf.base_frame(i)).expect("fresh region");
            self.pool.set_owner(lf.base_frame(i), Some(asid));
            self.pool.set_mapping(lf.base_frame(i), lpn.base_page(i));
        }
        let table = self.tables.table_mut(asid);
        table.coalesce(lpn).expect("contiguous by construction");
        self.stats.coalesces += 1;
        self.stats.far_faults += 1;
        self.stats.transferred_bytes += LARGE_PAGE_SIZE;
        mosaic_telemetry::emit(|| mosaic_telemetry::Event::Coalesce {
            asid: asid.0,
            lpn: lpn.raw(),
        });
        Ok(TouchOutcome {
            transfer_bytes: LARGE_PAGE_SIZE,
            events: vec![MgmtEvent::Coalesced { asid, lpn }],
        })
    }
}

impl MemoryManager for GpuMmuManager {
    fn name(&self) -> &str {
        match self.page_size {
            PageSize::Base => "GPU-MMU",
            PageSize::Large => "GPU-MMU-2MB",
        }
    }

    fn register_app(&mut self, asid: AppId) {
        self.tables.table_mut(asid);
    }

    fn reserve(&mut self, asid: AppId, start: VirtPageNum, pages: u64) {
        self.reservations.push((asid, start, pages));
    }

    fn touch(&mut self, asid: AppId, vpn: VirtPageNum) -> Result<TouchOutcome, MemError> {
        if !self.is_reserved(asid, vpn) {
            return Err(MemError::NotReserved);
        }
        let out = match self.page_size {
            PageSize::Base => self.touch_base(asid, vpn),
            PageSize::Large => self.touch_large(asid, vpn),
        }?;
        // Count the touch only once it succeeded: a touch that failed to
        // allocate must not inflate touched_bytes.
        self.touched.insert((asid, vpn));
        Ok(out)
    }

    fn deallocate(&mut self, asid: AppId, start: VirtPageNum, pages: u64) -> Vec<MgmtEvent> {
        let mut events = Vec::new();
        let mut lpns = BTreeSet::new();
        for i in 0..pages {
            let vpn = VirtPageNum(start.raw() + i);
            lpns.insert(vpn.large_page());
            if let Some(pfn) = self.tables.table_mut(asid).unmap_base(vpn) {
                self.pool.set_owner(pfn, None);
            }
        }
        // Splinter and release fully-drained large regions.
        for lpn in lpns {
            let table = self.tables.table_mut(asid);
            if table.mapped_in_large(lpn) == 0 && table.splinter(lpn) {
                self.stats.splinters += 1;
                mosaic_telemetry::emit(|| mosaic_telemetry::Event::Splinter {
                    asid: asid.0,
                    lpn: lpn.raw(),
                });
                events.push(MgmtEvent::Splintered { asid, lpn });
            }
        }
        // Return wholly-freed frames to the pool.
        let empty: Vec<_> =
            self.pool.tracked().filter(|(_, s)| s.is_empty()).map(|(lf, _)| lf).collect();
        for lf in empty {
            if self.open.is_none_or(|(open, _)| open != lf) {
                self.pool.release_frame(lf);
            }
        }
        events
    }

    fn note_use(&mut self, pfn: PhysFrameNum, store: bool) {
        self.pool.note_use(pfn, store);
    }

    /// Evicts least-recently-used large frames wholesale: splinter any
    /// coalesced region living in a victim, unmap every resident page,
    /// and release the frame. The shared open frame is never a victim —
    /// evicting the bump allocator's cursor would corrupt it.
    fn evict_for(&mut self, bytes: u64) -> EvictOutcome {
        let want = bytes.div_ceil(LARGE_PAGE_SIZE).max(1);
        let mut out = EvictOutcome::default();
        let mut freed = 0u64;
        for lf in self.pool.eviction_candidates() {
            if freed >= want {
                break;
            }
            if self.open.is_some_and(|(open, _)| open == lf) {
                continue;
            }
            let residents = self.pool.residents(lf);
            if residents.is_empty() {
                continue;
            }
            let mut regions: Vec<(AppId, LargePageNum)> = Vec::new();
            for &(pfn, asid, vpn) in &residents {
                if self.pool.is_dirty(pfn) {
                    out.writeback_bytes += BASE_PAGE_SIZE;
                }
                let key = (asid, vpn.large_page());
                if !regions.contains(&key) {
                    regions.push(key);
                }
            }
            // Splinter first: base unmaps inside a live coalesced large
            // mapping would leave the region half torn down.
            for &(asid, lpn) in &regions {
                let table = self.tables.table_mut(asid);
                if table.is_coalesced(lpn) {
                    table.splinter(lpn);
                }
            }
            for &(pfn, asid, vpn) in &residents {
                self.tables.table_mut(asid).unmap_base(vpn);
                self.pool.set_owner(pfn, None);
                out.evicted.push((asid, vpn));
            }
            self.pool.release_frame(lf);
            freed += 1;
            for (asid, lpn) in regions {
                out.events.push(MgmtEvent::TlbShootdown { asid, lpn });
            }
        }
        self.stats.evictions += out.evicted.len() as u64;
        self.stats.writeback_bytes += out.writeback_bytes;
        out
    }

    fn tables(&self) -> &PageTableSet {
        &self.tables
    }

    fn footprint_bytes(&self) -> u64 {
        self.pool.peak_reserved_bytes()
    }

    fn app_footprint_bytes(&self) -> u64 {
        self.pool.peak_app_reserved_bytes()
    }

    fn touched_bytes(&self) -> u64 {
        self.touched.len() as u64 * BASE_PAGE_SIZE
    }

    fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Audits the page tables and frame pool, their ownership agreement,
    /// and the bump allocator's open-frame bookkeeping.
    fn audit(&self, report: &mut mosaic_sim_core::AuditReport) {
        use mosaic_sim_core::AuditInvariants;
        self.tables.audit(report);
        self.pool.audit(report);
        crate::audit_mapping_ownership("gpu-mmu", &self.tables, &self.pool, report);
        if let Some((lf, next)) = self.open {
            report.check("gpu-mmu", next < BASE_PAGES_PER_LARGE_PAGE, || {
                format!("open frame {lf} has out-of-range bump index {next}")
            });
            report.check("gpu-mmu", self.pool.tracked().any(|(t, _)| t == lf), || {
                format!("open frame {lf} is not tracked by the pool")
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu(frames: u64, size: PageSize) -> GpuMmuManager {
        let mut m = GpuMmuManager::new(frames * LARGE_PAGE_SIZE, 6, size);
        m.register_app(AppId(0));
        m.register_app(AppId(1));
        m.reserve(AppId(0), VirtPageNum(0), 10_000);
        m.reserve(AppId(1), VirtPageNum(0), 10_000);
        m
    }

    #[test]
    fn base_mode_transfers_4kb_once() {
        let mut m = mmu(4, PageSize::Base);
        let a = m.touch(AppId(0), VirtPageNum(5)).unwrap();
        assert_eq!(a.transfer_bytes, BASE_PAGE_SIZE);
        let again = m.touch(AppId(0), VirtPageNum(5)).unwrap();
        assert_eq!(again.transfer_bytes, 0, "already resident");
        assert_eq!(m.stats().far_faults, 1);
    }

    #[test]
    fn base_mode_interleaves_applications_within_frames() {
        let mut m = mmu(4, PageSize::Base);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        m.touch(AppId(1), VirtPageNum(0)).unwrap();
        m.touch(AppId(0), VirtPageNum(1)).unwrap();
        let f0 = m.tables().table(AppId(0)).unwrap().translate(VirtPageNum(0).addr()).unwrap();
        let f1 = m.tables().table(AppId(1)).unwrap().translate(VirtPageNum(0).addr()).unwrap();
        // Figure 1a: both applications land in the same large frame.
        assert_eq!(f0.frame.large_frame(), f1.frame.large_frame());
    }

    #[test]
    fn base_mode_never_coalesces() {
        let mut m = mmu(8, PageSize::Base);
        // Touch a full 2MB region of app 0, interleaved with app 1.
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
            m.touch(AppId(1), VirtPageNum(i)).unwrap();
        }
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_coalesced(VirtPageNum(0).large_page()));
        assert_eq!(table.can_coalesce(VirtPageNum(0).large_page()).ok(), None);
        assert_eq!(m.stats().coalesces, 0);
    }

    #[test]
    fn large_mode_transfers_2mb_and_coalesces() {
        let mut m = mmu(4, PageSize::Large);
        let out = m.touch(AppId(0), VirtPageNum(3)).unwrap();
        assert_eq!(out.transfer_bytes, LARGE_PAGE_SIZE);
        assert!(matches!(out.events[0], MgmtEvent::Coalesced { .. }));
        // A sibling page in the same 2MB region is already resident.
        let sib = m.touch(AppId(0), VirtPageNum(400)).unwrap();
        assert_eq!(sib.transfer_bytes, 0);
        let t = m.tables().table(AppId(0)).unwrap().translate(VirtPageNum(3).addr()).unwrap();
        assert_eq!(t.size, PageSize::Large);
    }

    #[test]
    fn large_mode_bloats_memory() {
        let mut m = mmu(4, PageSize::Large);
        m.touch(AppId(0), VirtPageNum(0)).unwrap(); // 1 page touched, 2MB committed
        assert_eq!(m.touched_bytes(), BASE_PAGE_SIZE);
        assert_eq!(m.footprint_bytes(), LARGE_PAGE_SIZE);
        assert!(m.memory_bloat() > 100.0, "511/512 of the frame is bloat");
    }

    #[test]
    fn unreserved_touch_rejected() {
        let mut m = mmu(4, PageSize::Base);
        assert_eq!(m.touch(AppId(0), VirtPageNum(999_999)), Err(MemError::NotReserved));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut m = mmu(1, PageSize::Large);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        assert_eq!(m.touch(AppId(0), VirtPageNum(512)), Err(MemError::OutOfMemory));
    }

    #[test]
    fn deallocate_releases_frames() {
        let mut m = mmu(2, PageSize::Large);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        let events = m.deallocate(AppId(0), VirtPageNum(0), BASE_PAGES_PER_LARGE_PAGE);
        assert!(matches!(events[0], MgmtEvent::Splintered { .. }));
        // The frame is reusable.
        m.touch(AppId(0), VirtPageNum(512)).unwrap();
        m.touch(AppId(0), VirtPageNum(1024)).unwrap();
    }

    fn pfn_of(m: &GpuMmuManager, asid: AppId, vpn: VirtPageNum) -> PhysFrameNum {
        m.tables().table(asid).unwrap().translate(vpn.addr()).unwrap().frame
    }

    #[test]
    fn evict_frees_lru_frame_and_unmaps_residents() {
        let mut m = mmu(4, PageSize::Base);
        // Fill two frames exactly; the open-frame cursor is then retired.
        for i in 0..2 * BASE_PAGES_PER_LARGE_PAGE {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        // Dirty one page of the first frame, then make the second frame
        // the more recently used one.
        m.note_use(pfn_of(&m, AppId(0), VirtPageNum(0)), true);
        m.note_use(pfn_of(&m, AppId(0), VirtPageNum(512)), false);
        let out = m.evict_for(1);
        assert_eq!(out.evicted.len(), BASE_PAGES_PER_LARGE_PAGE as usize);
        assert_eq!(out.writeback_bytes, BASE_PAGE_SIZE);
        assert_eq!(out.events.len(), 1, "one region, one shootdown");
        assert!(matches!(out.events[0], MgmtEvent::TlbShootdown { .. }));
        // The LRU frame's pages are gone; the recently-used one survives.
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_mapped(VirtPageNum(0)));
        assert!(table.is_mapped(VirtPageNum(512)));
        assert_eq!(m.stats().evictions, BASE_PAGES_PER_LARGE_PAGE);
        assert_eq!(m.stats().writeback_bytes, BASE_PAGE_SIZE);
        // Evicted pages refault back in.
        let again = m.touch(AppId(0), VirtPageNum(0)).unwrap();
        assert_eq!(again.transfer_bytes, BASE_PAGE_SIZE);
        let mut report = mosaic_sim_core::AuditReport::new();
        m.audit(&mut report);
        report.assert_clean("gpu-mmu");
    }

    #[test]
    fn evict_never_touches_the_open_frame() {
        let mut m = mmu(4, PageSize::Base);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        let out = m.evict_for(1);
        assert!(out.is_empty(), "the only candidate is the open frame");
        assert_eq!(m.stats().evictions, 0);
    }

    #[test]
    fn evict_splinters_coalesced_large_pages() {
        let mut m = mmu(2, PageSize::Large);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        let out = m.evict_for(1);
        assert_eq!(out.evicted.len(), BASE_PAGES_PER_LARGE_PAGE as usize);
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_coalesced(VirtPageNum(0).large_page()));
        assert!(!table.is_mapped(VirtPageNum(0)));
        // The region rematerializes on the next touch.
        let again = m.touch(AppId(0), VirtPageNum(0)).unwrap();
        assert_eq!(again.transfer_bytes, LARGE_PAGE_SIZE);
        let mut report = mosaic_sim_core::AuditReport::new();
        m.audit(&mut report);
        report.assert_clean("gpu-mmu");
    }

    #[test]
    fn weighted_touched_bytes_counts_unique_pages() {
        let mut m = mmu(4, PageSize::Base);
        m.touch(AppId(0), VirtPageNum(1)).unwrap();
        m.touch(AppId(0), VirtPageNum(1)).unwrap();
        m.touch(AppId(1), VirtPageNum(1)).unwrap();
        assert_eq!(m.touched_bytes(), 2 * BASE_PAGE_SIZE);
    }
}
