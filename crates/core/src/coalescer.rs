//! The In-Place Coalescer, Section 4.3.
//!
//! Because CoCoA already placed every base page of a fully-allocated
//! large page frame contiguously and aligned, coalescing requires *no
//! data migration, no page-utilization monitoring, and no TLB flush* —
//! the page-size selection policy degenerates to: *coalesce a large page
//! frame as soon as it is fully populated* (and splinter only through
//! CAC). The hardware operation is two page-table updates: atomically set
//! the L3 large-page bit, then set the 512 L4 disabled bits.
//!
//! The policy lives in the runtime (and is therefore replaceable, as the
//! paper notes); this type implements the default fully-populated policy
//! and records the events the simulator charges — which, per Figure 6b,
//! amount to a handful of PTE writes.

use crate::MgmtEvent;
use mosaic_sim_core::Counter;
use mosaic_vm::page_table::CoalesceError;
#[cfg(test)]
use mosaic_vm::AppId;
use mosaic_vm::{LargePageNum, PageTable};

/// The In-Place Coalescer.
///
/// # Examples
///
/// ```
/// use mosaic_core::InPlaceCoalescer;
/// use mosaic_vm::{PageTable, AppId, LargePageNum, LargeFrameNum};
///
/// let mut pt = PageTable::new(AppId(0));
/// let (lpn, lf) = (LargePageNum(3), LargeFrameNum(5));
/// for i in 0..512 {
///     pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
/// }
/// let mut coalescer = InPlaceCoalescer::new();
/// let events = coalescer.try_coalesce(&mut pt, lpn);
/// assert_eq!(events.len(), 1);
/// assert!(pt.is_coalesced(lpn));
/// ```
#[derive(Debug, Default)]
pub struct InPlaceCoalescer {
    attempts: Counter,
    coalesced: Counter,
}

impl InPlaceCoalescer {
    /// Creates the coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the default policy to `lpn`: coalesce if (and only if) the
    /// frame is fully populated with contiguous, aligned base pages of
    /// this one address space. Returns the events to charge (empty when
    /// the conditions do not hold — not an error; the page simply stays
    /// uncoalesced, e.g. until its remaining base pages arrive).
    pub fn try_coalesce(&mut self, table: &mut PageTable, lpn: LargePageNum) -> Vec<MgmtEvent> {
        self.attempts.inc();
        match table.coalesce(lpn) {
            Ok(_lf) => {
                self.coalesced.inc();
                mosaic_telemetry::emit(|| mosaic_telemetry::Event::Coalesce {
                    asid: table.asid().0,
                    lpn: lpn.raw(),
                });
                vec![MgmtEvent::Coalesced { asid: table.asid(), lpn }]
            }
            Err(
                CoalesceError::NotFullyPopulated
                | CoalesceError::NotContiguous
                | CoalesceError::AlreadyCoalesced,
            ) => Vec::new(),
        }
    }

    /// How many frames were examined.
    pub fn attempts(&self) -> u64 {
        self.attempts.get()
    }

    /// How many frames were coalesced.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_vm::LargeFrameNum;

    fn full(pt: &mut PageTable, lpn: LargePageNum, lf: LargeFrameNum) {
        for i in 0..512 {
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
    }

    #[test]
    fn coalesces_fully_populated_contiguous_frame() {
        let mut pt = PageTable::new(AppId(2));
        let lpn = LargePageNum(1);
        full(&mut pt, lpn, LargeFrameNum(4));
        let mut c = InPlaceCoalescer::new();
        let events = c.try_coalesce(&mut pt, lpn);
        assert_eq!(events, vec![MgmtEvent::Coalesced { asid: AppId(2), lpn }]);
        assert_eq!(events[0].asid(), Some(AppId(2)));
        assert_eq!(c.coalesced(), 1);
    }

    #[test]
    fn partial_frame_is_left_alone() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(1);
        pt.map_base(lpn.base_page(0), LargeFrameNum(4).base_frame(0)).unwrap();
        let mut c = InPlaceCoalescer::new();
        assert!(c.try_coalesce(&mut pt, lpn).is_empty());
        assert!(!pt.is_coalesced(lpn));
        assert_eq!(c.attempts(), 1);
        assert_eq!(c.coalesced(), 0);
    }

    #[test]
    fn recoalescing_is_idempotent() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(1);
        full(&mut pt, lpn, LargeFrameNum(4));
        let mut c = InPlaceCoalescer::new();
        assert_eq!(c.try_coalesce(&mut pt, lpn).len(), 1);
        assert!(c.try_coalesce(&mut pt, lpn).is_empty(), "second call is a no-op");
        assert_eq!(c.coalesced(), 1);
    }

    #[test]
    fn non_contiguous_frame_is_rejected() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(1);
        // Fill from two different large frames.
        for i in 0..512 {
            let lf = if i < 256 { LargeFrameNum(4) } else { LargeFrameNum(5) };
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
        let mut c = InPlaceCoalescer::new();
        assert!(c.try_coalesce(&mut pt, lpn).is_empty());
    }
}
