//! The complete Mosaic memory manager (Section 4, Figure 5).
//!
//! Composes the three components:
//!
//! * **CoCoA** allocates physical memory when an application demands data,
//!   conserving contiguity and the soft guarantee;
//! * the **In-Place Coalescer** coalesces each large page frame the moment
//!   its last base page arrives, with page-table-bit updates only;
//! * **CAC** splinters and compacts internally-fragmented coalesced pages
//!   on deallocation and runs the emergency failsafe when memory runs out.
//!
//! Demand paging always transfers 4 KB base pages over the system I/O bus,
//! while the TLB sees 2 MB entries for every coalesced region — the
//! "best of both page sizes" the paper is built around.

use crate::cac::{Cac, CacConfig};
use crate::coalescer::InPlaceCoalescer;
use crate::cocoa::CoCoA;
use crate::frames::{FragmentReport, FramePool};
use crate::{EvictOutcome, ManagerStats, MemError, MemoryManager, MgmtEvent, TouchOutcome};
use mosaic_sim_core::SimRng;
use mosaic_vm::{
    AppId, LargePageNum, PageTableSet, PhysFrameNum, VirtPageNum, BASE_PAGES_PER_LARGE_PAGE,
    BASE_PAGE_SIZE, LARGE_PAGE_SIZE,
};
use std::collections::BTreeSet;

/// Mosaic configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosaicConfig {
    /// GPU physical memory in bytes (Table 1: 3 GB).
    pub memory_bytes: u64,
    /// DRAM channels (Table 1: 6).
    pub channels: usize,
    /// CAC policy.
    pub cac: CacConfig,
}

impl MosaicConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        MosaicConfig {
            memory_bytes: 3 * 1024 * 1024 * 1024,
            channels: 6,
            cac: CacConfig::default(),
        }
    }

    /// Same, but scaled to `bytes` of physical memory (experiments scale
    /// memory together with working sets to keep simulations tractable).
    pub fn with_memory(bytes: u64) -> Self {
        MosaicConfig { memory_bytes: bytes, ..Self::paper() }
    }
}

/// The Mosaic memory manager.
///
/// # Examples
///
/// ```
/// use mosaic_core::{MosaicManager, MosaicConfig, MemoryManager};
/// use mosaic_vm::{AppId, VirtPageNum, PageSize};
///
/// let mut mosaic = MosaicManager::new(MosaicConfig::with_memory(64 * 2 * 1024 * 1024));
/// mosaic.register_app(AppId(0));
/// mosaic.reserve(AppId(0), VirtPageNum(0), 1024); // en masse, 2 aligned 2MB chunks
///
/// // Touch every page of the first 2MB chunk: each is a 4KB transfer...
/// for i in 0..512 {
///     mosaic.touch(AppId(0), VirtPageNum(i)).unwrap();
/// }
/// // ...and the chunk coalesced itself on the last touch, in place.
/// let t = mosaic.tables().table(AppId(0)).unwrap()
///     .translate(VirtPageNum(17).addr()).unwrap();
/// assert_eq!(t.size, PageSize::Large);
/// ```
#[derive(Debug)]
pub struct MosaicManager {
    config: MosaicConfig,
    tables: PageTableSet,
    pool: FramePool,
    cocoa: CoCoA,
    coalescer: InPlaceCoalescer,
    cac: Cac,
    reservations: Vec<(AppId, VirtPageNum, u64)>,
    touched: BTreeSet<(AppId, VirtPageNum)>,
    stats: ManagerStats,
}

impl MosaicManager {
    /// Creates a Mosaic manager.
    pub fn new(config: MosaicConfig) -> Self {
        MosaicManager {
            config,
            tables: PageTableSet::new(),
            pool: FramePool::new(config.memory_bytes, config.channels),
            cocoa: CoCoA::new(),
            coalescer: InPlaceCoalescer::new(),
            cac: Cac::new(config.cac),
            reservations: Vec::new(),
            touched: BTreeSet::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MosaicConfig {
        &self.config
    }

    /// Pre-fragments physical memory for the Section 6.4 stress tests.
    /// Call before any allocation. Callers must check the report's
    /// shortfall: an under-fragmented run silently measures the wrong
    /// experiment.
    pub fn pre_fragment(&mut self, index: f64, occupancy: f64, rng: &mut SimRng) -> FragmentReport {
        self.pool.pre_fragment(index, occupancy, rng)
    }

    /// Access to the frame pool (for experiment instrumentation).
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Access to the CAC engine's counters.
    pub fn cac(&self) -> &Cac {
        &self.cac
    }

    /// Access to the In-Place Coalescer's counters.
    pub fn coalescer(&self) -> &InPlaceCoalescer {
        &self.coalescer
    }

    /// Access to CoCoA's counters.
    pub fn cocoa(&self) -> &CoCoA {
        &self.cocoa
    }

    fn reservation_of(&self, asid: AppId, vpn: VirtPageNum) -> Option<(VirtPageNum, u64)> {
        self.reservations
            .iter()
            .find(|&&(a, start, n)| {
                a == asid && vpn.raw() >= start.raw() && vpn.raw() < start.raw() + n
            })
            .map(|&(_, start, n)| (start, n))
    }

    /// Whether `vpn`'s whole 2 MB large page lies inside one reservation —
    /// the pages CoCoA places positionally in a dedicated large frame.
    fn in_aligned_chunk(&self, asid: AppId, vpn: VirtPageNum) -> bool {
        match self.reservation_of(asid, vpn) {
            Some((start, n)) => {
                let lpn = vpn.large_page();
                let first = lpn.base_page(0).raw();
                let last = first + BASE_PAGES_PER_LARGE_PAGE;
                first >= start.raw() && last <= start.raw() + n
            }
            None => false,
        }
    }

    /// Allocates one base frame, exercising the CAC failsafe on OOM.
    fn alloc_base_with_failsafe(
        &mut self,
        asid: AppId,
        events: &mut Vec<MgmtEvent>,
    ) -> Result<PhysFrameNum, MemError> {
        match self.cocoa.alloc_base(&mut self.pool, asid) {
            Ok(pfn) => Ok(pfn),
            Err(MemError::OutOfMemory) => {
                let (ev, ok) =
                    self.cac.reclaim(&mut self.tables, &mut self.pool, &mut self.cocoa, asid);
                events.extend(ev);
                if ok {
                    self.stats.emergency_allocations += 1;
                    self.cocoa.alloc_base(&mut self.pool, asid)
                } else {
                    Err(MemError::OutOfMemory)
                }
            }
            Err(e) => Err(e),
        }
    }
}

impl MemoryManager for MosaicManager {
    fn name(&self) -> &str {
        "Mosaic"
    }

    fn register_app(&mut self, asid: AppId) {
        self.tables.table_mut(asid);
    }

    fn reserve(&mut self, asid: AppId, start: VirtPageNum, pages: u64) {
        self.reservations.push((asid, start, pages));
    }

    fn touch(&mut self, asid: AppId, vpn: VirtPageNum) -> Result<TouchOutcome, MemError> {
        if self.reservation_of(asid, vpn).is_none() {
            return Err(MemError::NotReserved);
        }
        if self.tables.table_mut(asid).is_mapped(vpn) {
            self.touched.insert((asid, vpn));
            return Ok(TouchOutcome::default());
        }
        let mut events = Vec::new();
        let lpn = vpn.large_page();
        let pfn = if self.in_aligned_chunk(asid, vpn) {
            // Contiguity-conserving path: the page's slot within the
            // chunk's dedicated large frame.
            let lf = match self.cocoa.frame_for_chunk(&mut self.pool, asid, lpn) {
                Ok(lf) => Some(lf),
                Err(MemError::OutOfMemory) => {
                    let (ev, ok) =
                        self.cac.reclaim(&mut self.tables, &mut self.pool, &mut self.cocoa, asid);
                    events.extend(ev);
                    if ok {
                        self.stats.emergency_allocations += 1;
                        self.cocoa.frame_for_chunk(&mut self.pool, asid, lpn).ok()
                    } else {
                        None
                    }
                }
                Err(_) => None,
            };
            match lf {
                Some(lf) => CoCoA::chunk_slot(lf, vpn),
                // Degraded mode: no whole frame available — fall back to
                // the free base page list (this chunk will never coalesce).
                None => self.alloc_base_with_failsafe(asid, &mut events)?,
            }
        } else {
            self.alloc_base_with_failsafe(asid, &mut events)?
        };
        self.tables.table_mut(asid).map_base(vpn, pfn).expect("checked unmapped above");
        self.pool.set_owner(pfn, Some(asid));
        self.pool.set_mapping(pfn, vpn);
        self.touched.insert((asid, vpn));
        self.stats.far_faults += 1;
        self.stats.transferred_bytes += BASE_PAGE_SIZE;

        // In-place coalescing: fires exactly when the frame fills up.
        if self.tables.table_mut(asid).mapped_in_large(lpn) == BASE_PAGES_PER_LARGE_PAGE {
            let ev = self.coalescer.try_coalesce(self.tables.table_mut(asid), lpn);
            self.stats.coalesces +=
                ev.iter().filter(|e| matches!(e, MgmtEvent::Coalesced { .. })).count() as u64;
            events.extend(ev);
        }
        Ok(TouchOutcome { transfer_bytes: BASE_PAGE_SIZE, events })
    }

    fn deallocate(&mut self, asid: AppId, start: VirtPageNum, pages: u64) -> Vec<MgmtEvent> {
        let mut events = Vec::new();
        let mut lpns: Vec<LargePageNum> = Vec::new();
        for i in 0..pages {
            let vpn = VirtPageNum(start.raw() + i);
            let lpn = vpn.large_page();
            if !lpns.contains(&lpn) {
                lpns.push(lpn);
            }
            if let Some(pfn) = self.tables.table_mut(asid).unmap_base(vpn) {
                self.pool.set_owner(pfn, None);
            }
        }
        for lpn in lpns {
            let ev = self.cac.on_dealloc(
                self.tables.table_mut(asid),
                &mut self.pool,
                &mut self.cocoa,
                asid,
                lpn,
            );
            events.extend(ev);
        }
        events
    }

    fn note_use(&mut self, pfn: PhysFrameNum, store: bool) {
        self.pool.note_use(pfn, store);
    }

    /// Evicts least-recently-used large frames wholesale. Besides the
    /// page-table teardown every manager does, Mosaic must also scrub
    /// the allocator: the victim's chunk binding is released, any
    /// emergency parking of its regions is cancelled, and spare slots
    /// that were donated to *any* app's free base page list are pulled
    /// back before the frame returns to the pool.
    fn evict_for(&mut self, bytes: u64) -> EvictOutcome {
        let want = bytes.div_ceil(LARGE_PAGE_SIZE).max(1);
        let mut out = EvictOutcome::default();
        let mut freed = 0u64;
        for lf in self.pool.eviction_candidates() {
            if freed >= want {
                break;
            }
            let residents = self.pool.residents(lf);
            if residents.is_empty() {
                continue;
            }
            let mut regions: Vec<(AppId, LargePageNum)> = Vec::new();
            for &(pfn, asid, vpn) in &residents {
                if self.pool.is_dirty(pfn) {
                    out.writeback_bytes += BASE_PAGE_SIZE;
                }
                let key = (asid, vpn.large_page());
                if !regions.contains(&key) {
                    regions.push(key);
                }
            }
            for &(asid, lpn) in &regions {
                let table = self.tables.table_mut(asid);
                if table.is_coalesced(lpn) {
                    table.splinter(lpn);
                }
                self.cocoa.unpark_emergency(asid, lpn);
                if self.cocoa.chunk_frame(asid, lpn) == Some(lf) {
                    self.cocoa.unbind_chunk(asid, lpn);
                }
            }
            for &(pfn, asid, vpn) in &residents {
                self.tables.table_mut(asid).unmap_base(vpn);
                self.pool.set_owner(pfn, None);
                out.evicted.push((asid, vpn));
            }
            self.cocoa.reclaim_frame(lf);
            self.pool.release_frame(lf);
            freed += 1;
            for (asid, lpn) in regions {
                out.events.push(MgmtEvent::TlbShootdown { asid, lpn });
            }
        }
        self.stats.evictions += out.evicted.len() as u64;
        self.stats.writeback_bytes += out.writeback_bytes;
        out
    }

    fn tables(&self) -> &PageTableSet {
        &self.tables
    }

    fn footprint_bytes(&self) -> u64 {
        self.pool.peak_reserved_bytes()
    }

    fn app_footprint_bytes(&self) -> u64 {
        self.pool.peak_app_reserved_bytes()
    }

    fn touched_bytes(&self) -> u64 {
        self.touched.len() as u64 * BASE_PAGE_SIZE
    }

    fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        // The CAC is the single source of truth for splinters and
        // migrations: its events flow back through both the dealloc path
        // and the touch-path reclaim, so tallying events at one call site
        // undercounts (the reclaim events were dropped from the splinter
        // total) while tallying at both would double-count.
        s.splinters = self.cac.splinters();
        s.migrations = self.cac.migrations();
        s
    }

    /// Sweeps every component's invariants plus the cross-structure
    /// checks that tie them together: allocator/page-table ownership
    /// agreement and frame-count conservation.
    fn audit(&self, report: &mut mosaic_sim_core::AuditReport) {
        use mosaic_sim_core::AuditInvariants;
        self.tables.audit(report);
        self.pool.audit(report);
        self.cocoa.audit(report);
        self.cac.audit(report);
        crate::audit_mapping_ownership("mosaic", &self.tables, &self.pool, report);
        // Every page the tables map must be accounted for by the pool's
        // used counters: mapped pages can never outnumber owned frames.
        let mapped: u64 = self.tables.iter().map(|(_, t)| t.mapped_base_pages()).sum();
        let owned: u64 = self
            .pool
            .tracked()
            .map(|(_, s)| s.allocated().filter(|&(_, a)| a != crate::FRAG_OWNER).count() as u64)
            .sum();
        report.check("mosaic", mapped <= owned, || {
            format!("{mapped} base pages mapped but only {owned} frames owned by apps")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_vm::{PageSize, LARGE_PAGE_SIZE};

    fn mosaic(frames: u64) -> MosaicManager {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(frames * LARGE_PAGE_SIZE));
        m.register_app(AppId(0));
        m.register_app(AppId(1));
        m
    }

    fn touch_chunk(m: &mut MosaicManager, asid: AppId, lpn: LargePageNum) {
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            m.touch(asid, lpn.base_page(i)).unwrap();
        }
    }

    #[test]
    fn en_masse_allocation_coalesces_without_migration() {
        let mut m = mosaic(16);
        m.reserve(AppId(0), VirtPageNum(0), 2048); // 4 aligned chunks
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(table.is_coalesced(LargePageNum(0)));
        assert_eq!(m.stats().coalesces, 1);
        assert_eq!(m.stats().migrations, 0, "in-place: zero migrations");
        // Every transfer was a base page.
        assert_eq!(m.stats().transferred_bytes, LARGE_PAGE_SIZE);
        assert_eq!(m.stats().far_faults, 512);
    }

    #[test]
    fn soft_guarantee_holds_under_interleaved_touches() {
        let mut m = mosaic(16);
        m.reserve(AppId(0), VirtPageNum(0), 1024);
        m.reserve(AppId(1), VirtPageNum(0), 1024);
        // Interleave the two applications' faults (Figure 1b's scenario).
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
            m.touch(AppId(1), VirtPageNum(i)).unwrap();
        }
        // Both coalesced: CoCoA kept them in separate frames.
        assert!(m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
        assert!(m.tables().table(AppId(1)).unwrap().is_coalesced(LargePageNum(0)));
        for (_, state) in m.pool().tracked() {
            assert!(
                state.single_owner(AppId(0)) || state.single_owner(AppId(1)),
                "no frame mixes applications"
            );
        }
    }

    #[test]
    fn translation_is_large_after_coalesce_base_before() {
        let mut m = mosaic(16);
        m.reserve(AppId(0), VirtPageNum(0), 512);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        let t = m.tables().table(AppId(0)).unwrap().translate(VirtPageNum(0).addr()).unwrap();
        assert_eq!(t.size, PageSize::Base);
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        let t = m.tables().table(AppId(0)).unwrap().translate(VirtPageNum(0).addr()).unwrap();
        assert_eq!(t.size, PageSize::Large);
    }

    #[test]
    fn unaligned_reservation_uses_base_path() {
        let mut m = mosaic(16);
        // 100 pages starting mid-chunk: never coalescible.
        m.reserve(AppId(0), VirtPageNum(100), 100);
        for i in 100..200 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        assert_eq!(m.stats().coalesces, 0);
        assert_eq!(m.cocoa().base_assigned(), 100);
        // Pages are still mapped and owned solely by app 0.
        for (_, state) in m.pool().tracked() {
            assert!(state.single_owner(AppId(0)));
        }
    }

    #[test]
    fn dealloc_below_threshold_splinters_and_frees() {
        let mut m = mosaic(16);
        m.reserve(AppId(0), VirtPageNum(0), 1024);
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        // Also give the app spare base pages via the unaligned path. The
        // free base list refills march through frames 1..=6; after five
        // full frames plus a few pages, the spares live in frame 6 —
        // which is in the *same channel* (6 % 6 == 0) as the coalesced
        // chunk's frame 0, so compaction has legal destinations.
        m.reserve(AppId(0), VirtPageNum(1_000_000), 5 * 512 + 16);
        for i in 0..(5 * 512 + 16) {
            m.touch(AppId(0), VirtPageNum(1_000_000 + i)).unwrap();
        }
        let free_before = m.pool().free_frames();
        // Deallocate 508 of 512 pages: occupancy drops below 50%.
        let events = m.deallocate(AppId(0), VirtPageNum(0), 508);
        assert!(events.iter().any(|e| matches!(e, MgmtEvent::Splintered { .. })));
        assert!(!m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
        assert!(m.pool().free_frames() > free_before, "compaction freed the frame");
    }

    #[test]
    fn dealloc_above_threshold_keeps_page_coalesced() {
        let mut m = mosaic(16);
        m.reserve(AppId(0), VirtPageNum(0), 512);
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        let events = m.deallocate(AppId(0), VirtPageNum(0), 4);
        assert!(events.is_empty());
        assert!(m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
    }

    #[test]
    fn failsafe_pulls_from_emergency_list() {
        // 2 frames only. App 0 coalesces one and keeps it nearly full
        // (parked on the emergency list); app 1 then needs base pages once
        // the free list is gone.
        let mut m = mosaic(2);
        m.reserve(AppId(0), VirtPageNum(0), 512);
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        m.deallocate(AppId(0), VirtPageNum(0), 4); // parks on emergency list

        m.reserve(AppId(1), VirtPageNum(0), 600);
        // Frame 2 of 2 goes to app 1's allocations...
        for i in 0..512 {
            m.touch(AppId(1), VirtPageNum(i)).unwrap();
        }
        // ...and the next touch must trigger the emergency failsafe.
        let out = m.touch(AppId(1), VirtPageNum(512));
        assert!(out.is_ok(), "failsafe should supply base pages: {out:?}");
        assert!(m.stats().emergency_allocations > 0);
        assert!(m.cac().soft_guarantee_breaks() > 0);
        assert!(!m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
    }

    #[test]
    fn fragmented_memory_compacts_on_demand() {
        let mut m = mosaic(8);
        let mut rng = SimRng::from_seed(7);
        // All frames fragmented at 25% occupancy: free list is empty.
        m.pre_fragment(1.0, 0.25, &mut rng);
        assert_eq!(m.pool().free_frames(), 0);
        m.reserve(AppId(0), VirtPageNum(0), 512);
        // Touching must succeed by compacting fragmented frames.
        let out = m.touch(AppId(0), VirtPageNum(0));
        assert!(out.is_ok(), "{out:?}");
        assert!(m.cac().frames_reclaimed() > 0);
    }

    #[test]
    fn true_oom_is_reported() {
        let mut m = mosaic(1);
        m.reserve(AppId(0), VirtPageNum(0), 2048);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        // Memory is genuinely full (one frame, fully used, coalesced, and
        // never deallocated): allocation must fail.
        assert_eq!(m.touch(AppId(0), VirtPageNum(512)), Err(MemError::OutOfMemory));
    }

    #[test]
    fn bloat_is_low_for_dense_working_sets() {
        let mut m = mosaic(16);
        m.reserve(AppId(0), VirtPageNum(0), 2048);
        for lpn in 0..4 {
            touch_chunk(&mut m, AppId(0), LargePageNum(lpn));
        }
        assert!(m.memory_bloat().abs() < 1e-9, "fully-touched chunks have no bloat");
    }

    #[test]
    fn evict_scrubs_chunk_bindings_and_emergency_parking() {
        let mut m = mosaic(4);
        m.reserve(AppId(0), VirtPageNum(0), 2048);
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        touch_chunk(&mut m, AppId(0), LargePageNum(1));
        let victim = m.cocoa().chunk_frame(AppId(0), LargePageNum(0)).unwrap();
        let out = m.evict_for(LARGE_PAGE_SIZE);
        assert_eq!(out.evicted.len(), 512);
        assert!(out.events.iter().any(|e| matches!(e, MgmtEvent::TlbShootdown { .. })));
        // The coalesced region is gone, its chunk binding released, and
        // the frame is reusable.
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_coalesced(LargePageNum(0)));
        assert!(!table.is_mapped(VirtPageNum(0)));
        assert!(table.is_coalesced(LargePageNum(1)), "the survivor keeps its large mapping");
        assert_eq!(m.cocoa().chunk_frame(AppId(0), LargePageNum(0)), None);
        assert_eq!(m.stats().evictions, 512);
        let mut report = mosaic_sim_core::AuditReport::new();
        m.audit(&mut report);
        report.assert_clean("mosaic");
        // Refaulting rebuilds the chunk — possibly in the same frame.
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        assert!(m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
        let _ = victim;
    }

    #[test]
    fn oom_touch_succeeds_after_eviction() {
        let mut m = mosaic(1);
        m.reserve(AppId(0), VirtPageNum(0), 2048);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        assert_eq!(m.touch(AppId(0), VirtPageNum(512)), Err(MemError::OutOfMemory));
        let out = m.evict_for(1);
        assert!(!out.is_empty());
        let retry = m.touch(AppId(0), VirtPageNum(512));
        assert!(retry.is_ok(), "{retry:?}");
        let mut report = mosaic_sim_core::AuditReport::new();
        m.audit(&mut report);
        report.assert_clean("mosaic");
    }

    #[test]
    fn evict_writes_back_only_dirty_pages() {
        let mut m = mosaic(2);
        m.reserve(AppId(0), VirtPageNum(0), 1024);
        touch_chunk(&mut m, AppId(0), LargePageNum(0));
        let table = m.tables().table(AppId(0)).unwrap();
        let d0 = table.translate(VirtPageNum(0).addr()).unwrap().frame;
        let d1 = table.translate(VirtPageNum(7).addr()).unwrap().frame;
        m.note_use(d0, true);
        m.note_use(d1, true);
        m.note_use(d1, true); // re-dirtying is idempotent
        let out = m.evict_for(1);
        assert_eq!(out.evicted.len(), 512);
        assert_eq!(out.writeback_bytes, 2 * BASE_PAGE_SIZE);
        assert_eq!(m.stats().writeback_bytes, 2 * BASE_PAGE_SIZE);
    }

    #[test]
    fn retouching_resident_page_is_free() {
        let mut m = mosaic(4);
        m.reserve(AppId(0), VirtPageNum(0), 512);
        m.touch(AppId(0), VirtPageNum(1)).unwrap();
        let out = m.touch(AppId(0), VirtPageNum(1)).unwrap();
        assert_eq!(out.transfer_bytes, 0);
        assert!(out.events.is_empty());
        assert_eq!(m.stats().far_faults, 1);
    }
}
