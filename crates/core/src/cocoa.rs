//! Contiguity-Conserving Allocation (CoCoA), Section 4.2.
//!
//! GPGPU applications allocate memory *en masse*: a kernel launch reserves
//! large contiguous stretches of virtual memory at once. CoCoA exploits
//! this to allocate physical memory so that
//!
//! 1. base pages that are contiguous in virtual memory land contiguous
//!    and aligned inside one large page frame, making them coalescible
//!    with zero data movement, and
//! 2. a large page frame only ever holds base pages of a single address
//!    space — the **soft guarantee** that keeps coalescing from violating
//!    memory protection.
//!
//! CoCoA maintains (a) the *free frame list* of wholly-unallocated large
//! frames and (b) per-application *free base page lists* of spare base
//! frames inside partially-used large frames. Aligned 2 MB chunks of a
//! reservation get a dedicated large frame; stragglers (unaligned edges,
//! sub-2 MB allocations) draw from the app's free base page list, which is
//! refilled one large frame at a time to preserve the soft guarantee.

use crate::frames::FramePool;
use crate::MemError;
use mosaic_sim_core::{AuditInvariants, AuditReport, Counter};
use mosaic_vm::{AppId, LargeFrameNum, LargePageNum, PhysFrameNum, VirtPageNum};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

/// The CoCoA allocator state.
///
/// # Examples
///
/// ```
/// use mosaic_core::{CoCoA, FramePool};
/// use mosaic_vm::{AppId, LargePageNum};
///
/// let mut pool = FramePool::new(16 * 2 * 1024 * 1024, 6);
/// let mut cocoa = CoCoA::new();
/// // An aligned 2 MB chunk of app 1's reservation gets its own frame...
/// let lf = cocoa.frame_for_chunk(&mut pool, AppId(1), LargePageNum(10)).unwrap();
/// // ...and asking again returns the same frame.
/// assert_eq!(cocoa.frame_for_chunk(&mut pool, AppId(1), LargePageNum(10)), Ok(lf));
/// ```
#[derive(Debug, Default)]
pub struct CoCoA {
    /// Large frame assigned to each (app, virtual large page) chunk,
    /// sorted by key. A sorted vector rather than a map: chunk lookups
    /// run on every aligned-chunk page fault, and the access pattern is
    /// strongly repetitive, so `chunk_hint` usually skips the search.
    chunk_frames: Vec<((AppId, LargePageNum), LargeFrameNum)>,
    /// Index into `chunk_frames` of the most recently located entry.
    /// Purely an accelerator: always re-validated against the key before
    /// use, so stale hints (after inserts/removals) are harmless.
    chunk_hint: Cell<usize>,
    /// Per-application free base page lists (Section 4.2), sorted by
    /// application so iteration order matches the old map layout.
    free_base: Vec<(AppId, Vec<PhysFrameNum>)>,
    /// Coalesced-but-fragmented frames parked for the failsafe
    /// (Section 4.4's emergency frame list), with their owner.
    emergency: Vec<(AppId, LargePageNum)>,
    frames_assigned: Counter,
    base_assigned: Counter,
}

impl CoCoA {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Position of `key` in the sorted `chunk_frames` vector, trying the
    /// last-hit hint before falling back to binary search.
    fn chunk_pos(&self, key: (AppId, LargePageNum)) -> Result<usize, usize> {
        let hint = self.chunk_hint.get();
        if let Some(&(k, _)) = self.chunk_frames.get(hint) {
            if k == key {
                return Ok(hint);
            }
        }
        let pos = self.chunk_frames.binary_search_by_key(&key, |&(k, _)| k);
        if let Ok(i) = pos {
            self.chunk_hint.set(i);
        }
        pos
    }

    /// The free base page list of `asid`, created empty on first touch.
    fn base_list_mut(&mut self, asid: AppId) -> &mut Vec<PhysFrameNum> {
        let i = match self.free_base.binary_search_by_key(&asid, |&(a, _)| a) {
            Ok(i) => i,
            Err(i) => {
                self.free_base.insert(i, (asid, Vec::new()));
                i
            }
        };
        &mut self.free_base[i].1
    }

    /// Returns (assigning on first call) the large frame backing the
    /// aligned 2 MB virtual chunk `lpn` of `asid`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the free frame list is empty; the
    /// caller (the manager) may then run the CAC failsafe and retry.
    pub fn frame_for_chunk(
        &mut self,
        pool: &mut FramePool,
        asid: AppId,
        lpn: LargePageNum,
    ) -> Result<LargeFrameNum, MemError> {
        match self.chunk_pos((asid, lpn)) {
            Ok(i) => Ok(self.chunk_frames[i].1),
            Err(i) => {
                let lf = pool.take_free_frame().ok_or(MemError::OutOfMemory)?;
                self.frames_assigned.inc();
                self.chunk_frames.insert(i, ((asid, lpn), lf));
                self.chunk_hint.set(i);
                Ok(lf)
            }
        }
    }

    /// Whether a chunk already has a frame bound.
    pub fn chunk_frame(&self, asid: AppId, lpn: LargePageNum) -> Option<LargeFrameNum> {
        self.chunk_pos((asid, lpn)).ok().map(|i| self.chunk_frames[i].1)
    }

    /// Releases the chunk binding (on full deallocation of the chunk).
    pub fn unbind_chunk(&mut self, asid: AppId, lpn: LargePageNum) -> Option<LargeFrameNum> {
        let i = self.chunk_pos((asid, lpn)).ok()?;
        Some(self.chunk_frames.remove(i).1)
    }

    /// Allocates one base frame for `asid` outside any aligned chunk,
    /// drawing from the app's free base page list and refilling the list
    /// with a fresh large frame when empty — never sharing a frame between
    /// applications (the soft guarantee).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when both the app's free base list and
    /// the free frame list are empty.
    pub fn alloc_base(
        &mut self,
        pool: &mut FramePool,
        asid: AppId,
    ) -> Result<PhysFrameNum, MemError> {
        let i = match self.free_base.binary_search_by_key(&asid, |&(a, _)| a) {
            Ok(i) => i,
            Err(i) => {
                self.free_base.insert(i, (asid, Vec::new()));
                i
            }
        };
        if self.free_base[i].1.is_empty() {
            let lf = pool.take_free_frame().ok_or(MemError::OutOfMemory)?;
            self.frames_assigned.inc();
            // Push in reverse so allocation proceeds from index 0 upward.
            self.free_base[i].1.extend(lf.base_frames().rev());
        }
        // The list was refilled above when empty; an empty pop can only
        // mean a frame with zero base pages, which reads as exhaustion.
        let pfn = self.free_base[i].1.pop().ok_or(MemError::OutOfMemory)?;
        self.base_assigned.inc();
        Ok(pfn)
    }

    /// Adds spare base frames (e.g., the holes of a splintered emergency
    /// frame) to `asid`'s free base page list.
    pub fn donate_base(&mut self, asid: AppId, frames: impl IntoIterator<Item = PhysFrameNum>) {
        let mut added: Vec<_> = frames.into_iter().collect();
        added.reverse();
        self.base_list_mut(asid).extend(added);
    }

    /// Number of free base frames currently parked for `asid`.
    pub fn free_base_len(&self, asid: AppId) -> usize {
        self.free_base
            .binary_search_by_key(&asid, |&(a, _)| a)
            .map_or(0, |i| self.free_base[i].1.len())
    }

    /// Pops one spare base frame from `asid`'s free base page list
    /// *without* refilling from the free frame list (unlike
    /// [`CoCoA::alloc_base`]). Used by CAC to find migration destinations
    /// among frames the app already owns.
    pub fn pop_free_base(&mut self, asid: AppId) -> Option<PhysFrameNum> {
        let i = self.free_base.binary_search_by_key(&asid, |&(a, _)| a).ok()?;
        self.free_base[i].1.pop()
    }

    /// Removes every free base frame of `asid` living in large frame `lf`
    /// (used before releasing a drained frame back to the pool). Returns
    /// how many were removed.
    pub fn reclaim_base(&mut self, asid: AppId, lf: LargeFrameNum) -> usize {
        let list = match self.free_base.binary_search_by_key(&asid, |&(a, _)| a) {
            Ok(i) => &mut self.free_base[i].1,
            Err(_) => return 0,
        };
        let before = list.len();
        list.retain(|pfn| pfn.large_frame() != lf);
        before - list.len()
    }

    /// Removes every free base frame living in `lf` from *all* free base
    /// page lists. The eviction path needs this stronger form of
    /// [`CoCoA::reclaim_base`]: the holes of a splintered emergency frame
    /// may have been donated to a different address space than the one
    /// owning the frame's resident pages. Returns how many were removed.
    pub fn reclaim_frame(&mut self, lf: LargeFrameNum) -> usize {
        let mut removed = 0;
        for (_, list) in &mut self.free_base {
            let before = list.len();
            list.retain(|pfn| pfn.large_frame() != lf);
            removed += before - list.len();
        }
        removed
    }

    /// Parks a coalesced-but-fragmented page on the emergency frame list
    /// (Section 4.4): a failsafe source of base pages when memory runs
    /// out.
    pub fn park_emergency(&mut self, asid: AppId, lpn: LargePageNum) {
        if !self.emergency.contains(&(asid, lpn)) {
            self.emergency.push((asid, lpn));
        }
    }

    /// Pops one emergency entry (the failsafe path), if any.
    pub fn pop_emergency(&mut self) -> Option<(AppId, LargePageNum)> {
        self.emergency.pop()
    }

    /// Removes a specific page from the emergency list (it was splintered
    /// or fully deallocated through the normal path).
    pub fn unpark_emergency(&mut self, asid: AppId, lpn: LargePageNum) {
        self.emergency.retain(|&e| e != (asid, lpn));
    }

    /// Number of pages parked on the emergency list.
    pub fn emergency_len(&self) -> usize {
        self.emergency.len()
    }

    /// Iterates the parked emergency entries in park order (oldest first).
    /// Read-only introspection for the conformance harness's frame ledger.
    pub fn emergency_entries(&self) -> impl Iterator<Item = (AppId, LargePageNum)> + '_ {
        self.emergency.iter().copied()
    }

    /// Large frames handed out (chunks + base list refills).
    pub fn frames_assigned(&self) -> u64 {
        self.frames_assigned.get()
    }

    /// Individual base frames handed out from free base page lists.
    pub fn base_assigned(&self) -> u64 {
        self.base_assigned.get()
    }

    /// Virtual page → physical frame for a page inside an aligned chunk:
    /// the defining CoCoA property, placing the page at the *same index*
    /// within the large frame as it has within its virtual large page.
    pub fn chunk_slot(lf: LargeFrameNum, vpn: VirtPageNum) -> PhysFrameNum {
        lf.base_frame(vpn.index_in_large())
    }
}

impl AuditInvariants for CoCoA {
    fn audit_component(&self) -> &'static str {
        "cocoa"
    }

    /// Large-frame exclusivity at the allocator level: a large frame
    /// backs at most one chunk, a spare base frame sits on at most one
    /// free base page list, and spare frames never live inside a frame
    /// that is bound to a chunk (that frame's slots are reserved for the
    /// chunk's own pages).
    fn audit(&self, report: &mut AuditReport) {
        let c = self.audit_component();
        report.check(c, self.chunk_frames.windows(2).all(|w| w[0].0 < w[1].0), || {
            "the chunk table is not strictly sorted by (app, large page)".to_string()
        });
        report.check(c, self.free_base.windows(2).all(|w| w[0].0 < w[1].0), || {
            "the free base page lists are not strictly sorted by application".to_string()
        });
        let mut chunk_of: BTreeMap<LargeFrameNum, (AppId, LargePageNum)> = BTreeMap::new();
        for &((asid, lpn), lf) in &self.chunk_frames {
            if let Some(&(other_asid, other_lpn)) = chunk_of.get(&lf) {
                report.check(c, false, || {
                    format!("{lf} backs two chunks: {other_asid}/{other_lpn} and {asid}/{lpn}")
                });
            } else {
                chunk_of.insert(lf, (asid, lpn));
            }
        }
        let mut seen_base: BTreeMap<PhysFrameNum, AppId> = BTreeMap::new();
        for &(asid, ref list) in &self.free_base {
            for &pfn in list {
                if let Some(&other) = seen_base.get(&pfn) {
                    report.check(c, false, || {
                        format!("{pfn} sits on two free base page lists ({other} and {asid})")
                    });
                } else {
                    seen_base.insert(pfn, asid);
                }
                report.check(c, !chunk_of.contains_key(&pfn.large_frame()), || {
                    format!(
                        "{pfn} is on {asid}'s free base page list but its large frame is \
                         bound to chunk {:?}",
                        chunk_of.get(&pfn.large_frame())
                    )
                });
            }
        }
        let distinct: BTreeSet<&(AppId, LargePageNum)> = self.emergency.iter().collect();
        report.check(c, distinct.len() == self.emergency.len(), || {
            "the emergency frame list holds a duplicate entry".to_string()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_vm::{BASE_PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE};

    fn pool(frames: u64) -> FramePool {
        FramePool::new(frames * LARGE_PAGE_SIZE, 6)
    }

    #[test]
    fn chunk_frames_are_stable_and_distinct() {
        let mut pool = pool(8);
        let mut c = CoCoA::new();
        let a = c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(1)).unwrap();
        let b = c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(2)).unwrap();
        let a2 = c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(1)).unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.frames_assigned(), 2);
    }

    #[test]
    fn chunk_slot_preserves_index() {
        let lf = LargeFrameNum(5);
        let vpn = LargePageNum(9).base_page(17);
        let pfn = CoCoA::chunk_slot(lf, vpn);
        assert_eq!(pfn.large_frame(), lf);
        assert_eq!(pfn.index_in_large(), 17);
    }

    #[test]
    fn base_allocation_respects_soft_guarantee() {
        let mut pool = pool(4);
        let mut c = CoCoA::new();
        let a = c.alloc_base(&mut pool, AppId(0)).unwrap();
        let b = c.alloc_base(&mut pool, AppId(1)).unwrap();
        // Different applications draw from different large frames.
        assert_ne!(a.large_frame(), b.large_frame());
        // Same app keeps filling its own frame contiguously.
        let a2 = c.alloc_base(&mut pool, AppId(0)).unwrap();
        assert_eq!(a2.large_frame(), a.large_frame());
        assert_eq!(a2.raw(), a.raw() + 1);
    }

    #[test]
    fn base_list_refills_and_exhausts() {
        let mut pool = pool(1);
        let mut c = CoCoA::new();
        for _ in 0..BASE_PAGES_PER_LARGE_PAGE {
            c.alloc_base(&mut pool, AppId(0)).unwrap();
        }
        assert_eq!(c.free_base_len(AppId(0)), 0);
        assert_eq!(c.alloc_base(&mut pool, AppId(0)), Err(MemError::OutOfMemory));
    }

    #[test]
    fn out_of_frames_for_chunk() {
        let mut pool = pool(1);
        let mut c = CoCoA::new();
        c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(0)).unwrap();
        assert_eq!(
            c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(1)),
            Err(MemError::OutOfMemory)
        );
    }

    #[test]
    fn donate_and_reclaim_base() {
        let mut pool = pool(2);
        let mut c = CoCoA::new();
        let lf = pool.take_free_frame().unwrap();
        c.donate_base(AppId(0), vec![lf.base_frame(1), lf.base_frame(2)]);
        assert_eq!(c.free_base_len(AppId(0)), 2);
        let first = c.alloc_base(&mut pool, AppId(0)).unwrap();
        assert_eq!(first, lf.base_frame(1), "donated frames are used first, in order");
        assert_eq!(c.reclaim_base(AppId(0), lf), 1);
        assert_eq!(c.free_base_len(AppId(0)), 0);
    }

    #[test]
    fn emergency_list_round_trip() {
        let mut c = CoCoA::new();
        c.park_emergency(AppId(0), LargePageNum(3));
        c.park_emergency(AppId(0), LargePageNum(3)); // duplicate ignored
        c.park_emergency(AppId(1), LargePageNum(4));
        assert_eq!(c.emergency_len(), 2);
        c.unpark_emergency(AppId(0), LargePageNum(3));
        assert_eq!(c.pop_emergency(), Some((AppId(1), LargePageNum(4))));
        assert_eq!(c.pop_emergency(), None);
    }

    #[test]
    fn chunk_hint_survives_interleaved_lookups_and_unbinds() {
        let mut pool = pool(16);
        let mut c = CoCoA::new();
        let mut frames = Vec::new();
        for lpn in 0..8 {
            frames.push(
                c.frame_for_chunk(&mut pool, AppId(lpn as u16 % 2), LargePageNum(lpn)).unwrap(),
            );
        }
        // Repeated same-key lookups (hint hits) interleaved with other keys
        // and removals (hint goes stale) must all stay correct.
        for _ in 0..3 {
            assert_eq!(c.chunk_frame(AppId(1), LargePageNum(5)), Some(frames[5]));
            assert_eq!(c.chunk_frame(AppId(0), LargePageNum(2)), Some(frames[2]));
        }
        assert_eq!(c.unbind_chunk(AppId(0), LargePageNum(2)), Some(frames[2]));
        assert_eq!(c.chunk_frame(AppId(0), LargePageNum(2)), None);
        assert_eq!(c.chunk_frame(AppId(1), LargePageNum(5)), Some(frames[5]));
        let again = c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(2)).unwrap();
        assert_eq!(c.chunk_frame(AppId(0), LargePageNum(2)), Some(again));
    }

    #[test]
    fn unbind_chunk_forgets_mapping() {
        let mut pool = pool(2);
        let mut c = CoCoA::new();
        let lf = c.frame_for_chunk(&mut pool, AppId(0), LargePageNum(7)).unwrap();
        assert_eq!(c.unbind_chunk(AppId(0), LargePageNum(7)), Some(lf));
        assert_eq!(c.chunk_frame(AppId(0), LargePageNum(7)), None);
    }
}
