//! # Mosaic: application-transparent multi-page-size GPU memory management
//!
//! This crate is the Rust reproduction of the mechanisms contributed by
//! *"Mosaic: A GPU Memory Manager with Application-Transparent Support for
//! Multiple Page Sizes"* (MICRO-50, 2017), together with the baseline it is
//! evaluated against:
//!
//! * [`cocoa`] — **C**ontiguity-**Co**nserving **A**llocation: the memory
//!   allocator that keeps virtually-contiguous base pages physically
//!   contiguous inside one large page frame and *soft-guarantees* that a
//!   large frame holds pages of only one address space (Section 4.2).
//! * [`coalescer`] — the **In-Place Coalescer**: coalesces a large page
//!   frame the moment it becomes fully populated, by flipping page-table
//!   bits only — no data migration, no TLB flush, no SM stalls
//!   (Section 4.3).
//! * [`cac`] — **C**ontiguity-**A**ware **C**ompaction: splinters
//!   internally-fragmented coalesced pages and compacts their survivors
//!   into fewer frames, optionally using in-DRAM bulk copy (Section 4.4).
//! * [`gpu_mmu`] — the **GPU-MMU** baseline after Power et al. (modified
//!   per Section 3.1 to use a shared L2 TLB), in both 4 KB-only and
//!   2 MB-only configurations.
//! * [`migrating`] — a CPU-style utilization-based coalescer
//!   (Ingens/Navarro-like, Section 7.1) that must migrate and flush to
//!   promote: the design whose costs Figure 6a depicts.
//! * [`MosaicManager`] — the composition of the three Mosaic components
//!   behind the common [`MemoryManager`] interface consumed by the
//!   full-system simulator.
//!
//! The manager interface is *runtime-level*: the GPU simulator calls
//! [`MemoryManager::reserve`] when an application performs its en-masse
//! `cudaMalloc`-style allocation, [`MemoryManager::touch`] on each first
//! access to a page (the demand-paging path), and
//! [`MemoryManager::deallocate`] when kernels finish. Each call returns
//! the hardware side effects — bytes to move over the system I/O bus, TLB
//! shootdowns, page migrations, SM stalls — as data, which the simulator
//! then charges to the timing model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cac;
pub mod coalescer;
pub mod cocoa;
pub mod frames;
pub mod gpu_mmu;
pub mod migrating;
pub mod mosaic_mgr;
pub mod placement;

pub use cac::{Cac, CacConfig};
pub use coalescer::InPlaceCoalescer;
pub use cocoa::CoCoA;
pub use frames::{FragmentReport, FramePool, FrameState, FRAG_OWNER};
pub use gpu_mmu::GpuMmuManager;
pub use migrating::{MigratingConfig, MigratingManager};
pub use mosaic_mgr::{MosaicConfig, MosaicManager};
pub use placement::{PlacementMap, PlacementOutcome, PlacementPolicy, PlacementStats, MAX_GPUS};

use mosaic_sim_core::AuditReport;
use mosaic_vm::{AppId, LargePageNum, PageTableSet, PhysFrameNum, VirtPageNum};

/// Cross-structure audit shared by every manager: each page-table
/// mapping's physical frame must be owned *by that mapping's address
/// space* in the frame pool. This ties the allocator's bookkeeping to the
/// translation structures — a frame freed while still mapped (use after
/// free) or mapped while owned by someone else shows up here even when
/// both structures are internally consistent.
pub(crate) fn audit_mapping_ownership(
    component: &'static str,
    tables: &PageTableSet,
    pool: &FramePool,
    report: &mut AuditReport,
) {
    for (asid, table) in tables.iter() {
        for lpn in table.mapped_regions() {
            for (vpn, pfn, _) in table.region_mappings(lpn) {
                let owner = pool.owner(pfn);
                report.check(component, owner == Some(asid), || match owner {
                    Some(other) => {
                        format!("{asid}/{vpn} maps {pfn}, but the pool says {other} owns it")
                    }
                    None => format!("{asid}/{vpn} maps {pfn}, but the pool says it is unowned"),
                });
                let back = pool.mapping(pfn);
                report.check(component, back == Some(vpn), || match back {
                    Some(other) => {
                        format!("{asid}/{vpn} maps {pfn}, but the pool's reverse map says {other}")
                    }
                    None => {
                        format!("{asid}/{vpn} maps {pfn}, but the pool's reverse map has no entry")
                    }
                });
            }
        }
    }
}

/// A hardware side effect of a memory-management operation, to be charged
/// to the timing model by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgmtEvent {
    /// Base pages were coalesced into a large page. In-place coalescing
    /// costs only the PTE updates; no TLB flush is needed (Figure 6b).
    Coalesced {
        /// Address space whose page was coalesced.
        asid: AppId,
        /// The coalesced large page.
        lpn: LargePageNum,
    },
    /// A coalesced page was splintered; the simulator must flush the
    /// corresponding TLB large-page entry on every SM (Section 4.4).
    Splintered {
        /// Address space whose page was splintered.
        asid: AppId,
        /// The splintered large page.
        lpn: LargePageNum,
    },
    /// One base page was migrated between large frames in `channel`.
    /// The simulator charges a narrow or bulk in-DRAM copy on that
    /// channel; if `blocking`, whoever triggered the migration (a
    /// compaction freeing the frame it needs) waits for the copy,
    /// whereas background promotion copies (copy-then-switch) do not
    /// gate execution.
    PageMigrated {
        /// DRAM channel the copy occupies.
        channel: usize,
        /// Whether the copy may use the in-DRAM bulk path (CAC-BC).
        bulk: bool,
        /// Whether the triggering operation must wait for the copy.
        blocking: bool,
    },
    /// Full TLB shootdown, stalling all SMs — the baseline coalescing
    /// path's cost (Figure 6a). Mosaic never emits this.
    TlbFlushAll,
    /// Targeted shootdown of one 2 MB region's translations on every SM
    /// (IPI-style), stalling the GPU briefly. Emitted by the migrating
    /// coalescer on promotion; Mosaic never needs it.
    TlbShootdown {
        /// Address space whose region is invalidated.
        asid: AppId,
        /// The region whose base translations became stale.
        lpn: LargePageNum,
    },
    /// All SMs stall for the given number of cycles (the paper's
    /// conservative worst-case model for compaction, Section 5).
    SmStallAll {
        /// Stall duration in core cycles.
        cycles: u64,
    },
}

impl MgmtEvent {
    /// The address space a coalesce/splinter event concerns, if any.
    pub fn asid(&self) -> Option<AppId> {
        match self {
            MgmtEvent::Coalesced { asid, .. } | MgmtEvent::Splintered { asid, .. } => Some(*asid),
            _ => None,
        }
    }

    /// The large page a coalesce/splinter event concerns, if any.
    pub fn large_page(&self) -> Option<LargePageNum> {
        match self {
            MgmtEvent::Coalesced { lpn, .. } | MgmtEvent::Splintered { lpn, .. } => Some(*lpn),
            _ => None,
        }
    }
}

/// Result of a [`MemoryManager::touch`] call: what must happen before the
/// faulting access can proceed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Bytes to transfer over the system I/O bus (0 if the page was
    /// already resident: no far-fault).
    pub transfer_bytes: u64,
    /// Side effects to charge.
    pub events: Vec<MgmtEvent>,
}

/// Result of a [`MemoryManager::evict_for`] call: which pages left GPU
/// memory and what the hardware must do about it. Like [`TouchOutcome`],
/// this is pure data — the simulator charges the write-back transfer to
/// the I/O bus and the shootdowns to the TLBs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvictOutcome {
    /// Pages evicted, in eviction order. They are no longer mapped; a
    /// future access far-faults them back in.
    pub evicted: Vec<(AppId, VirtPageNum)>,
    /// Bytes of dirty data that must be written back over the I/O bus
    /// before the freed frames are reused.
    pub writeback_bytes: u64,
    /// Side effects to charge (TLB shootdowns for the evicted regions).
    pub events: Vec<MgmtEvent>,
}

impl EvictOutcome {
    /// Whether the call freed nothing (no evictable frames).
    pub fn is_empty(&self) -> bool {
        self.evicted.is_empty()
    }
}

/// Memory-management failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Physical memory is exhausted (even after any failsafe compaction).
    OutOfMemory,
    /// The touched page was never reserved by the application.
    NotReserved,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of GPU physical memory"),
            MemError::NotReserved => write!(f, "page accessed outside any reservation"),
        }
    }
}

impl std::error::Error for MemError {}

/// Aggregate counters every manager reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Far-faults serviced (pages transferred over the I/O bus).
    pub far_faults: u64,
    /// Bytes moved over the I/O bus.
    pub transferred_bytes: u64,
    /// Large pages coalesced.
    pub coalesces: u64,
    /// Large pages splintered.
    pub splinters: u64,
    /// Base pages migrated during compaction.
    pub migrations: u64,
    /// Times the emergency-frame-list failsafe was exercised.
    pub emergency_allocations: u64,
    /// Base pages evicted under memory pressure.
    pub evictions: u64,
    /// Bytes of dirty evicted data written back over the I/O bus.
    pub writeback_bytes: u64,
}

/// The runtime interface between the GPU and a memory manager.
///
/// Implemented by [`MosaicManager`] and [`GpuMmuManager`]; the full-system
/// simulator drives whichever it is configured with and charges the
/// returned [`MgmtEvent`]s to its timing model.
pub trait MemoryManager: std::fmt::Debug {
    /// Short human-readable name ("Mosaic", "GPU-MMU", ...).
    fn name(&self) -> &str;

    /// Registers a new address space (application launch).
    fn register_app(&mut self, asid: AppId);

    /// Records an en-masse virtual allocation of `pages` base pages
    /// starting at `start` (the `cudaMalloc` bulk allocation of
    /// Section 4.2). No physical memory is committed yet.
    fn reserve(&mut self, asid: AppId, start: VirtPageNum, pages: u64);

    /// Demand-paging path: ensures the page holding `vpn` is resident,
    /// allocating physical memory and scheduling an I/O-bus transfer on
    /// first touch.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] if physical memory is exhausted,
    /// [`MemError::NotReserved`] if the page was never reserved.
    fn touch(&mut self, asid: AppId, vpn: VirtPageNum) -> Result<TouchOutcome, MemError>;

    /// Deallocates `pages` base pages starting at `start` (kernel
    /// completion), triggering splinter/compaction policies.
    fn deallocate(&mut self, asid: AppId, start: VirtPageNum, pages: u64) -> Vec<MgmtEvent>;

    /// Marks a resident base frame as recently used — and dirty, when
    /// the access is a store. This is the eviction policy's recency and
    /// write-back signal; O(1), called on the warp-access hot path.
    /// Default: no-op for managers without demand-eviction support.
    fn note_use(&mut self, _pfn: PhysFrameNum, _store: bool) {}

    /// Evicts resident pages to free at least `bytes` of physical
    /// memory (rounded up to whole large frames), least-recently-used
    /// first. Dirty pages contribute to
    /// [`EvictOutcome::writeback_bytes`]; the simulator charges their
    /// write-back over the I/O bus before reusing the freed frames.
    /// Returns an empty outcome when nothing is evictable.
    fn evict_for(&mut self, _bytes: u64) -> EvictOutcome {
        EvictOutcome::default()
    }

    /// The page tables, for translation and walk-path computation.
    fn tables(&self) -> &PageTableSet;

    /// Physical bytes reserved (tracked large frames × 2 MB) — the
    /// footprint used for memory-bloat measurements.
    fn footprint_bytes(&self) -> u64;

    /// Physical bytes reserved by frames holding real application data
    /// (excludes frames used only by injected pre-fragmentation data).
    /// Defaults to [`MemoryManager::footprint_bytes`].
    fn app_footprint_bytes(&self) -> u64 {
        self.footprint_bytes()
    }

    /// Bytes actually requested by applications (touched base pages × 4 KB).
    fn touched_bytes(&self) -> u64;

    /// Aggregate statistics.
    fn stats(&self) -> ManagerStats;

    /// Memory bloat relative to what the touched working set strictly
    /// needs: `footprint / touched − 1`, as used by Section 3.2 and
    /// Table 2. Zero when nothing has been touched.
    fn memory_bloat(&self) -> f64 {
        let touched = self.touched_bytes();
        if touched == 0 {
            0.0
        } else {
            self.footprint_bytes() as f64 / touched as f64 - 1.0
        }
    }

    /// Sweeps the manager's invariants (frame conservation, large-frame
    /// exclusivity, allocator/page-table agreement) into `report`.
    ///
    /// Must be side-effect free: audited and unaudited runs of the same
    /// seed produce bit-identical results. The full-system runner calls
    /// this every N cycles (always in debug builds, on demand via
    /// `--audit` in release).
    fn audit(&self, report: &mut mosaic_sim_core::AuditReport);
}
