//! A CPU-style *migrating* coalescer: the state-of-the-art the paper
//! argues against (Sections 3.3 and 7.1).
//!
//! CPU large-page managers (Navarro et al.'s reservation-based promotion,
//! Ingens' utilization-based promotion) monitor base-page utilization and
//! *promote* a 2 MB region once enough of it is populated. Because their
//! allocators conserve no contiguity, promotion must **migrate** every
//! mapped base page into a freshly-allocated large frame, zero-fill the
//! rest, update the PTEs, and shoot down the TLBs — the full Figure 6a
//! timeline. This manager implements that design faithfully on the GPU
//! substrate so the reproduction can measure exactly what Mosaic's
//! in-place design saves:
//!
//! * allocation is GPU-MMU-style (fault-order interleaved frames — no
//!   contiguity, no soft guarantee);
//! * when a 2 MB region's utilization reaches `promote_threshold`, the
//!   manager allocates a whole large frame, emits one
//!   [`MgmtEvent::PageMigrated`] per mapped page, maps the region's
//!   remaining pages to the frame's spare slots (zero-filled — the
//!   memory-bloat source CPU promotion is known for), coalesces, and
//!   emits [`MgmtEvent::TlbShootdown`] (stale translations point at the
//!   pre-migration frames, so correctness demands an IPI-style
//!   shootdown of the region on every SM).

use crate::frames::FramePool;
use crate::{EvictOutcome, ManagerStats, MemError, MemoryManager, MgmtEvent, TouchOutcome};
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageTableSet, PhysFrameNum, VirtPageNum,
    BASE_PAGES_PER_LARGE_PAGE, BASE_PAGE_SIZE,
};
use std::collections::BTreeSet;

/// Policy knobs for the migrating coalescer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigratingConfig {
    /// Promote a region once this fraction of its base pages is mapped
    /// (Ingens uses utilization thresholds of this order).
    pub promote_threshold: f64,
    /// Whether promotion is enabled at all (`false` degenerates to the
    /// GPU-MMU baseline allocator).
    pub promote: bool,
}

impl Default for MigratingConfig {
    fn default() -> Self {
        MigratingConfig { promote_threshold: 0.70, promote: true }
    }
}

/// The migrating (CPU-style) coalescing manager.
///
/// # Examples
///
/// ```
/// use mosaic_core::{MigratingManager, MigratingConfig, MemoryManager, MgmtEvent};
/// use mosaic_vm::{AppId, VirtPageNum};
///
/// let mut m = MigratingManager::new(64 * 2 * 1024 * 1024, 6, MigratingConfig::default());
/// m.register_app(AppId(0));
/// m.reserve(AppId(0), VirtPageNum(0), 512);
/// let mut migrations = 0;
/// for i in 0..512 {
///     let out = m.touch(AppId(0), VirtPageNum(i)).unwrap();
///     migrations += out.events.iter().filter(|e| matches!(e, MgmtEvent::PageMigrated { .. })).count();
/// }
/// assert!(migrations > 300, "promotion migrated the already-mapped pages");
/// ```
#[derive(Debug)]
pub struct MigratingManager {
    config: MigratingConfig,
    tables: PageTableSet,
    pool: FramePool,
    /// Fault-order bump allocation, as in the GPU-MMU baseline.
    open: Option<(LargeFrameNum, u64)>,
    reservations: Vec<(AppId, VirtPageNum, u64)>,
    touched: BTreeSet<(AppId, VirtPageNum)>,
    /// Regions already promoted (never re-promoted).
    promoted: BTreeSet<(AppId, LargePageNum)>,
    stats: ManagerStats,
}

impl MigratingManager {
    /// Creates the manager over `memory_bytes` striped across `channels`.
    pub fn new(memory_bytes: u64, channels: usize, config: MigratingConfig) -> Self {
        MigratingManager {
            config,
            tables: PageTableSet::new(),
            pool: FramePool::new(memory_bytes, channels),
            open: None,
            reservations: Vec::new(),
            touched: BTreeSet::new(),
            promoted: BTreeSet::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &MigratingConfig {
        &self.config
    }

    fn is_reserved(&self, asid: AppId, vpn: VirtPageNum) -> bool {
        self.reservations.iter().any(|&(a, start, n)| {
            a == asid && vpn.raw() >= start.raw() && vpn.raw() < start.raw() + n
        })
    }

    /// Whether `lpn` lies fully inside one reservation (promotion must not
    /// map pages the application never reserved).
    fn region_reserved(&self, asid: AppId, lpn: LargePageNum) -> bool {
        let first = lpn.base_page(0);
        let last = VirtPageNum(first.raw() + BASE_PAGES_PER_LARGE_PAGE - 1);
        self.is_reserved(asid, first) && self.is_reserved(asid, last)
    }

    fn alloc_base_interleaved(&mut self, asid: AppId) -> Result<PhysFrameNum, MemError> {
        let (lf, idx) = match self.open.take() {
            Some((lf, idx)) if idx < BASE_PAGES_PER_LARGE_PAGE => (lf, idx),
            _ => (self.pool.take_free_frame().ok_or(MemError::OutOfMemory)?, 0),
        };
        let pfn = lf.base_frame(idx);
        self.pool.set_owner(pfn, Some(asid));
        if idx + 1 < BASE_PAGES_PER_LARGE_PAGE {
            self.open = Some((lf, idx + 1));
        }
        Ok(pfn)
    }

    /// The Figure 6a promotion: migrate the mapped pages, *transfer* the
    /// unmapped ones (on a discrete GPU their data still lives in CPU
    /// memory — promotion must fully populate the region with real
    /// contents), update PTEs, shoot down the TLBs. Returns the events
    /// plus the extra bytes to move over the I/O bus.
    fn promote(
        &mut self,
        asid: AppId,
        lpn: LargePageNum,
    ) -> Result<(Vec<MgmtEvent>, u64), MemError> {
        let dest = self.pool.take_free_frame().ok_or(MemError::OutOfMemory)?;
        let mut events = Vec::new();
        let moved: Vec<(VirtPageNum, PhysFrameNum)> = self
            .tables
            .table_mut(asid)
            .region_mappings(lpn)
            .map(|(vpn, pfn, _)| (vpn, pfn))
            .collect();
        for (vpn, old) in &moved {
            let slot = dest.base_frame(vpn.index_in_large());
            self.tables.table_mut(asid).remap_base(*vpn, slot).expect("mapped");
            // The pending write-back obligation moves with the data.
            let dirty = self.pool.is_dirty(*old);
            self.pool.set_owner(*old, None);
            self.pool.set_owner(slot, Some(asid));
            self.pool.set_mapping(slot, *vpn);
            if dirty {
                self.pool.mark_dirty(slot);
            }
            self.stats.migrations += 1;
            events.push(MgmtEvent::PageMigrated {
                channel: self.pool.channel_of(dest),
                bulk: false,
                // Promotion is copy-then-switch: the old mappings stay
                // valid while the copy engine works in the background.
                blocking: false,
            });
        }
        // Populate the holes: their data never left CPU memory, so the
        // promotion transfers it now (this prefetch of never-requested
        // data is the demand-paging waste — and the memory bloat — that
        // large-page promotion is known for).
        let holes: Vec<VirtPageNum> =
            lpn.base_pages().filter(|vpn| !self.tables.table_mut(asid).is_mapped(*vpn)).collect();
        let extra_bytes = holes.len() as u64 * BASE_PAGE_SIZE;
        for vpn in holes {
            let slot = dest.base_frame(vpn.index_in_large());
            self.tables.table_mut(asid).map_base(vpn, slot).expect("hole");
            self.pool.set_owner(slot, Some(asid));
            self.pool.set_mapping(slot, vpn);
        }
        self.stats.transferred_bytes += extra_bytes;
        self.tables.table_mut(asid).coalesce(lpn).expect("contiguous after migration");
        self.stats.coalesces += 1;
        self.promoted.insert((asid, lpn));
        // Correctness: the pre-migration base translations are stale on
        // every SM — a targeted (IPI-style) shootdown of the region.
        events.push(MgmtEvent::TlbShootdown { asid, lpn });
        Ok((events, extra_bytes))
    }
}

impl MemoryManager for MigratingManager {
    fn name(&self) -> &str {
        "Migrating-Coalescer"
    }

    fn register_app(&mut self, asid: AppId) {
        self.tables.table_mut(asid);
    }

    fn reserve(&mut self, asid: AppId, start: VirtPageNum, pages: u64) {
        self.reservations.push((asid, start, pages));
    }

    fn touch(&mut self, asid: AppId, vpn: VirtPageNum) -> Result<TouchOutcome, MemError> {
        if !self.is_reserved(asid, vpn) {
            return Err(MemError::NotReserved);
        }
        if self.tables.table_mut(asid).is_mapped(vpn) {
            self.touched.insert((asid, vpn));
            return Ok(TouchOutcome::default());
        }
        let lpn = vpn.large_page();
        if let Some(lf) = self.tables.table_mut(asid).large_frame_of(lpn) {
            // A hole drilled by a partial deallocation inside a promoted
            // (still-coalesced) region. The page must return to its slot
            // in the region's large frame; handing it an arbitrary
            // interleaved frame would break the region's contiguity.
            let slot = lf.base_frame(vpn.index_in_large());
            self.tables.table_mut(asid).map_base(vpn, slot).expect("checked unmapped");
            self.pool.set_owner(slot, Some(asid));
            self.pool.set_mapping(slot, vpn);
            self.touched.insert((asid, vpn));
            self.stats.far_faults += 1;
            self.stats.transferred_bytes += BASE_PAGE_SIZE;
            return Ok(TouchOutcome { transfer_bytes: BASE_PAGE_SIZE, events: Vec::new() });
        }
        let pfn = self.alloc_base_interleaved(asid)?;
        self.tables.table_mut(asid).map_base(vpn, pfn).expect("checked unmapped");
        self.pool.set_mapping(pfn, vpn);
        // Count the touch only now: a touch that failed to allocate must
        // not inflate touched_bytes (it never became resident).
        self.touched.insert((asid, vpn));
        self.stats.far_faults += 1;
        self.stats.transferred_bytes += BASE_PAGE_SIZE;
        let mut events = Vec::new();
        let mut transfer_bytes = BASE_PAGE_SIZE;
        if self.config.promote
            && !self.promoted.contains(&(asid, lpn))
            && self.region_reserved(asid, lpn)
        {
            let mapped = self.tables.table_mut(asid).mapped_in_large(lpn) as f64;
            if mapped / BASE_PAGES_PER_LARGE_PAGE as f64 >= self.config.promote_threshold {
                match self.promote(asid, lpn) {
                    Ok((ev, extra)) => {
                        events = ev;
                        transfer_bytes += extra;
                    }
                    // Out of whole frames: keep running unpromoted.
                    Err(MemError::OutOfMemory) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(TouchOutcome { transfer_bytes, events })
    }

    fn deallocate(&mut self, asid: AppId, start: VirtPageNum, pages: u64) -> Vec<MgmtEvent> {
        let mut events = Vec::new();
        let mut lpns = BTreeSet::new();
        for i in 0..pages {
            let vpn = VirtPageNum(start.raw() + i);
            lpns.insert(vpn.large_page());
            if let Some(pfn) = self.tables.table_mut(asid).unmap_base(vpn) {
                self.pool.set_owner(pfn, None);
            }
        }
        for lpn in lpns {
            let table = self.tables.table_mut(asid);
            if table.mapped_in_large(lpn) == 0 && table.splinter(lpn) {
                self.stats.splinters += 1;
                self.promoted.remove(&(asid, lpn));
                events.push(MgmtEvent::Splintered { asid, lpn });
            }
        }
        let empty: Vec<_> =
            self.pool.tracked().filter(|(_, s)| s.is_empty()).map(|(lf, _)| lf).collect();
        for lf in empty {
            if self.open.is_none_or(|(open, _)| open != lf) {
                self.pool.release_frame(lf);
            }
        }
        events
    }

    fn note_use(&mut self, pfn: PhysFrameNum, store: bool) {
        self.pool.note_use(pfn, store);
    }

    /// Evicts least-recently-used large frames wholesale. Promoted
    /// regions living in a victim are splintered and forgotten (a later
    /// refault re-earns promotion); the shared open frame is never a
    /// victim.
    fn evict_for(&mut self, bytes: u64) -> EvictOutcome {
        let want = bytes.div_ceil(mosaic_vm::LARGE_PAGE_SIZE).max(1);
        let mut out = EvictOutcome::default();
        let mut freed = 0u64;
        for lf in self.pool.eviction_candidates() {
            if freed >= want {
                break;
            }
            if self.open.is_some_and(|(open, _)| open == lf) {
                continue;
            }
            let residents = self.pool.residents(lf);
            if residents.is_empty() {
                continue;
            }
            let mut regions: Vec<(AppId, LargePageNum)> = Vec::new();
            for &(pfn, asid, vpn) in &residents {
                if self.pool.is_dirty(pfn) {
                    out.writeback_bytes += BASE_PAGE_SIZE;
                }
                let key = (asid, vpn.large_page());
                if !regions.contains(&key) {
                    regions.push(key);
                }
            }
            for &(asid, lpn) in &regions {
                let table = self.tables.table_mut(asid);
                if table.is_coalesced(lpn) {
                    table.splinter(lpn);
                    self.promoted.remove(&(asid, lpn));
                }
            }
            for &(pfn, asid, vpn) in &residents {
                self.tables.table_mut(asid).unmap_base(vpn);
                self.pool.set_owner(pfn, None);
                out.evicted.push((asid, vpn));
            }
            self.pool.release_frame(lf);
            freed += 1;
            for (asid, lpn) in regions {
                out.events.push(MgmtEvent::TlbShootdown { asid, lpn });
            }
        }
        self.stats.evictions += out.evicted.len() as u64;
        self.stats.writeback_bytes += out.writeback_bytes;
        out
    }

    fn tables(&self) -> &PageTableSet {
        &self.tables
    }

    fn footprint_bytes(&self) -> u64 {
        self.pool.peak_reserved_bytes()
    }

    fn app_footprint_bytes(&self) -> u64 {
        self.pool.peak_app_reserved_bytes()
    }

    fn touched_bytes(&self) -> u64 {
        self.touched.len() as u64 * BASE_PAGE_SIZE
    }

    fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Audits the page tables and frame pool, their ownership agreement,
    /// and the promotion bookkeeping: every region recorded as promoted
    /// must still exist and belong to a registered address space, and
    /// every coalesced region must have come from a promotion.
    fn audit(&self, report: &mut mosaic_sim_core::AuditReport) {
        use mosaic_sim_core::AuditInvariants;
        self.tables.audit(report);
        self.pool.audit(report);
        crate::audit_mapping_ownership("migrating", &self.tables, &self.pool, report);
        for &(asid, lpn) in &self.promoted {
            report.check("migrating", self.tables.table(asid).is_some(), || {
                format!("{lpn} recorded as promoted for unregistered {asid}")
            });
        }
        for (asid, table) in self.tables.iter() {
            for lpn in table.mapped_regions() {
                report.check(
                    "migrating",
                    !table.is_coalesced(lpn) || self.promoted.contains(&(asid, lpn)),
                    || format!("{asid}/{lpn} is coalesced but was never promoted"),
                );
            }
        }
        if let Some((lf, next)) = self.open {
            report.check("migrating", next < BASE_PAGES_PER_LARGE_PAGE, || {
                format!("open frame {lf} has out-of-range bump index {next}")
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_vm::{PageSize, LARGE_PAGE_SIZE};

    fn mgr(frames: u64) -> MigratingManager {
        let mut m = MigratingManager::new(frames * LARGE_PAGE_SIZE, 6, MigratingConfig::default());
        m.register_app(AppId(0));
        m.register_app(AppId(1));
        m.reserve(AppId(0), VirtPageNum(0), 4096);
        m.reserve(AppId(1), VirtPageNum(0), 4096);
        m
    }

    #[test]
    fn promotion_fires_at_threshold_with_migrations_and_flush() {
        let mut m = mgr(16);
        let needed = (512.0f64 * 0.70).ceil() as u64;
        let mut all_events = Vec::new();
        for i in 0..needed {
            all_events.extend(m.touch(AppId(0), VirtPageNum(i)).unwrap().events);
        }
        let migrations =
            all_events.iter().filter(|e| matches!(e, MgmtEvent::PageMigrated { .. })).count();
        assert_eq!(migrations as u64, needed, "every mapped page migrated");
        assert!(all_events.iter().any(|e| matches!(e, MgmtEvent::TlbShootdown { .. })));
        // The region is now coalesced and fully populated.
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(table.is_coalesced(LargePageNum(0)));
        assert_eq!(table.mapped_in_large(LargePageNum(0)), 512);
        // Translation is large, and contiguous in the destination frame.
        let t = table.translate(VirtPageNum(3).addr()).unwrap();
        assert_eq!(t.size, PageSize::Large);
    }

    #[test]
    fn promotion_zero_fill_bloats_memory() {
        let mut m = mgr(16);
        for i in 0..((512.0f64 * 0.70).ceil() as u64) {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        // 359 pages touched, a full 2MB region (plus migration sources)
        // committed.
        assert!(m.memory_bloat() > 0.3, "bloat {:.3}", m.memory_bloat());
    }

    #[test]
    fn below_threshold_regions_stay_base_paged() {
        let mut m = mgr(16);
        for i in 0..128 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_coalesced(LargePageNum(0)));
        assert_eq!(m.stats().migrations, 0);
    }

    #[test]
    fn promotion_disabled_degenerates_to_baseline() {
        let mut m = MigratingManager::new(
            16 * LARGE_PAGE_SIZE,
            6,
            MigratingConfig { promote: false, ..Default::default() },
        );
        m.register_app(AppId(0));
        m.reserve(AppId(0), VirtPageNum(0), 1024);
        for i in 0..1024 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        assert_eq!(m.stats().coalesces, 0);
        assert_eq!(m.stats().migrations, 0);
    }

    #[test]
    fn promotion_respects_memory_pressure() {
        // One frame total: promotion cannot find a destination frame and
        // must degrade gracefully.
        let mut m = mgr(1);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_coalesced(LargePageNum(0)), "no frame to migrate into");
        assert_eq!(m.stats().migrations, 0);
    }

    #[test]
    fn interleaved_apps_promote_independently() {
        let mut m = mgr(32);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
            m.touch(AppId(1), VirtPageNum(i)).unwrap();
        }
        for a in [AppId(0), AppId(1)] {
            let table = m.tables().table(a).unwrap();
            assert!(table.is_coalesced(LargePageNum(0)), "{a} promoted");
            // Every frame of the promoted region belongs to this app.
            for (_, frame, _) in table.region_mappings(LargePageNum(0)) {
                assert_eq!(m.pool.owner(frame), Some(a));
            }
        }
    }

    #[test]
    fn dealloc_splinters_and_releases() {
        let mut m = mgr(16);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        let events = m.deallocate(AppId(0), VirtPageNum(0), 512);
        assert!(events.iter().any(|e| matches!(e, MgmtEvent::Splintered { .. })));
        // Reuse works after release.
        for i in 512..1024 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
    }

    /// Regression (found by the conformance fuzzer): re-touching a hole
    /// drilled by a partial deallocation inside a promoted region used to
    /// go through the interleaved allocator, mapping an arbitrary frame
    /// into a still-coalesced region and breaking its contiguity
    /// invariant. The hole must return to its slot in the region's large
    /// frame.
    #[test]
    fn hole_retouch_restores_contiguous_slot() {
        let mut m = mgr(16);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(table.is_coalesced(LargePageNum(0)));
        let lf = table.large_frame_of(LargePageNum(0)).unwrap();

        m.deallocate(AppId(0), VirtPageNum(100), 20);
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(table.is_coalesced(LargePageNum(0)), "partial dealloc keeps the region coalesced");
        assert_eq!(table.mapped_in_large(LargePageNum(0)), 492);

        for i in 100..120 {
            let out = m.touch(AppId(0), VirtPageNum(i)).unwrap();
            assert_eq!(out.transfer_bytes, BASE_PAGE_SIZE, "hole restore is one page transfer");
            assert!(out.events.is_empty(), "no migration, no shootdown");
        }
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(table.is_coalesced(LargePageNum(0)));
        assert_eq!(table.mapped_in_large(LargePageNum(0)), 512);
        assert_eq!(table.large_frame_of(LargePageNum(0)), Some(lf), "same frame throughout");
        assert_eq!(table.translate(VirtPageNum(105).addr()).unwrap().size, PageSize::Large);
        let mut report = mosaic_sim_core::AuditReport::new();
        m.audit(&mut report);
        report.assert_clean("migrating");
    }

    /// Two apps march toward promotion in lockstep, so each app's
    /// promotion fires while the other has allocations in flight in the
    /// shared bump frame. At every checkpoint no base frame may be mapped
    /// by both address spaces, and after both promotions each region's
    /// large frame belongs to its app alone.
    #[test]
    fn interleaved_touches_never_share_a_frame_across_apps() {
        let mut m = mgr(32);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
            m.touch(AppId(1), VirtPageNum(i)).unwrap();
            if i % 64 == 0 || i == 511 {
                let mut owners = std::collections::BTreeMap::new();
                for (asid, table) in m.tables.iter() {
                    for (_, pfn, _) in table.mappings() {
                        if let Some(prev) = owners.insert(pfn, asid) {
                            assert_eq!(prev, asid, "{pfn} mapped by both {prev} and {asid}");
                        }
                    }
                }
                let mut report = mosaic_sim_core::AuditReport::new();
                m.audit(&mut report);
                report.assert_clean("migrating");
            }
        }
        for a in [AppId(0), AppId(1)] {
            let table = m.tables().table(a).unwrap();
            assert!(table.is_coalesced(LargePageNum(0)), "{a} promoted");
            let lf = table.large_frame_of(LargePageNum(0)).unwrap();
            assert!(m.pool.state(lf).single_owner(a), "{a}'s promoted frame is exclusively its");
        }
    }

    /// Promotion is copy-then-switch: every migration event is
    /// non-blocking (the stale mappings stay valid while the copy engine
    /// works), and the one synchronizing action is the final targeted
    /// shootdown of the region.
    #[test]
    fn promotion_is_copy_then_switch() {
        let mut m = mgr(16);
        let needed = (512.0f64 * 0.70).ceil() as u64;
        let mut events = Vec::new();
        for i in 0..needed {
            events.extend(m.touch(AppId(0), VirtPageNum(i)).unwrap().events);
        }
        assert!(events
            .iter()
            .all(|e| !matches!(e, MgmtEvent::PageMigrated { blocking: true, .. })));
        assert!(
            matches!(events.last(), Some(MgmtEvent::TlbShootdown { asid: AppId(0), lpn }) if *lpn == LargePageNum(0))
        );
    }

    #[test]
    fn evict_splinters_promoted_region_and_allows_repromotion() {
        let mut m = mgr(16);
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        assert!(m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
        let out = m.evict_for(LARGE_PAGE_SIZE);
        assert_eq!(out.evicted.len(), 512, "the promoted region went");
        assert!(out.events.iter().any(|e| matches!(e, MgmtEvent::TlbShootdown { .. })));
        let table = m.tables().table(AppId(0)).unwrap();
        assert!(!table.is_coalesced(LargePageNum(0)));
        assert!(!m.promoted.contains(&(AppId(0), LargePageNum(0))));
        let mut report = mosaic_sim_core::AuditReport::new();
        m.audit(&mut report);
        report.assert_clean("migrating");
        // The region refaults and can promote again.
        for i in 0..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        assert!(m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
    }

    #[test]
    fn promotion_carries_dirty_bits_to_the_destination() {
        let mut m = mgr(16);
        m.touch(AppId(0), VirtPageNum(0)).unwrap();
        let old = m.tables().table(AppId(0)).unwrap().translate(VirtPageNum(0).addr()).unwrap();
        m.note_use(old.frame, true);
        assert!(m.pool.is_dirty(old.frame));
        for i in 1..512 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        // Promotion moved the page; the dirty bit must have moved too.
        let new = m.tables().table(AppId(0)).unwrap().translate(VirtPageNum(0).addr()).unwrap();
        assert_ne!(old.frame, new.frame);
        assert!(m.pool.is_dirty(new.frame));
        assert!(!m.pool.is_dirty(old.frame));
    }

    #[test]
    fn unreserved_region_tail_blocks_promotion() {
        let mut m = MigratingManager::new(16 * LARGE_PAGE_SIZE, 6, MigratingConfig::default());
        m.register_app(AppId(0));
        // Reserve only 400 pages of the first region: promotion would
        // have to map pages the app never reserved, so it must not fire.
        m.reserve(AppId(0), VirtPageNum(0), 400);
        for i in 0..400 {
            m.touch(AppId(0), VirtPageNum(i)).unwrap();
        }
        assert!(!m.tables().table(AppId(0)).unwrap().is_coalesced(LargePageNum(0)));
    }
}
