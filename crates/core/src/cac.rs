//! Contiguity-Aware Compaction (CAC), Section 4.4.
//!
//! Deallocation can leave a coalesced large page internally fragmented:
//! some of its base pages are gone, yet the unallocated base frames cannot
//! back any other virtual pages while the large mapping exists. When
//! fragmentation in a coalesced page crosses a threshold, CAC
//!
//! 1. **splinters** the page (clear the disabled bits, atomically clear
//!    the large-page bit, flush the TLB's large-page entry), and
//! 2. **compacts** it: migrates the surviving base pages into spare slots
//!    of other, uncoalesced large frames of the *same application* in the
//!    *same DRAM channel*, then returns the emptied frame to CoCoA's free
//!    frame list.
//!
//! Pages above the threshold are parked on the *emergency frame list*: if
//! CoCoA ever runs out of frames, the failsafe splinters one and hands its
//! holes out as base pages. A second failsafe compacts the artificial
//! fragmentation injected by the Section 6.4 stress tests.
//!
//! Migration cost is returned as [`MgmtEvent::PageMigrated`] events; with
//! `bulk_copy` (CAC-BC) the simulator charges the ~80 ns in-DRAM
//! RowClone/LISA path instead of 512 narrow bus beats, and with `ideal`
//! migrations are free (the paper's Ideal CAC reference).

use crate::cocoa::CoCoA;
use crate::frames::{FramePool, FRAG_OWNER};
use crate::MgmtEvent;
use mosaic_sim_core::{AuditInvariants, AuditReport, Counter};
use mosaic_vm::{AppId, LargeFrameNum, LargePageNum, PageTable, BASE_PAGES_PER_LARGE_PAGE};

/// CAC policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacConfig {
    /// Master switch (the "no CAC" configuration of Figure 16).
    pub enabled: bool,
    /// Splinter a coalesced page when its mapped fraction drops strictly
    /// below this threshold; otherwise park it on the emergency list.
    pub occupancy_threshold: f64,
    /// Use in-DRAM bulk copy for migrations (CAC-BC).
    pub bulk_copy: bool,
    /// Zero-cost migrations (the Ideal CAC reference).
    pub ideal: bool,
}

impl Default for CacConfig {
    fn default() -> Self {
        CacConfig { enabled: true, occupancy_threshold: 0.5, bulk_copy: false, ideal: false }
    }
}

impl CacConfig {
    /// The paper's CAC-BC variant.
    pub fn with_bulk_copy() -> Self {
        CacConfig { bulk_copy: true, ..Self::default() }
    }

    /// The zero-latency Ideal CAC reference.
    pub fn ideal() -> Self {
        CacConfig { ideal: true, ..Self::default() }
    }

    /// CAC disabled.
    pub fn disabled() -> Self {
        CacConfig { enabled: false, ..Self::default() }
    }
}

/// The compaction engine.
#[derive(Debug, Default)]
pub struct Cac {
    config: CacConfig,
    splinters: Counter,
    migrations: Counter,
    frames_reclaimed: Counter,
    soft_guarantee_breaks: Counter,
}

impl Cac {
    /// Creates a CAC engine with the given policy.
    pub fn new(config: CacConfig) -> Self {
        Cac { config, ..Default::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &CacConfig {
        &self.config
    }

    fn migrate_event(&mut self, channel: usize) -> Option<MgmtEvent> {
        self.migrations.inc();
        if self.config.ideal {
            None
        } else {
            Some(MgmtEvent::PageMigrated {
                channel,
                bulk: self.config.bulk_copy,
                // Compaction frees the very frame the triggering
                // allocation needs: it must wait for the data to move.
                blocking: true,
            })
        }
    }

    /// Reacts to deallocations inside the (possibly coalesced) large page
    /// `lpn`. Call after the base pages have been unmapped from `table`
    /// and their owners cleared in `pool`.
    ///
    /// Returns the hardware events to charge.
    pub fn on_dealloc(
        &mut self,
        table: &mut PageTable,
        pool: &mut FramePool,
        cocoa: &mut CoCoA,
        asid: AppId,
        lpn: LargePageNum,
    ) -> Vec<MgmtEvent> {
        let mut events = Vec::new();
        let mapped = table.mapped_in_large(lpn);
        if !table.is_coalesced(lpn) {
            // Uncoalesced frame: just release it if fully drained.
            if mapped == 0 {
                if let Some(lf) = cocoa.unbind_chunk(asid, lpn) {
                    cocoa.reclaim_base(asid, lf);
                    if pool.state(lf).is_empty() {
                        pool.release_frame(lf);
                        self.frames_reclaimed.inc();
                    }
                }
            }
            return events;
        }
        if !self.config.enabled {
            return events;
        }
        let occupancy = mapped as f64 / BASE_PAGES_PER_LARGE_PAGE as f64;
        if occupancy >= self.config.occupancy_threshold && mapped > 0 {
            // Still well-populated: keep the large page, park it for the
            // failsafe.
            cocoa.park_emergency(asid, lpn);
            return events;
        }
        // Splinter...
        table.splinter(lpn);
        self.splinters.inc();
        cocoa.unpark_emergency(asid, lpn);
        mosaic_telemetry::emit(|| mosaic_telemetry::Event::Splinter {
            asid: asid.0,
            lpn: lpn.raw(),
        });
        events.push(MgmtEvent::Splintered { asid, lpn });
        // ...and compact the survivors into same-channel spare slots.
        let lf = match cocoa.unbind_chunk(asid, lpn) {
            Some(lf) => lf,
            None => return events,
        };
        let channel = pool.channel_of(lf);
        let survivors: Vec<_> =
            table.region_mappings(lpn).map(|(vpn, pfn, _)| (vpn, pfn)).collect();
        let mut stuck = Vec::new();
        for (vpn, old) in survivors {
            // Destination: a spare base frame of the same app in the same
            // channel, from the free base page list.
            let dst = self.take_same_channel_base(cocoa, pool, asid, channel);
            match dst {
                Some(dst) => {
                    table.remap_base(vpn, dst).expect("survivor is mapped");
                    // The pending write-back obligation moves with the data.
                    let dirty = pool.is_dirty(old);
                    pool.set_owner(old, None);
                    pool.set_owner(dst, Some(asid));
                    pool.set_mapping(dst, vpn);
                    if dirty {
                        pool.mark_dirty(dst);
                    }
                    if let Some(ev) = self.migrate_event(channel) {
                        events.push(ev);
                    }
                }
                None => stuck.push(vpn),
            }
        }
        if pool.state(lf).is_empty() {
            pool.release_frame(lf);
            self.frames_reclaimed.inc();
        } else {
            // Migration ran out of destinations: the remaining holes are
            // still usable as base pages for this app.
            let holes: Vec<_> = pool.state(lf).holes().map(|i| lf.base_frame(i)).collect();
            cocoa.donate_base(asid, holes);
        }
        let _ = stuck;
        events
    }

    fn take_same_channel_base(
        &mut self,
        cocoa: &mut CoCoA,
        pool: &mut FramePool,
        asid: AppId,
        channel: usize,
    ) -> Option<mosaic_vm::PhysFrameNum> {
        // Scan the app's free base list for a same-channel frame. The list
        // is small in practice (≤ a few frames' worth).
        let n = cocoa.free_base_len(asid);
        let mut tried = Vec::with_capacity(n);
        let mut found = None;
        for _ in 0..n {
            let pfn = match cocoa.pop_free_base(asid) {
                Some(p) => p,
                None => break,
            };
            if pool.channel_of(pfn.large_frame()) == channel {
                found = Some(pfn);
                break;
            }
            tried.push(pfn);
        }
        cocoa.donate_base(asid, tried);
        found
    }

    /// The failsafe: frees up capacity when CoCoA runs out of frames.
    ///
    /// First tries to compact the pre-fragmented (stress-test) frames; if
    /// none can be freed, splinters one emergency-list page and donates its
    /// holes to `requester`'s free base page list (breaking the soft
    /// guarantee if the page belonged to someone else — which is exactly
    /// why the guarantee is *soft*).
    ///
    /// Returns the events plus `true` if any capacity was recovered.
    pub fn reclaim(
        &mut self,
        tables: &mut mosaic_vm::page_table::PageTableSet,
        pool: &mut FramePool,
        cocoa: &mut CoCoA,
        requester: AppId,
    ) -> (Vec<MgmtEvent>, bool) {
        let mut events = Vec::new();
        if self.config.enabled {
            if let Some(events) = self.compact_fragmented(pool) {
                return (events, true);
            }
            // Emergency path: walk the list until an entry actually yields
            // free base frames. A parked page whose holes have since been
            // re-touched back to full occupancy has nothing to give —
            // splintering it would only destroy a perfectly good large
            // page and recover zero capacity — so it is dropped from the
            // list instead (a later dealloc re-parks it if it fragments
            // again).
            while let Some((owner, lpn)) = cocoa.pop_emergency() {
                let table = tables.table_mut(owner);
                if table.mapped_in_large(lpn) == BASE_PAGES_PER_LARGE_PAGE {
                    continue;
                }
                if table.splinter(lpn) {
                    self.splinters.inc();
                    mosaic_telemetry::emit(|| mosaic_telemetry::Event::Splinter {
                        asid: owner.0,
                        lpn: lpn.raw(),
                    });
                    events.push(MgmtEvent::Splintered { asid: owner, lpn });
                }
                let Some(lf) = cocoa.unbind_chunk(owner, lpn) else { continue };
                let holes: Vec<_> = pool.state(lf).holes().map(|i| lf.base_frame(i)).collect();
                if holes.is_empty() {
                    continue;
                }
                if owner != requester {
                    self.soft_guarantee_breaks.inc();
                }
                cocoa.donate_base(requester, holes);
                return (events, true);
            }
        }
        // Scavenge path (available even with CAC disabled — allocation
        // must not fail just because memory is fragmented): hand the holes
        // of the emptiest fragmented frame to the requester as plain base
        // pages. They can never coalesce — this is exactly the degraded
        // mode the Section 6.4 stress tests measure.
        if let Some(frames) = self.scavenge_fragmented_holes(pool) {
            self.soft_guarantee_breaks.inc();
            // Stamp ownership now so a later scavenge cannot hand the same
            // holes out twice (donated frames sit unallocated on the free
            // base page list until used).
            for &pfn in &frames {
                pool.set_owner(pfn, Some(requester));
            }
            cocoa.donate_base(requester, frames);
            return (events, true);
        }
        (events, false)
    }

    /// Finds the fragmented (FRAG_OWNER) frame with the most holes and
    /// returns those base frames, or `None` if no fragmented frame has
    /// free space.
    fn scavenge_fragmented_holes(
        &mut self,
        pool: &mut FramePool,
    ) -> Option<Vec<mosaic_vm::PhysFrameNum>> {
        let victim = pool
            .tracked()
            .filter(|(_, s)| !s.is_full() && s.allocated().any(|(_, o)| o == FRAG_OWNER))
            .max_by_key(|(lf, s)| (BASE_PAGES_PER_LARGE_PAGE - s.used(), std::cmp::Reverse(*lf)))
            .map(|(lf, _)| lf)?;
        let holes: Vec<_> = pool.state(victim).holes().map(|i| victim.base_frame(i)).collect();
        if holes.is_empty() {
            None
        } else {
            Some(holes)
        }
    }

    /// Consolidates pre-fragmented (FRAG_OWNER) data: moves the pages of
    /// the least-occupied fragmented frame into holes of other fragmented
    /// frames in the same channel, freeing the source frame. Returns the
    /// migration events, or `None` if no frame could be freed.
    fn compact_fragmented(&mut self, pool: &mut FramePool) -> Option<Vec<MgmtEvent>> {
        // Pick the least-occupied frame holding only FRAG_OWNER data.
        let mut frag_frames: Vec<(LargeFrameNum, u64)> = pool
            .tracked()
            .filter(|(_, s)| !s.is_empty() && s.single_owner(FRAG_OWNER))
            .map(|(lf, s)| (lf, s.used()))
            .collect();
        frag_frames.sort_by_key(|&(lf, used)| (used, lf));
        let (src, src_used) = *frag_frames.first()?;
        let channel = pool.channel_of(src);
        // Capacity available in other same-channel fragmented frames.
        let mut dst_holes: Vec<mosaic_vm::PhysFrameNum> = Vec::new();
        for &(lf, _) in frag_frames.iter().skip(1) {
            if pool.channel_of(lf) != channel {
                continue;
            }
            for i in pool.state(lf).holes() {
                dst_holes.push(lf.base_frame(i));
                if dst_holes.len() as u64 >= src_used {
                    break;
                }
            }
            if dst_holes.len() as u64 >= src_used {
                break;
            }
        }
        if (dst_holes.len() as u64) < src_used {
            return None; // Cannot fully drain any frame.
        }
        let mut events = Vec::new();
        let srcs: Vec<_> = pool.state(src).allocated().map(|(i, _)| src.base_frame(i)).collect();
        for (from, to) in srcs.into_iter().zip(dst_holes) {
            pool.set_owner(from, None);
            pool.set_owner(to, Some(FRAG_OWNER));
            if let Some(ev) = self.migrate_event(channel) {
                events.push(ev);
            }
        }
        pool.release_frame(src);
        self.frames_reclaimed.inc();
        Some(events)
    }

    /// Large pages splintered by CAC.
    pub fn splinters(&self) -> u64 {
        self.splinters.get()
    }

    /// Base pages migrated.
    pub fn migrations(&self) -> u64 {
        self.migrations.get()
    }

    /// Whole large frames returned to the free list.
    pub fn frames_reclaimed(&self) -> u64 {
        self.frames_reclaimed.get()
    }

    /// Times the emergency failsafe handed one app's spare frames to
    /// another (soft-guarantee breaks).
    pub fn soft_guarantee_breaks(&self) -> u64 {
        self.soft_guarantee_breaks.get()
    }
}

impl AuditInvariants for Cac {
    fn audit_component(&self) -> &'static str {
        "cac"
    }

    /// Policy sanity: the splinter threshold must stay a valid occupancy
    /// fraction, and the counters must be mutually consistent (every
    /// soft-guarantee break came from a reclaim, which splinters or
    /// scavenges).
    fn audit(&self, report: &mut AuditReport) {
        let c = self.audit_component();
        let t = self.config.occupancy_threshold;
        report.check(c, t.is_finite() && (0.0..=1.0).contains(&t), || {
            format!("occupancy threshold {t} is not a fraction in [0, 1]")
        });
        report.check(c, !self.config.ideal || self.config.enabled, || {
            "ideal CAC requires CAC to be enabled".to_string()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_vm::{PageTableSet, LARGE_PAGE_SIZE};

    fn setup(frames: u64) -> (PageTableSet, FramePool, CoCoA) {
        (PageTableSet::new(), FramePool::new(frames * LARGE_PAGE_SIZE, 6), CoCoA::new())
    }

    /// Builds a fully-mapped, coalesced chunk for `asid` at `lpn`.
    fn build_coalesced(
        tables: &mut PageTableSet,
        pool: &mut FramePool,
        cocoa: &mut CoCoA,
        asid: AppId,
        lpn: LargePageNum,
    ) -> LargeFrameNum {
        let lf = cocoa.frame_for_chunk(pool, asid, lpn).unwrap();
        let table = tables.table_mut(asid);
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            table.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
            pool.set_owner(lf.base_frame(i), Some(asid));
        }
        table.coalesce(lpn).unwrap();
        lf
    }

    fn dealloc_pages(
        tables: &mut PageTableSet,
        pool: &mut FramePool,
        asid: AppId,
        lpn: LargePageNum,
        count: u64,
    ) {
        let table = tables.table_mut(asid);
        for i in 0..count {
            let vpn = lpn.base_page(i);
            if let Some(pfn) = table.unmap_base(vpn) {
                pool.set_owner(pfn, None);
            }
        }
    }

    #[test]
    fn low_occupancy_triggers_splinter_and_compaction() {
        let (mut tables, mut pool, mut cocoa) = setup(8);
        let asid = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn);
        // Give the app spare base frames in the same channel (frame 6 maps
        // to channel 0, same as frame 0).
        let spare = pool.take_free_frame().unwrap(); // frame 1
        let same_channel = LargeFrameNum(6);
        assert_eq!(pool.channel_of(same_channel), pool.channel_of(LargeFrameNum(0)));
        let _ = spare;
        // Take frames until we hold frame 6, then donate its slots.
        let mut lf = pool.take_free_frame().unwrap();
        while lf != same_channel {
            lf = pool.take_free_frame().unwrap();
        }
        cocoa.donate_base(asid, lf.base_frames());

        // Deallocate 500 of 512 pages: occupancy 12/512 << 50%.
        dealloc_pages(&mut tables, &mut pool, asid, lpn, 500);
        let mut cac = Cac::new(CacConfig::default());
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn);

        assert!(matches!(events[0], MgmtEvent::Splintered { .. }));
        let migrations =
            events.iter().filter(|e| matches!(e, MgmtEvent::PageMigrated { .. })).count();
        assert_eq!(migrations, 12, "all 12 survivors migrate");
        assert_eq!(cac.frames_reclaimed(), 1, "source frame was freed");
        // Survivors still translate, at base size, to same-channel frames.
        let table = tables.table(asid).unwrap();
        for i in 500..512 {
            let t = table.translate(lpn.base_page(i).addr()).unwrap();
            assert_eq!(pool.channel_of(t.frame.large_frame()), 0);
        }
    }

    #[test]
    fn high_occupancy_parks_on_emergency_list() {
        let (mut tables, mut pool, mut cocoa) = setup(4);
        let asid = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn);
        dealloc_pages(&mut tables, &mut pool, asid, lpn, 10); // occupancy 98%
        let mut cac = Cac::new(CacConfig::default());
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn);
        assert!(events.is_empty());
        assert!(tables.table(asid).unwrap().is_coalesced(lpn), "page stays coalesced");
        assert_eq!(cocoa.emergency_len(), 1);
    }

    #[test]
    fn disabled_cac_does_nothing() {
        let (mut tables, mut pool, mut cocoa) = setup(4);
        let asid = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn);
        dealloc_pages(&mut tables, &mut pool, asid, lpn, 511);
        let mut cac = Cac::new(CacConfig::disabled());
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn);
        assert!(events.is_empty());
        assert!(tables.table(asid).unwrap().is_coalesced(lpn));
        assert_eq!(cac.splinters(), 0);
    }

    #[test]
    fn ideal_cac_migrates_for_free() {
        let (mut tables, mut pool, mut cocoa) = setup(8);
        let asid = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn);
        let lf = LargeFrameNum(6);
        let mut f = pool.take_free_frame().unwrap();
        while f != lf {
            f = pool.take_free_frame().unwrap();
        }
        cocoa.donate_base(asid, lf.base_frames());
        dealloc_pages(&mut tables, &mut pool, asid, lpn, 510);
        let mut cac = Cac::new(CacConfig::ideal());
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn);
        // Splinter event only: migrations happened but cost nothing.
        assert_eq!(events.len(), 1);
        assert_eq!(cac.migrations(), 2);
    }

    #[test]
    fn bulk_copy_flag_propagates() {
        let (mut tables, mut pool, mut cocoa) = setup(8);
        let asid = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn);
        let lf = LargeFrameNum(6);
        let mut f = pool.take_free_frame().unwrap();
        while f != lf {
            f = pool.take_free_frame().unwrap();
        }
        cocoa.donate_base(asid, lf.base_frames());
        dealloc_pages(&mut tables, &mut pool, asid, lpn, 511);
        let mut cac = Cac::new(CacConfig::with_bulk_copy());
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn);
        assert!(events.iter().any(|e| matches!(e, MgmtEvent::PageMigrated { bulk: true, .. })));
    }

    #[test]
    fn full_dealloc_releases_frame() {
        let (mut tables, mut pool, mut cocoa) = setup(4);
        let asid = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn);
        let free_before = pool.free_frames();
        dealloc_pages(&mut tables, &mut pool, asid, lpn, 512);
        let mut cac = Cac::new(CacConfig::default());
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn);
        assert!(matches!(events[0], MgmtEvent::Splintered { .. }));
        assert_eq!(pool.free_frames(), free_before + 1);
    }

    #[test]
    fn reclaim_compacts_fragmented_memory() {
        let (mut tables, mut pool, mut cocoa) = setup(12);
        let mut rng = mosaic_sim_core::SimRng::from_seed(3);
        pool.pre_fragment(1.0, 0.25, &mut rng);
        assert_eq!(pool.free_frames(), 0);
        let mut cac = Cac::new(CacConfig::default());
        let (events, ok) = cac.reclaim(&mut tables, &mut pool, &mut cocoa, AppId(0));
        assert!(ok);
        assert!(!events.is_empty());
        assert_eq!(pool.free_frames(), 1, "one frame was fully drained");
    }

    #[test]
    fn reclaim_uses_emergency_list_when_no_fragmentation() {
        let (mut tables, mut pool, mut cocoa) = setup(4);
        let owner = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, owner, lpn);
        dealloc_pages(&mut tables, &mut pool, owner, lpn, 10);
        let mut cac = Cac::new(CacConfig::default());
        cac.on_dealloc(tables.table_mut(owner), &mut pool, &mut cocoa, owner, lpn);
        assert_eq!(cocoa.emergency_len(), 1);

        let requester = AppId(1);
        let (events, ok) = cac.reclaim(&mut tables, &mut pool, &mut cocoa, requester);
        assert!(ok);
        assert!(matches!(events[0], MgmtEvent::Splintered { .. }));
        // The 10 holes went to the requester: a soft-guarantee break.
        assert_eq!(cocoa.free_base_len(requester), 10);
        assert_eq!(cac.soft_guarantee_breaks(), 1);
        assert!(!tables.table(owner).unwrap().is_coalesced(lpn));
    }

    #[test]
    fn reclaim_fails_when_nothing_to_reclaim() {
        let (mut tables, mut pool, mut cocoa) = setup(2);
        let mut cac = Cac::new(CacConfig::default());
        let (events, ok) = cac.reclaim(&mut tables, &mut pool, &mut cocoa, AppId(0));
        assert!(!ok);
        assert!(events.is_empty());
    }

    /// Parks two chunks on the emergency list, then re-touches the
    /// younger one back to full occupancy. The LIFO pop reaches the full
    /// entry first; reclaim must drop it *without* splintering it —
    /// destroying a full large page recovers zero capacity — and keep
    /// walking until the entry that still has holes donates them.
    /// (Regression for the single-pop reclaim bug the fuzzer found.)
    #[test]
    fn reclaim_skips_refilled_full_emergency_entries() {
        let (mut tables, mut pool, mut cocoa) = setup(6);
        let owner = AppId(0);
        let mut cac = Cac::new(CacConfig::default());

        // Chunk 0: 10 holes, parked.
        let lpn0 = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, owner, lpn0);
        dealloc_pages(&mut tables, &mut pool, owner, lpn0, 10);
        cac.on_dealloc(tables.table_mut(owner), &mut pool, &mut cocoa, owner, lpn0);

        // Chunk 1: 10 holes, parked second (popped first).
        let lpn1 = LargePageNum(1);
        let lf1 = build_coalesced(&mut tables, &mut pool, &mut cocoa, owner, lpn1);
        dealloc_pages(&mut tables, &mut pool, owner, lpn1, 10);
        cac.on_dealloc(tables.table_mut(owner), &mut pool, &mut cocoa, owner, lpn1);
        assert_eq!(cocoa.emergency_len(), 2);

        // Re-touch chunk 1 back to full occupancy (the contiguous slots —
        // the only legal mapping while the region stays coalesced).
        let table = tables.table_mut(owner);
        for i in 0..10 {
            table.map_base(lpn1.base_page(i), lf1.base_frame(i)).unwrap();
            pool.set_owner(lf1.base_frame(i), Some(owner));
        }

        let requester = AppId(1);
        let (events, ok) = cac.reclaim(&mut tables, &mut pool, &mut cocoa, requester);
        assert!(ok);
        // Exactly one splinter — of chunk 0, not the refilled chunk 1.
        assert_eq!(cac.splinters(), 1);
        assert_eq!(
            events.iter().filter(|e| matches!(e, MgmtEvent::Splintered { .. })).count(),
            1,
            "counter and events must agree"
        );
        assert!(matches!(events[0], MgmtEvent::Splintered { lpn, .. } if lpn == lpn0));
        assert!(tables.table(owner).unwrap().is_coalesced(lpn1), "full entry left intact");
        assert_eq!(cocoa.free_base_len(requester), 10, "chunk 0's holes were donated");
        assert_eq!(cocoa.emergency_len(), 0, "full entry dropped, holey entry consumed");
    }

    /// `splinters()` and `migrations()` must match the events emitted,
    /// accumulated across multiple `on_dealloc` calls.
    #[test]
    fn counters_track_events_across_operations() {
        let (mut tables, mut pool, mut cocoa) = setup(8);
        let asid = AppId(0);
        let mut cac = Cac::new(CacConfig::default());
        let mut splinter_events = 0;
        let mut migration_events = 0;

        // Chunk 0 drops to 2 live pages; same-channel spare capacity is
        // available, so the CAC splinters and migrates both survivors.
        let lpn0 = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn0);
        let spare = LargeFrameNum(6);
        assert_eq!(pool.channel_of(spare), pool.channel_of(LargeFrameNum(0)));
        let mut f = pool.take_free_frame().unwrap();
        while f != spare {
            f = pool.take_free_frame().unwrap();
        }
        cocoa.donate_base(asid, spare.base_frames());
        dealloc_pages(&mut tables, &mut pool, asid, lpn0, 510);
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn0);
        splinter_events +=
            events.iter().filter(|e| matches!(e, MgmtEvent::Splintered { .. })).count();
        migration_events +=
            events.iter().filter(|e| matches!(e, MgmtEvent::PageMigrated { .. })).count();
        assert_eq!(cac.splinters(), 1);
        assert_eq!(cac.migrations(), 2);

        // Chunk 1 is deallocated entirely: splinter + frame release, but
        // nothing left to migrate.
        let lpn1 = LargePageNum(1);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, asid, lpn1);
        dealloc_pages(&mut tables, &mut pool, asid, lpn1, 512);
        let events = cac.on_dealloc(tables.table_mut(asid), &mut pool, &mut cocoa, asid, lpn1);
        splinter_events +=
            events.iter().filter(|e| matches!(e, MgmtEvent::Splintered { .. })).count();
        migration_events +=
            events.iter().filter(|e| matches!(e, MgmtEvent::PageMigrated { .. })).count();

        assert_eq!(cac.splinters() as usize, splinter_events);
        assert_eq!(cac.migrations() as usize, migration_events);
        assert_eq!(cac.splinters(), 2);
        assert_eq!(cac.migrations(), 2);
    }

    /// Reclaiming from one's own parked emergency entry is not a
    /// soft-guarantee break: the holes never leave the owning app.
    #[test]
    fn reclaim_from_own_emergency_entry_is_not_a_guarantee_break() {
        let (mut tables, mut pool, mut cocoa) = setup(4);
        let owner = AppId(0);
        let lpn = LargePageNum(0);
        build_coalesced(&mut tables, &mut pool, &mut cocoa, owner, lpn);
        dealloc_pages(&mut tables, &mut pool, owner, lpn, 10);
        let mut cac = Cac::new(CacConfig::default());
        cac.on_dealloc(tables.table_mut(owner), &mut pool, &mut cocoa, owner, lpn);
        assert_eq!(cocoa.emergency_len(), 1);

        let (events, ok) = cac.reclaim(&mut tables, &mut pool, &mut cocoa, owner);
        assert!(ok);
        assert!(matches!(events[0], MgmtEvent::Splintered { .. }));
        assert_eq!(cocoa.free_base_len(owner), 10);
        assert_eq!(cac.soft_guarantee_breaks(), 0, "own pages, no break");
    }
}
