//! Physical-memory frame bookkeeping.
//!
//! The [`FramePool`] tracks every large page frame (2 MB, page-aligned) of
//! GPU physical memory and the per-base-frame allocation state inside each:
//! which address space owns each 4 KB base frame, which frames are free,
//! and which frames were *pre-fragmented* by the Section 6.4 stress tests.
//!
//! The pool also assigns each large frame a home DRAM channel, which CAC
//! uses to honor the paper's constraint that compaction migrates base pages
//! only between large page frames in the same memory channel.

use mosaic_sim_core::{AuditInvariants, AuditReport};
use mosaic_vm::{
    AppId, LargeFrameNum, PhysFrameNum, VirtPageNum, BASE_PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE,
};
use std::collections::BTreeSet;

/// Words of 64 dirty bits covering the 512 base frames of a large frame.
const DIRTY_WORDS: usize = (BASE_PAGES_PER_LARGE_PAGE as usize).div_ceil(64);

/// The special owner recorded for data injected by fragmentation
/// stress tests (Section 6.4): it belongs to no real address space and
/// never satisfies CoCoA's soft guarantee.
pub const FRAG_OWNER: AppId = AppId(u16::MAX);

/// Allocation state of one large page frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameState {
    /// Owner of each of the 512 base frames (`None` = unallocated).
    owners: Vec<Option<AppId>>,
    /// Virtual page each base frame currently backs (`None` when the slot
    /// is unallocated or holds unmapped data such as injected
    /// fragmentation). The eviction path uses this reverse map to find
    /// the translations it must tear down.
    mapped: Vec<Option<VirtPageNum>>,
    /// Per-base-frame dirty bits: set by stores to resident pages,
    /// cleared on deallocation/eviction. A dirty page must be written
    /// back over the I/O bus before its frame is reused.
    dirty: [u64; DIRTY_WORDS],
    /// Number of allocated base frames (cached).
    used: u16,
    /// Number of allocated base frames owned by real applications
    /// (excluding [`FRAG_OWNER`]).
    app_used: u16,
    /// Pool-clock stamp of the most recent access (0 = never accessed).
    /// Drives the LRU eviction order.
    last_use: u64,
}

impl Default for FrameState {
    fn default() -> Self {
        FrameState {
            owners: vec![None; BASE_PAGES_PER_LARGE_PAGE as usize],
            mapped: vec![None; BASE_PAGES_PER_LARGE_PAGE as usize],
            dirty: [0; DIRTY_WORDS],
            used: 0,
            app_used: 0,
            last_use: 0,
        }
    }
}

impl FrameState {
    /// Number of allocated base frames in this large frame.
    pub fn used(&self) -> u64 {
        u64::from(self.used)
    }

    /// Whether no base frame is allocated.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Whether every base frame is allocated.
    pub fn is_full(&self) -> bool {
        u64::from(self.used) == BASE_PAGES_PER_LARGE_PAGE
    }

    /// Owner of base frame `i` within this large frame.
    pub fn owner(&self, i: u64) -> Option<AppId> {
        self.owners[i as usize]
    }

    /// Whether all allocated base frames belong to `asid` (vacuously true
    /// when empty) — the paper's *soft guarantee* predicate.
    pub fn single_owner(&self, asid: AppId) -> bool {
        self.owners.iter().flatten().all(|&o| o == asid)
    }

    /// Iterates allocated `(index, owner)` pairs.
    pub fn allocated(&self) -> impl Iterator<Item = (u64, AppId)> + '_ {
        self.owners.iter().enumerate().filter_map(|(i, o)| o.map(|a| (i as u64, a)))
    }

    /// Indices of unallocated base frames.
    pub fn holes(&self) -> impl Iterator<Item = u64> + '_ {
        self.owners.iter().enumerate().filter(|(_, o)| o.is_none()).map(|(i, _)| i as u64)
    }

    /// Virtual page backed by base frame `i`, if any.
    pub fn mapping(&self, i: u64) -> Option<VirtPageNum> {
        self.mapped[i as usize]
    }

    /// Whether base frame `i` holds unwritten-back store data.
    pub fn is_dirty(&self, i: u64) -> bool {
        (self.dirty[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    fn set_dirty_bit(&mut self, i: u64, v: bool) {
        let mask = 1u64 << (i % 64);
        if v {
            self.dirty[(i / 64) as usize] |= mask;
        } else {
            self.dirty[(i / 64) as usize] &= !mask;
        }
    }

    /// Number of dirty base frames.
    pub fn dirty_pages(&self) -> u64 {
        self.dirty.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Pool-clock stamp of the most recent access (0 = never accessed).
    pub fn last_use(&self) -> u64 {
        self.last_use
    }

    /// Iterates `(index, owner, virtual page)` over base frames that are
    /// both allocated and mapped — the pages eviction must tear down.
    pub fn residents(&self) -> impl Iterator<Item = (u64, AppId, VirtPageNum)> + '_ {
        self.owners
            .iter()
            .zip(&self.mapped)
            .enumerate()
            .filter_map(|(i, (o, m))| o.zip(*m).map(|(a, v)| (i as u64, a, v)))
    }
}

/// Outcome of [`FramePool::pre_fragment`]: how much fragmentation was
/// requested vs. actually injected. The free list can be shorter than
/// the request, so drivers must check [`FragmentReport::shortfall`] and
/// fail loudly rather than run an under-fragmented experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentReport {
    /// Frames the fragmentation index asked for.
    pub requested_frames: u64,
    /// Frames actually taken off the free list and fragmented.
    pub fragmented_frames: u64,
    /// Base pages injected with [`FRAG_OWNER`] data.
    pub injected_pages: u64,
}

impl FragmentReport {
    /// Frames requested but not injected (the free list was too short).
    pub fn shortfall(&self) -> u64 {
        self.requested_frames - self.fragmented_frames
    }
}

/// All of GPU physical memory, at large-frame granularity.
///
/// # Examples
///
/// ```
/// use mosaic_core::frames::FramePool;
/// use mosaic_vm::AppId;
///
/// let mut pool = FramePool::new(64 * 2 * 1024 * 1024, 6); // 64 large frames
/// assert_eq!(pool.total_large_frames(), 64);
/// let lf = pool.take_free_frame().unwrap();
/// let pfn = lf.base_frame(0);
/// pool.set_owner(pfn, Some(AppId(3)));
/// assert_eq!(pool.state(lf).used(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FramePool {
    total: u64,
    channels: usize,
    /// Per-large-frame allocation state, indexed by `LargeFrameNum::raw`
    /// (`None` = neither allocated nor reserved). A flat table rather
    /// than a map: the pool size is fixed at construction and frame
    /// lookups sit on the allocation/deallocation hot path.
    states: Vec<Option<FrameState>>,
    /// Number of `Some` entries in `states` (tracked/reserved frames).
    tracked: u64,
    /// Free large frames (no base frame allocated, not reserved), in
    /// ascending order for determinism.
    free: Vec<LargeFrameNum>,
    /// Frames currently holding real application data.
    app_frames: u64,
    /// High-water mark of `app_frames`.
    peak_app_frames: u64,
    /// High-water mark of tracked (reserved) frames.
    peak_tracked: u64,
    /// Logical access clock: incremented on every [`FramePool::note_use`]
    /// and stamped into the touched frame's `last_use`. A counter rather
    /// than a cycle so recency ordering is total (no ties within a
    /// simulation step) and independent of timing-model changes.
    use_clock: u64,
}

impl FramePool {
    /// Creates a pool covering `bytes` of physical memory striped over
    /// `channels` DRAM channels.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of 2 MB or `channels`
    /// is zero.
    pub fn new(bytes: u64, channels: usize) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(LARGE_PAGE_SIZE),
            "memory must be a multiple of 2MB"
        );
        assert!(channels > 0, "need at least one channel");
        let total = bytes / LARGE_PAGE_SIZE;
        FramePool {
            total,
            channels,
            states: vec![None; total as usize],
            tracked: 0,
            // Keep descending so `pop` hands out ascending frame numbers.
            free: (0..total).rev().map(LargeFrameNum).collect(),
            app_frames: 0,
            peak_app_frames: 0,
            peak_tracked: 0,
            use_clock: 0,
        }
    }

    /// Number of large frames in the pool.
    pub fn total_large_frames(&self) -> u64 {
        self.total
    }

    /// Number of frames on the free-frame list.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// The home DRAM channel of a large frame (coarse page-to-channel
    /// assignment used for CAC's same-channel migration constraint).
    pub fn channel_of(&self, lf: LargeFrameNum) -> usize {
        (lf.raw() % self.channels as u64) as usize
    }

    /// Takes a frame off the free-frame list (CoCoA's allocation step).
    pub fn take_free_frame(&mut self) -> Option<LargeFrameNum> {
        let lf = self.free.pop()?;
        let slot = &mut self.states[lf.raw() as usize];
        if slot.is_none() {
            *slot = Some(FrameState::default());
            self.tracked += 1;
        }
        self.peak_tracked = self.peak_tracked.max(self.tracked);
        Some(lf)
    }

    /// Returns a fully-empty frame to the free list (CAC's step 10 in
    /// Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if any base frame in it is still allocated.
    pub fn release_frame(&mut self, lf: LargeFrameNum) {
        if let Some(state) = self.states[lf.raw() as usize].take() {
            assert!(state.is_empty(), "cannot release a frame with allocated base pages");
            self.tracked -= 1;
        }
        self.free.push(lf);
    }

    /// Allocation state of a large frame (empty default if untouched).
    pub fn state(&self, lf: LargeFrameNum) -> FrameState {
        self.states.get(lf.raw() as usize).and_then(Option::as_ref).cloned().unwrap_or_default()
    }

    /// Sets (or clears) the owner of one base frame.
    pub fn set_owner(&mut self, pfn: PhysFrameNum, owner: Option<AppId>) {
        let lf = pfn.large_frame();
        let slot = &mut self.states[lf.raw() as usize];
        let state = match slot {
            Some(s) => s,
            None => {
                self.tracked += 1;
                slot.insert(FrameState::default())
            }
        };
        let idx = pfn.index_in_large() as usize;
        let app_before = state.app_used;
        match (state.owners[idx], owner) {
            (None, Some(_)) => state.used += 1,
            (Some(_), None) => state.used -= 1,
            _ => {}
        }
        let is_app = |o: Option<AppId>| o.is_some_and(|a| a != FRAG_OWNER);
        match (is_app(state.owners[idx]), is_app(owner)) {
            (false, true) => state.app_used += 1,
            (true, false) => state.app_used -= 1,
            _ => {}
        }
        state.owners[idx] = owner;
        if owner.is_none() {
            // A freed base frame carries no translation and no
            // unwritten-back data.
            state.mapped[idx] = None;
            state.set_dirty_bit(idx as u64, false);
        }
        match (app_before, state.app_used) {
            (0, 1..) => self.app_frames += 1,
            (1.., 0) => self.app_frames -= 1,
            _ => {}
        }
        self.peak_app_frames = self.peak_app_frames.max(self.app_frames);
        self.peak_tracked = self.peak_tracked.max(self.tracked);
    }

    /// Owner of one base frame.
    pub fn owner(&self, pfn: PhysFrameNum) -> Option<AppId> {
        self.states
            .get(pfn.large_frame().raw() as usize)
            .and_then(Option::as_ref)
            .and_then(|s| s.owner(pfn.index_in_large()))
    }

    /// Records the virtual page a base frame now backs. Managers call
    /// this at every mapping/remapping site; [`FramePool::set_owner`]
    /// with `None` clears it again. The reverse map is what lets the
    /// eviction path find the translations behind a victim frame.
    pub fn set_mapping(&mut self, pfn: PhysFrameNum, vpn: VirtPageNum) {
        let lf = pfn.large_frame();
        if let Some(state) = self.states.get_mut(lf.raw() as usize).and_then(Option::as_mut) {
            state.mapped[pfn.index_in_large() as usize] = Some(vpn);
        }
    }

    /// Virtual page a base frame currently backs, if any.
    pub fn mapping(&self, pfn: PhysFrameNum) -> Option<VirtPageNum> {
        self.states
            .get(pfn.large_frame().raw() as usize)
            .and_then(Option::as_ref)
            .and_then(|s| s.mapping(pfn.index_in_large()))
    }

    /// Marks one base frame as recently used, and dirty when the access
    /// is a store to an allocated slot. O(1); sits on the warp-access
    /// hot path.
    pub fn note_use(&mut self, pfn: PhysFrameNum, store: bool) {
        let lf = pfn.large_frame();
        if let Some(state) = self.states.get_mut(lf.raw() as usize).and_then(Option::as_mut) {
            self.use_clock += 1;
            state.last_use = self.use_clock;
            let idx = pfn.index_in_large();
            if store && state.owners[idx as usize].is_some() {
                state.set_dirty_bit(idx, true);
            }
        }
    }

    /// Whether one base frame holds unwritten-back store data.
    pub fn is_dirty(&self, pfn: PhysFrameNum) -> bool {
        self.states
            .get(pfn.large_frame().raw() as usize)
            .and_then(Option::as_ref)
            .is_some_and(|s| s.is_dirty(pfn.index_in_large()))
    }

    /// Marks one base frame dirty without touching recency — used to
    /// carry the dirty bit across a page migration (the data moved, the
    /// pending write-back obligation moves with it).
    pub fn mark_dirty(&mut self, pfn: PhysFrameNum) {
        let lf = pfn.large_frame();
        if let Some(state) = self.states.get_mut(lf.raw() as usize).and_then(Option::as_mut) {
            if state.owners[pfn.index_in_large() as usize].is_some() {
                state.set_dirty_bit(pfn.index_in_large(), true);
            }
        }
    }

    /// Large frames eligible for wholesale eviction, least-recently-used
    /// first (ties broken by frame number, so the order is deterministic):
    /// tracked frames whose every allocated base frame belongs to a real
    /// application and carries a live mapping — evicting one therefore
    /// leaves it empty and releasable. Frames holding injected
    /// fragmentation or owner-stamped-but-unmapped pages are excluded.
    pub fn eviction_candidates(&self) -> Vec<LargeFrameNum> {
        let mut cands: Vec<(u64, LargeFrameNum)> = self
            .tracked()
            .filter(|(_, s)| {
                s.used > 0 && s.used == s.app_used && s.residents().count() == s.used as usize
            })
            .map(|(lf, s)| (s.last_use, lf))
            .collect();
        cands.sort_unstable();
        cands.into_iter().map(|(_, lf)| lf).collect()
    }

    /// The `(base frame, owner, virtual page)` residents of one large
    /// frame — the pages an eviction of that frame must tear down.
    pub fn residents(&self, lf: LargeFrameNum) -> Vec<(PhysFrameNum, AppId, VirtPageNum)> {
        match self.states.get(lf.raw() as usize).and_then(Option::as_ref) {
            Some(state) => state.residents().map(|(i, a, v)| (lf.base_frame(i), a, v)).collect(),
            None => Vec::new(),
        }
    }

    /// Iterates `(frame, state)` over frames with any allocation or
    /// reservation, in ascending frame-number order.
    pub fn tracked(&self) -> impl Iterator<Item = (LargeFrameNum, &FrameState)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (LargeFrameNum(i as u64), s)))
    }

    /// Total allocated base frames across the pool.
    pub fn allocated_base_frames(&self) -> u64 {
        self.states.iter().flatten().map(FrameState::used).sum()
    }

    /// Bytes of physical memory covered by tracked (reserved or partially
    /// used) large frames — the footprint figure used for memory-bloat
    /// accounting.
    pub fn reserved_bytes(&self) -> u64 {
        self.tracked * LARGE_PAGE_SIZE
    }

    /// Bytes of physical memory covered by large frames holding at least
    /// one base frame of a *real* application (excluding frames used only
    /// by injected pre-fragmentation data). This is the footprint the
    /// Table 2 bloat comparison charges to the applications.
    pub fn app_reserved_bytes(&self) -> u64 {
        self.app_frames * LARGE_PAGE_SIZE
    }

    /// High-water mark of [`FramePool::app_reserved_bytes`] over the
    /// pool's lifetime — kernels deallocate on completion, so end-of-run
    /// footprints say nothing; bloat is measured at the peak.
    pub fn peak_app_reserved_bytes(&self) -> u64 {
        self.peak_app_frames * LARGE_PAGE_SIZE
    }

    /// High-water mark of [`FramePool::reserved_bytes`].
    pub fn peak_reserved_bytes(&self) -> u64 {
        self.peak_tracked * LARGE_PAGE_SIZE
    }

    /// Injects pre-fragmented data for the Section 6.4 stress tests:
    /// a `fragmentation_index` fraction of all large frames each receive
    /// `occupancy` of their base frames, owned by [`FRAG_OWNER`], placed
    /// randomly with `rng`.
    ///
    /// Fragmented frames are removed from the free-frame list.
    ///
    /// The free list can hold fewer frames than the index asks for (other
    /// allocations got there first); the returned [`FragmentReport`] says
    /// how many frames were requested vs. injected so callers can fail
    /// loudly instead of running an under-fragmented experiment.
    pub fn pre_fragment(
        &mut self,
        fragmentation_index: f64,
        occupancy: f64,
        rng: &mut mosaic_sim_core::SimRng,
    ) -> FragmentReport {
        let index = fragmentation_index.clamp(0.0, 1.0);
        let occupancy = occupancy.clamp(0.0, 1.0);
        let n_frames = (self.total as f64 * index).round() as u64;
        let per_frame = ((BASE_PAGES_PER_LARGE_PAGE as f64 * occupancy).round() as u64)
            .clamp(if n_frames > 0 && occupancy > 0.0 { 1 } else { 0 }, BASE_PAGES_PER_LARGE_PAGE);
        let mut victims: Vec<LargeFrameNum> = self.free.clone();
        rng.shuffle(&mut victims);
        victims.truncate(n_frames as usize);
        let mut report = FragmentReport {
            requested_frames: n_frames,
            fragmented_frames: victims.len() as u64,
            injected_pages: 0,
        };
        for lf in victims {
            self.free.retain(|&f| f != lf);
            let mut indices: Vec<u64> = (0..BASE_PAGES_PER_LARGE_PAGE).collect();
            rng.shuffle(&mut indices);
            for &i in indices.iter().take(per_frame as usize) {
                self.set_owner(lf.base_frame(i), Some(FRAG_OWNER));
                report.injected_pages += 1;
            }
        }
        report
    }
}

impl AuditInvariants for FramePool {
    fn audit_component(&self) -> &'static str {
        "frame-pool"
    }

    /// Frame-count conservation and per-frame accounting: every large
    /// frame is exactly once either free or tracked, and every cached
    /// counter matches a recount from the ground truth (`owners`).
    fn audit(&self, report: &mut AuditReport) {
        let c = self.audit_component();
        let free: BTreeSet<LargeFrameNum> = self.free.iter().copied().collect();
        report.check(c, free.len() == self.free.len(), || {
            format!(
                "free list holds {} entries but only {} distinct frames",
                self.free.len(),
                free.len()
            )
        });
        report.check(c, self.states.len() as u64 == self.total, || {
            format!(
                "state table covers {} frames but the pool holds {}",
                self.states.len(),
                self.total
            )
        });
        let tracked_recount = self.states.iter().flatten().count() as u64;
        report.check(c, self.tracked == tracked_recount, || {
            format!(
                "pool caches tracked={} but {} state slots are occupied",
                self.tracked, tracked_recount
            )
        });
        report.check(c, free.len() as u64 + tracked_recount == self.total, || {
            format!(
                "frame conservation broken: {} free + {} tracked != {} total",
                free.len(),
                tracked_recount,
                self.total
            )
        });
        report.check(c, !self.tracked().any(|(lf, _)| free.contains(&lf)), || {
            "a large frame is simultaneously free and tracked".to_string()
        });
        report.check(c, free.iter().all(|lf| lf.raw() < self.total), || {
            format!("a frame number exceeds the pool size ({} frames)", self.total)
        });
        let mut app_frames = 0;
        for (lf, state) in self.tracked() {
            let used = state.owners.iter().filter(|o| o.is_some()).count() as u16;
            let app_used =
                state.owners.iter().filter(|o| o.is_some_and(|a| a != FRAG_OWNER)).count() as u16;
            report.check(c, state.owners.len() as u64 == BASE_PAGES_PER_LARGE_PAGE, || {
                format!(
                    "{lf} tracks {} base frames, expected {}",
                    state.owners.len(),
                    BASE_PAGES_PER_LARGE_PAGE
                )
            });
            report.check(c, state.used == used, || {
                format!("{lf} caches used={} but {} owners are set", state.used, used)
            });
            report.check(c, state.app_used == app_used, || {
                format!(
                    "{lf} caches app_used={} but {} app owners are set",
                    state.app_used, app_used
                )
            });
            if app_used > 0 {
                app_frames += 1;
            }
            report.check(c, state.mapped.len() as u64 == BASE_PAGES_PER_LARGE_PAGE, || {
                format!(
                    "{lf} tracks {} mappings, expected {}",
                    state.mapped.len(),
                    BASE_PAGES_PER_LARGE_PAGE
                )
            });
            for i in 0..BASE_PAGES_PER_LARGE_PAGE {
                report.check(c, state.mapping(i).is_none() || state.owner(i).is_some(), || {
                    format!("{lf} base frame {i} is mapped but unallocated")
                });
                report.check(c, !state.is_dirty(i) || state.owner(i).is_some(), || {
                    format!("{lf} base frame {i} is dirty but unallocated")
                });
            }
            report.check(c, state.last_use <= self.use_clock, || {
                format!(
                    "{lf} last_use {} is ahead of the pool clock {}",
                    state.last_use, self.use_clock
                )
            });
        }
        report.check(c, self.app_frames == app_frames, || {
            format!(
                "pool caches app_frames={} but {} frames hold app data",
                self.app_frames, app_frames
            )
        });
        report.check(c, self.peak_app_frames >= self.app_frames, || {
            format!("peak app frames {} below current {}", self.peak_app_frames, self.app_frames)
        });
        report.check(c, self.peak_tracked >= self.tracked, || {
            format!("peak tracked {} below current {}", self.peak_tracked, self.tracked)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sim_core::SimRng;

    fn pool(frames: u64) -> FramePool {
        FramePool::new(frames * LARGE_PAGE_SIZE, 6)
    }

    #[test]
    fn frames_hand_out_in_ascending_order() {
        let mut p = pool(4);
        assert_eq!(p.take_free_frame(), Some(LargeFrameNum(0)));
        assert_eq!(p.take_free_frame(), Some(LargeFrameNum(1)));
        assert_eq!(p.free_frames(), 2);
    }

    #[test]
    fn pool_exhausts() {
        let mut p = pool(2);
        assert!(p.take_free_frame().is_some());
        assert!(p.take_free_frame().is_some());
        assert_eq!(p.take_free_frame(), None);
    }

    #[test]
    fn ownership_tracking() {
        let mut p = pool(2);
        let lf = p.take_free_frame().unwrap();
        p.set_owner(lf.base_frame(3), Some(AppId(1)));
        p.set_owner(lf.base_frame(4), Some(AppId(1)));
        assert_eq!(p.state(lf).used(), 2);
        assert!(p.state(lf).single_owner(AppId(1)));
        assert!(!p.state(lf).single_owner(AppId(2)));
        assert_eq!(p.owner(lf.base_frame(3)), Some(AppId(1)));

        p.set_owner(lf.base_frame(3), None);
        assert_eq!(p.state(lf).used(), 1);
        assert_eq!(p.allocated_base_frames(), 1);
    }

    #[test]
    fn release_requires_empty() {
        let mut p = pool(2);
        let lf = p.take_free_frame().unwrap();
        p.set_owner(lf.base_frame(0), Some(AppId(0)));
        p.set_owner(lf.base_frame(0), None);
        p.release_frame(lf);
        assert_eq!(p.free_frames(), 2);
    }

    #[test]
    #[should_panic(expected = "allocated base pages")]
    fn release_nonempty_panics() {
        let mut p = pool(2);
        let lf = p.take_free_frame().unwrap();
        p.set_owner(lf.base_frame(0), Some(AppId(0)));
        p.release_frame(lf);
    }

    #[test]
    fn full_and_empty_predicates() {
        let mut p = pool(1);
        let lf = p.take_free_frame().unwrap();
        assert!(p.state(lf).is_empty());
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            p.set_owner(lf.base_frame(i), Some(AppId(0)));
        }
        assert!(p.state(lf).is_full());
        assert_eq!(p.state(lf).holes().count(), 0);
    }

    #[test]
    fn reserved_bytes_counts_tracked_frames() {
        let mut p = pool(8);
        let _a = p.take_free_frame().unwrap();
        let _b = p.take_free_frame().unwrap();
        assert_eq!(p.reserved_bytes(), 2 * LARGE_PAGE_SIZE);
    }

    #[test]
    fn pre_fragment_injects_requested_amounts() {
        let mut p = pool(100);
        let mut rng = SimRng::from_seed(1);
        let report = p.pre_fragment(0.5, 0.25, &mut rng);
        assert_eq!(report.requested_frames, 50);
        assert_eq!(report.fragmented_frames, 50);
        assert_eq!(report.injected_pages, 50 * 128);
        assert_eq!(report.shortfall(), 0);
        // Fragmented frames left the free list.
        assert_eq!(p.free_frames(), 50);
        // All injected pages belong to the pseudo-owner.
        let frag_frames =
            p.tracked().filter(|(_, s)| s.allocated().any(|(_, o)| o == FRAG_OWNER)).count();
        assert_eq!(frag_frames, 50);
    }

    #[test]
    fn pre_fragment_full_index_empties_free_list() {
        let mut p = pool(10);
        let mut rng = SimRng::from_seed(2);
        p.pre_fragment(1.0, 0.5, &mut rng);
        assert_eq!(p.free_frames(), 0);
    }

    #[test]
    fn pre_fragment_reports_shortfall_when_free_list_is_short() {
        let mut p = pool(10);
        // Occupy 6 frames so only 4 remain free; asking for 80% of the
        // pool (8 frames) can only be half satisfied.
        for _ in 0..6 {
            p.take_free_frame().unwrap();
        }
        let mut rng = SimRng::from_seed(3);
        let report = p.pre_fragment(0.8, 0.5, &mut rng);
        assert_eq!(report.requested_frames, 8);
        assert_eq!(report.fragmented_frames, 4);
        assert_eq!(report.shortfall(), 4);
        assert_eq!(report.injected_pages, 4 * 256);
        assert_eq!(p.free_frames(), 0);
    }

    #[test]
    fn note_use_orders_eviction_candidates_by_recency() {
        let mut p = pool(4);
        let a = p.take_free_frame().unwrap();
        let b = p.take_free_frame().unwrap();
        let c = p.take_free_frame().unwrap();
        for (lf, vpn) in [(a, 100), (b, 200), (c, 300)] {
            p.set_owner(lf.base_frame(0), Some(AppId(1)));
            p.set_mapping(lf.base_frame(0), VirtPageNum(vpn));
        }
        // Touch b, then a; c is never touched (last_use 0 = coldest).
        p.note_use(b.base_frame(0), false);
        p.note_use(a.base_frame(0), false);
        assert_eq!(p.eviction_candidates(), vec![c, b, a]);
        // Re-touching c makes it the hottest.
        p.note_use(c.base_frame(0), false);
        assert_eq!(p.eviction_candidates(), vec![b, a, c]);
    }

    #[test]
    fn eviction_candidates_skip_unmapped_and_fragmented_frames() {
        let mut p = pool(4);
        let clean = p.take_free_frame().unwrap();
        p.set_owner(clean.base_frame(0), Some(AppId(1)));
        p.set_mapping(clean.base_frame(0), VirtPageNum(1));
        // Allocated but unmapped: evicting it could not tear down a
        // translation, so it is not a candidate.
        let unmapped = p.take_free_frame().unwrap();
        p.set_owner(unmapped.base_frame(0), Some(AppId(1)));
        // Fragmentation-owned data is never evicted.
        let frag = p.take_free_frame().unwrap();
        p.set_owner(frag.base_frame(0), Some(FRAG_OWNER));
        // Reserved-but-empty frames have nothing to evict.
        let _empty = p.take_free_frame().unwrap();
        assert_eq!(p.eviction_candidates(), vec![clean]);
    }

    #[test]
    fn dirty_bits_set_on_store_and_clear_on_free() {
        let mut p = pool(2);
        let lf = p.take_free_frame().unwrap();
        let pfn = lf.base_frame(77);
        p.set_owner(pfn, Some(AppId(1)));
        p.set_mapping(pfn, VirtPageNum(42));
        p.note_use(pfn, false);
        assert!(!p.is_dirty(pfn));
        p.note_use(pfn, true);
        assert!(p.is_dirty(pfn));
        assert_eq!(p.state(lf).dirty_pages(), 1);
        // Freeing the slot clears both the mapping and the dirty bit.
        p.set_owner(pfn, None);
        assert!(!p.is_dirty(pfn));
        assert_eq!(p.mapping(pfn), None);
    }

    #[test]
    fn stores_to_unallocated_slots_do_not_dirty() {
        let mut p = pool(2);
        let lf = p.take_free_frame().unwrap();
        p.note_use(lf.base_frame(0), true);
        assert!(!p.is_dirty(lf.base_frame(0)));
        assert_eq!(p.state(lf).dirty_pages(), 0);
    }

    #[test]
    fn residents_report_owner_and_mapping() {
        let mut p = pool(2);
        let lf = p.take_free_frame().unwrap();
        p.set_owner(lf.base_frame(3), Some(AppId(1)));
        p.set_mapping(lf.base_frame(3), VirtPageNum(9));
        p.set_owner(lf.base_frame(5), Some(AppId(2)));
        assert_eq!(p.residents(lf), vec![(lf.base_frame(3), AppId(1), VirtPageNum(9))]);
        assert_eq!(p.mapping(lf.base_frame(3)), Some(VirtPageNum(9)));
    }

    #[test]
    fn sparse_frame_indices_track_independently() {
        // Touch frames far apart in the index space; the flat table must
        // keep them independent and iterate them in ascending order.
        let mut p = pool(1024);
        p.set_owner(LargeFrameNum(1000).base_frame(7), Some(AppId(2)));
        p.set_owner(LargeFrameNum(3).base_frame(0), Some(AppId(1)));
        p.set_owner(LargeFrameNum(512).base_frame(511), Some(AppId(1)));
        let tracked: Vec<LargeFrameNum> = p.tracked().map(|(lf, _)| lf).collect();
        assert_eq!(tracked, vec![LargeFrameNum(3), LargeFrameNum(512), LargeFrameNum(1000)]);
        assert_eq!(p.owner(LargeFrameNum(1000).base_frame(7)), Some(AppId(2)));
        assert_eq!(p.owner(LargeFrameNum(512).base_frame(7)), None);
        assert_eq!(p.reserved_bytes(), 3 * LARGE_PAGE_SIZE);
        assert_eq!(p.allocated_base_frames(), 3);
    }

    #[test]
    fn dealloc_then_retouch_reuses_slot() {
        let mut p = pool(4);
        let lf = p.take_free_frame().unwrap();
        p.set_owner(lf.base_frame(5), Some(AppId(0)));
        p.set_owner(lf.base_frame(5), None);
        p.release_frame(lf);
        assert_eq!(p.reserved_bytes(), 0);
        assert_eq!(p.free_frames(), 4);
        // Re-taking the same frame must start from a clean state and
        // count it as tracked exactly once.
        let again = p.take_free_frame().unwrap();
        assert_eq!(again, lf);
        assert!(p.state(again).is_empty());
        p.set_owner(again.base_frame(9), Some(AppId(1)));
        assert_eq!(p.state(again).used(), 1);
        assert_eq!(p.reserved_bytes(), LARGE_PAGE_SIZE);
        // Peak reservation reflects both generations, not a double count.
        assert_eq!(p.peak_reserved_bytes(), LARGE_PAGE_SIZE);
    }

    #[test]
    fn channel_assignment_is_stable() {
        let p = pool(12);
        assert_eq!(p.channel_of(LargeFrameNum(0)), 0);
        assert_eq!(p.channel_of(LargeFrameNum(7)), 1);
    }
}
