//! Page placement across a multi-GPU fleet.
//!
//! When the simulated machine has more than one GPU, every large-page
//! region of every address space *lives somewhere*: exactly one device
//! owns its frames, and a warp access from another device pays a remote
//! traversal over the inter-GPU interconnect. [`PlacementMap`] tracks
//! that ownership at large-page (2 MB) granularity and implements the
//! three classic placement policies the multi-GPU literature (MGSim /
//! MGMark) evaluates:
//!
//! * **first-touch** — a region is owned by the GPU that faults it in,
//!   and never moves;
//! * **replicate-read-only** — on top of first-touch, a region that has
//!   never been written may be copied to a reading remote GPU; the first
//!   store invalidates every replica and poisons the region against
//!   future replication;
//! * **migrate-on-threshold** — on top of first-touch, a per-(region,
//!   GPU) remote-access counter migrates the region to a remote reader
//!   once it has paid exactly `threshold` remote accesses.
//!
//! The map is policy bookkeeping only: it decides *what* happens
//! ([`PlacementOutcome`]) and counts it, while the simulator charges the
//! interconnect wire time and the `remote`/`migrate` stall buckets.
//! Ownership is unique by construction — a region has one owner and
//! replicas are explicit read-only copies — which is the invariant the
//! conformance fuzzer's residency oracle re-derives from the access
//! stream.

use mosaic_vm::{AppId, LargePageNum, LARGE_PAGE_SIZE};
use std::collections::BTreeMap;

/// Upper bound on fleet size the placement bitmasks support.
pub const MAX_GPUS: usize = 8;

/// How a multi-GPU fleet places (and re-places) pages across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Own where first touched; never move.
    #[default]
    FirstTouch,
    /// First-touch, plus read-only regions replicate to remote readers.
    ReplicateReadOnly,
    /// First-touch, plus a region migrates to a remote GPU once that GPU
    /// has performed exactly `threshold` remote accesses to it.
    MigrateOnThreshold {
        /// Remote accesses (from one GPU) that trigger the migration.
        threshold: u32,
    },
}

impl PlacementPolicy {
    /// Short label for reports and config axes.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::FirstTouch => "first-touch",
            PlacementPolicy::ReplicateReadOnly => "replicate-ro",
            PlacementPolicy::MigrateOnThreshold { .. } => "migrate",
        }
    }
}

/// What one access decided, and what the simulator must charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// The region is resident on the accessing GPU (owner or replica).
    Local,
    /// The access crosses the interconnect to `owner`'s DRAM.
    Remote {
        /// GPU whose memory services the access.
        owner: usize,
    },
    /// The threshold fired: the region's 2 MB move from `from` to the
    /// accessing GPU (which now owns it), and the access completes
    /// locally behind the migration.
    Migrate {
        /// Previous owner the bytes leave.
        from: usize,
    },
    /// A read-only replica of the region's 2 MB is copied from `from`
    /// to the accessing GPU; this and future reads are local.
    Replicate {
        /// Owner the replica is copied from.
        from: usize,
    },
}

/// Per-region placement state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Home {
    /// The owning GPU.
    owner: usize,
    /// Bitmask of GPUs holding a read-only replica (owner bit unset; the
    /// owner is resident by definition).
    replicas: u8,
    /// Whether the region has ever been stored to — replication is then
    /// off forever (the first store also dropped any replicas).
    written: bool,
    /// Per-GPU remote-access counters for `migrate-on-threshold`.
    remote: [u32; MAX_GPUS],
}

/// Placement accounting, folded into the fleet stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Warp accesses serviced by a remote GPU's memory.
    pub remote_accesses: u64,
    /// Regions migrated between devices.
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub migrated_bytes: u64,
    /// Read-only replicas created.
    pub replications: u64,
    /// Bytes copied by replications.
    pub replicated_bytes: u64,
    /// Replicas invalidated by stores.
    pub replica_invalidations: u64,
}

/// Large-page-granular frame ownership across a fleet.
#[derive(Debug)]
pub struct PlacementMap {
    gpus: usize,
    policy: PlacementPolicy,
    homes: BTreeMap<(AppId, LargePageNum), Home>,
    stats: PlacementStats,
}

impl PlacementMap {
    /// An empty map for a fleet of `gpus` devices.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero or exceeds [`MAX_GPUS`].
    pub fn new(gpus: usize, policy: PlacementPolicy) -> Self {
        assert!((1..=MAX_GPUS).contains(&gpus), "fleet size {gpus} out of range 1..={MAX_GPUS}");
        PlacementMap { gpus, policy, homes: BTreeMap::new(), stats: PlacementStats::default() }
    }

    /// Fleet size this map serves.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Accounting so far.
    pub fn stats(&self) -> &PlacementStats {
        &self.stats
    }

    /// The GPU owning `(asid, lpn)`, if the region has been placed.
    pub fn owner(&self, asid: AppId, lpn: LargePageNum) -> Option<usize> {
        self.homes.get(&(asid, lpn)).map(|h| h.owner)
    }

    /// The GPUs holding a read-only replica of `(asid, lpn)` (never
    /// includes the owner).
    pub fn replicas(&self, asid: AppId, lpn: LargePageNum) -> Vec<usize> {
        match self.homes.get(&(asid, lpn)) {
            Some(h) => (0..self.gpus).filter(|&g| h.replicas & (1 << g) != 0).collect(),
            None => Vec::new(),
        }
    }

    /// Number of regions currently placed.
    pub fn regions(&self) -> usize {
        self.homes.len()
    }

    /// Every placed region with its owning device, in key order —
    /// the residency sweep the system audit walks.
    pub fn placed(&self) -> impl Iterator<Item = (AppId, LargePageNum, usize)> + '_ {
        self.homes.iter().map(|(&(asid, lpn), h)| (asid, lpn, h.owner))
    }

    /// Resolves one warp access from `gpu` to `(asid, lpn)`, updating
    /// ownership, replicas, and counters per the policy. A single-GPU
    /// fleet always resolves [`PlacementOutcome::Local`].
    pub fn access(
        &mut self,
        asid: AppId,
        lpn: LargePageNum,
        gpu: usize,
        store: bool,
    ) -> PlacementOutcome {
        debug_assert!(gpu < self.gpus, "GPU {gpu} out of range for a {}-GPU fleet", self.gpus);
        let home = self.homes.entry((asid, lpn)).or_insert(Home {
            // First touch: the faulting GPU owns the region.
            owner: gpu,
            replicas: 0,
            written: false,
            remote: [0; MAX_GPUS],
        });
        if store {
            home.written = true;
            if home.replicas != 0 {
                // Invalidate every replica: a written region is resident
                // on its owner only.
                self.stats.replica_invalidations += u64::from(home.replicas.count_ones());
                home.replicas = 0;
            }
        }
        if home.owner == gpu {
            return PlacementOutcome::Local;
        }
        if !store && home.replicas & (1 << gpu) != 0 {
            return PlacementOutcome::Local;
        }
        self.stats.remote_accesses += 1;
        match self.policy {
            PlacementPolicy::MigrateOnThreshold { threshold } => {
                home.remote[gpu] += 1;
                if home.remote[gpu] == threshold.max(1) {
                    let from = home.owner;
                    home.owner = gpu;
                    home.remote = [0; MAX_GPUS];
                    if home.replicas != 0 {
                        self.stats.replica_invalidations += u64::from(home.replicas.count_ones());
                        home.replicas = 0;
                    }
                    self.stats.migrations += 1;
                    self.stats.migrated_bytes += LARGE_PAGE_SIZE;
                    return PlacementOutcome::Migrate { from };
                }
                PlacementOutcome::Remote { owner: home.owner }
            }
            PlacementPolicy::ReplicateReadOnly if !store && !home.written => {
                home.replicas |= 1 << gpu;
                self.stats.replications += 1;
                self.stats.replicated_bytes += LARGE_PAGE_SIZE;
                PlacementOutcome::Replicate { from: home.owner }
            }
            _ => PlacementOutcome::Remote { owner: home.owner },
        }
    }

    /// Forgets the placement of `(asid, lpn)` — the region was
    /// deallocated and its frames freed. A later access first-touches it
    /// afresh.
    pub fn remove(&mut self, asid: AppId, lpn: LargePageNum) {
        self.homes.remove(&(asid, lpn));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AppId = AppId(1);

    fn lpn(n: u64) -> LargePageNum {
        LargePageNum(n)
    }

    #[test]
    fn first_touch_places_on_the_faulting_gpu_forever() {
        let mut map = PlacementMap::new(4, PlacementPolicy::FirstTouch);
        assert_eq!(map.access(A, lpn(7), 2, false), PlacementOutcome::Local);
        assert_eq!(map.owner(A, lpn(7)), Some(2));
        // Any number of accesses from elsewhere stay remote.
        for _ in 0..100 {
            assert_eq!(map.access(A, lpn(7), 0, true), PlacementOutcome::Remote { owner: 2 });
        }
        assert_eq!(map.owner(A, lpn(7)), Some(2), "first-touch never moves");
        assert_eq!(map.stats().remote_accesses, 100);
        assert_eq!(map.stats().migrations, 0);
        assert_eq!(map.stats().replications, 0);
    }

    #[test]
    fn replicate_read_only_copies_once_then_hits_locally() {
        let mut map = PlacementMap::new(2, PlacementPolicy::ReplicateReadOnly);
        assert_eq!(map.access(A, lpn(0), 0, false), PlacementOutcome::Local);
        assert_eq!(map.access(A, lpn(0), 1, false), PlacementOutcome::Replicate { from: 0 });
        assert_eq!(map.replicas(A, lpn(0)), vec![1]);
        // The replica now services reads locally.
        assert_eq!(map.access(A, lpn(0), 1, false), PlacementOutcome::Local);
        assert_eq!(map.stats().replications, 1);
        assert_eq!(map.stats().replicated_bytes, LARGE_PAGE_SIZE);
    }

    #[test]
    fn a_store_invalidates_replicas_and_poisons_the_region() {
        let mut map = PlacementMap::new(2, PlacementPolicy::ReplicateReadOnly);
        map.access(A, lpn(0), 0, false);
        map.access(A, lpn(0), 1, false); // replica on GPU 1
                                         // A store from the owner drops the replica...
        assert_eq!(map.access(A, lpn(0), 0, true), PlacementOutcome::Local);
        assert_eq!(map.replicas(A, lpn(0)), Vec::<usize>::new());
        assert_eq!(map.stats().replica_invalidations, 1);
        // ...and the region never replicates again.
        assert_eq!(map.access(A, lpn(0), 1, false), PlacementOutcome::Remote { owner: 0 });
        assert_eq!(map.access(A, lpn(0), 1, false), PlacementOutcome::Remote { owner: 0 });
        assert_eq!(map.stats().replications, 1, "no replication after a store, ever");
    }

    #[test]
    fn stores_never_replicate() {
        let mut map = PlacementMap::new(2, PlacementPolicy::ReplicateReadOnly);
        map.access(A, lpn(3), 0, false);
        assert_eq!(map.access(A, lpn(3), 1, true), PlacementOutcome::Remote { owner: 0 });
        assert_eq!(map.stats().replications, 0);
    }

    #[test]
    fn migrate_fires_exactly_at_the_threshold() {
        let mut map = PlacementMap::new(2, PlacementPolicy::MigrateOnThreshold { threshold: 3 });
        map.access(A, lpn(5), 0, false);
        // Two remote accesses stay remote; the third migrates.
        assert_eq!(map.access(A, lpn(5), 1, false), PlacementOutcome::Remote { owner: 0 });
        assert_eq!(map.access(A, lpn(5), 1, false), PlacementOutcome::Remote { owner: 0 });
        assert_eq!(map.access(A, lpn(5), 1, false), PlacementOutcome::Migrate { from: 0 });
        assert_eq!(map.owner(A, lpn(5)), Some(1));
        assert_eq!(map.access(A, lpn(5), 1, false), PlacementOutcome::Local);
        assert_eq!(map.stats().migrations, 1);
        assert_eq!(map.stats().migrated_bytes, LARGE_PAGE_SIZE, "2 MB accounted per migration");
        // Counters reset on migration: the old owner must now pay the
        // full threshold to pull it back.
        assert_eq!(map.access(A, lpn(5), 0, false), PlacementOutcome::Remote { owner: 1 });
        assert_eq!(map.access(A, lpn(5), 0, false), PlacementOutcome::Remote { owner: 1 });
        assert_eq!(map.access(A, lpn(5), 0, false), PlacementOutcome::Migrate { from: 1 });
    }

    #[test]
    fn single_gpu_fleet_is_always_local() {
        let mut map = PlacementMap::new(1, PlacementPolicy::MigrateOnThreshold { threshold: 1 });
        for i in 0..10 {
            assert_eq!(map.access(A, lpn(i), 0, i % 2 == 0), PlacementOutcome::Local);
        }
        assert_eq!(map.stats(), &PlacementStats::default());
    }

    #[test]
    fn removal_forgets_ownership() {
        let mut map = PlacementMap::new(2, PlacementPolicy::FirstTouch);
        map.access(A, lpn(9), 1, false);
        map.remove(A, lpn(9));
        assert_eq!(map.owner(A, lpn(9)), None);
        // Next toucher becomes the new first-touch owner.
        assert_eq!(map.access(A, lpn(9), 0, false), PlacementOutcome::Local);
        assert_eq!(map.owner(A, lpn(9)), Some(0));
    }

    #[test]
    fn ownership_is_unique_by_construction() {
        let mut map = PlacementMap::new(4, PlacementPolicy::MigrateOnThreshold { threshold: 2 });
        for step in 0u64..200 {
            let gpu = (step % 4) as usize;
            let region = lpn(step % 5);
            map.access(A, region, gpu, step % 7 == 0);
            // One owner per region; replicas never include the owner.
            for r in 0..5 {
                if let Some(owner) = map.owner(A, lpn(r)) {
                    assert!(!map.replicas(A, lpn(r)).contains(&owner));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_fleet_panics() {
        let _ = PlacementMap::new(MAX_GPUS + 1, PlacementPolicy::FirstTouch);
    }
}
