//! The `mosaic-bench` harness: the repo's benchmark trajectory point.
//!
//! Runs a fixed roster of scenarios — microbenches of the hot data
//! structures, a bounded figure-driver sweep, and a warm re-run of the
//! smoke campaign through the persistent run cache — and emits
//! `BENCH.json` with the median-of-N wall time per scenario. The
//! committed `BENCH.json` is the performance baseline; CI re-runs the
//! harness in a reduced configuration and fails when any scenario
//! regresses past its per-scenario `max_ratio` limit (`--check`).
//!
//! ```text
//! cargo run --release -p mosaic-bench                  # full samples, write BENCH.json
//! cargo run --release -p mosaic-bench -- --quick \
//!     --out target/bench-smoke.json --check BENCH.json # CI smoke + regression gate
//! cargo run --release -p mosaic-bench -- --list        # scenario roster
//! ```
//!
//! Scenario wall times are medians, each sample rebuilds its structures
//! from scratch, and every simulated run is seeded — so times vary only
//! with host load, never with simulated behavior. Each scenario carries
//! its own regression limit (schema v2): tight for long, stable
//! scenarios; looser where small absolute times make IO and scheduler
//! noise proportionally large. The limits stay loose enough for
//! shared-runner noise while still catching the accidental O(n^2) or
//! re-introduced allocation churn this harness exists to pin. Baselines
//! written by the v1 harness (no per-scenario limit) still check, at the
//! historical global 2x.

use mosaic_campaign::{Spec, Store};
use mosaic_core::{MemoryManager, MosaicConfig, MosaicManager};
use mosaic_experiments as exp;
use mosaic_experiments::Scope;
use mosaic_gpusim::{run_workload, ManagerKind, RunConfig, Topology};
use mosaic_sim_core::Cycle;
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PageTable, PageTableWalker, PhysAddr,
    PhysFrameNum, Tlb, TlbConfig, VirtPageNum,
};
use mosaic_workloads::{ScaleConfig, Workload};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// Samples per scenario (median reported). `--quick` halves the work for
/// CI; medians stay comparable because the per-sample workload is fixed.
const SAMPLES: usize = 5;
const QUICK_SAMPLES: usize = 2;

fn micro_tlb_lookup() {
    let mut tlb = Tlb::new(TlbConfig::paper_l1());
    for p in 0..64u64 {
        tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Base);
    }
    // Mix of repeated hits (last-translation-cache territory) and a
    // rotating working set that exercises the full associative probe.
    for i in 0..2_000_000u64 {
        let page = if i % 4 == 0 { i / 7 % 64 } else { i % 8 };
        black_box(tlb.lookup(AppId(0), VirtPageNum(page).addr()));
    }
}

fn micro_tlb_fill_evict() {
    let mut tlb = Tlb::new(TlbConfig::paper_l2());
    for page in 0..1_000_000u64 {
        black_box(tlb.fill(AppId(page as u16 % 3), VirtPageNum(page).addr(), PageSize::Base));
        black_box(tlb.lookup(AppId(page as u16 % 3), VirtPageNum(page.wrapping_sub(3)).addr()));
    }
}

fn micro_page_table_translate() {
    let mut pt = PageTable::new(AppId(0));
    // 16 regions, fully mapped; half coalesced.
    for r in 0..16u64 {
        let lpn = LargePageNum(r * 3);
        let lf = LargeFrameNum(r);
        for i in 0..512 {
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
        if r % 2 == 0 {
            pt.coalesce(lpn).unwrap();
        }
    }
    for i in 0..2_000_000u64 {
        let lpn = LargePageNum((i % 16) * 3);
        black_box(pt.translate(lpn.base_page(i % 512).addr()).ok());
        black_box(pt.walk_path(lpn.base_page((i + 7) % 512).addr()));
    }
}

fn micro_page_table_map_unmap() {
    let mut pt = PageTable::new(AppId(0));
    for round in 0..40u64 {
        for i in 0..8192u64 {
            pt.map_base(VirtPageNum(i), PhysFrameNum(i)).unwrap();
            black_box(pt.is_mapped(VirtPageNum(i)));
        }
        for i in 0..8192u64 {
            black_box(pt.unmap_base(VirtPageNum(i)));
        }
        black_box(round);
    }
}

fn micro_walker() {
    let mut walker = PageTableWalker::new(64);
    let path = [PhysAddr(0x1000), PhysAddr(0x2000), PhysAddr(0x3000), PhysAddr(0x4000)];
    let mut now = Cycle::ZERO;
    for i in 0..400_000u64 {
        // A rotating set of pages: some re-walks merge, most are fresh.
        let vpn = VirtPageNum(i % 97);
        black_box(walker.walk(now, AppId(0), vpn, path, |_, _, start| start + 40));
        now += 3;
    }
}

fn micro_manager_touch() {
    for _ in 0..12 {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(256 * 2 * 1024 * 1024));
        m.register_app(AppId(0));
        m.reserve(AppId(0), VirtPageNum(0), 16 * 512);
        for i in 0..16 * 512 {
            black_box(m.touch(AppId(0), VirtPageNum(i)).unwrap());
        }
        // Dealloc half of each chunk: splinter + CAC activity.
        for c in 0..16u64 {
            black_box(m.deallocate(AppId(0), VirtPageNum(c * 512), 300));
        }
    }
}

fn sweep_cfg() -> RunConfig {
    RunConfig::new(ManagerKind::mosaic()).with_scale(ScaleConfig {
        ws_divisor: 16,
        mem_ops_per_warp: 120,
        warps_per_sm: 6,
        phases: 2,
    })
}

fn sweep_run_workload() {
    // One multi-phase, multi-app shared run: the figure drivers' inner
    // loop, timed without the sweep executor around it.
    let w = Workload::from_names(&["MM", "GUPS", "HS"]);
    black_box(run_workload(&w, sweep_cfg()));
}

fn sweep_oversubscribed() {
    // The same inner loop under 2x memory oversubscription: the
    // demand-paging engine's eviction, write-back, and prefetch paths
    // dominate, which nothing else in the roster exercises.
    let w = Workload::from_names(&["MM", "GUPS", "HS"]);
    black_box(run_workload(&w, sweep_cfg().oversubscribed(2.0)));
}

fn scaling_sim_threads() {
    // The speculative sharded engine (DESIGN.md §12) at 4 workers on the
    // same inner loop as sweep/run_workload. The pair measures intra-run
    // scaling: on a multicore host this scenario should undercut
    // sweep/run_workload; on a single hardware thread it instead prices
    // the speculation overhead (journaling + rollback + thread scopes),
    // which the 2x gate keeps bounded either way.
    mosaic_gpusim::set_sim_threads(Some(4));
    let w = Workload::from_names(&["MM", "GUPS", "HS"]);
    black_box(run_workload(&w, sweep_cfg()));
    mosaic_gpusim::set_sim_threads(None);
}

fn scaling_multi_gpu() {
    // The same inner loop on a 2-GPU fleet: placement resolution on
    // every L1 miss, interconnect queueing, and migration payloads all
    // ride the shared serial path, which no single-GPU scenario prices.
    let w = Workload::from_names(&["MM", "GUPS", "HS"]);
    black_box(run_workload(&w, sweep_cfg().multi_gpu(2, Topology::FullyConnected)));
}

fn figure(run: fn(Scope) -> String) {
    // Single-threaded so wall times measure the simulator, not the
    // executor's scheduling; Smoke keeps the sweep bounded.
    exp::sweep::set_jobs(Some(1));
    black_box(run(Scope::Smoke));
    exp::sweep::set_jobs(None);
}

fn campaign_cached_rerun() {
    // Warm re-run of the smoke campaign through the persistent run
    // cache. The untimed warm-up call populates the store cold (real
    // simulation); every timed sample then re-runs the identical matrix
    // and must be served entirely from disk, so the recorded median is
    // the cached-replay cost the campaign engine promises (well under
    // a tenth of the cold time — see DESIGN.md §13).
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    let dir = DIR.get_or_init(|| {
        let d = std::env::temp_dir().join(format!("mosaic-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    });
    let spec = Spec::parse(include_str!("../../../campaigns/smoke.toml"))
        .expect("committed smoke campaign parses");
    let campaign = spec.expand();
    exp::sweep::set_cache(Some(Store::open(dir).expect("open bench run cache")));
    for point in &campaign.points {
        black_box(exp::sweep::run_workload_cached(&point.workload, point.cfg));
    }
    exp::sweep::set_cache(None);
}

/// One roster entry: a stable scenario name (the committed BENCH.json
/// and the CI gate key on it), the per-scenario regression limit
/// written into the baseline, and the body to time.
struct Scenario {
    name: &'static str,
    max_ratio: f64,
    run: fn(),
}

/// Per-scenario regression limits. Long simulator-bound scenarios get
/// the historical 2x; the tens-of-milliseconds microbenches are stable
/// enough for a tighter gate — except `page_table_map_unmap`, whose ~3 ms
/// absolute cost makes one scheduler preemption read as a 1.6x+ swing;
/// the cached re-run is sub-millisecond file IO, where page-cache and
/// scheduler noise are proportionally huge.
const MICRO_RATIO: f64 = 1.6;
const SWEEP_RATIO: f64 = 2.0;
const CACHED_RATIO: f64 = 4.0;

/// The scenario roster. Names are stable identifiers: the committed
/// BENCH.json and the CI gate key on them.
fn scenarios() -> Vec<Scenario> {
    let s = |name, max_ratio, run: fn()| Scenario { name, max_ratio, run };
    vec![
        s("micro/tlb_lookup", MICRO_RATIO, micro_tlb_lookup),
        s("micro/tlb_fill_evict", MICRO_RATIO, micro_tlb_fill_evict),
        s("micro/page_table_translate", MICRO_RATIO, micro_page_table_translate),
        s("micro/page_table_map_unmap", SWEEP_RATIO, micro_page_table_map_unmap),
        s("micro/walker", MICRO_RATIO, micro_walker),
        s("micro/manager_touch", MICRO_RATIO, micro_manager_touch),
        s("sweep/run_workload", SWEEP_RATIO, sweep_run_workload),
        s("sweep/oversubscribed", SWEEP_RATIO, sweep_oversubscribed),
        s("scaling/sim_threads", SWEEP_RATIO, scaling_sim_threads),
        s("scaling/multi_gpu", SWEEP_RATIO, scaling_multi_gpu),
        s("sweep/fig03", SWEEP_RATIO, || figure(|s| exp::fig03::run(s).to_string())),
        s("sweep/fig08", SWEEP_RATIO, || figure(|s| exp::fig08::run(s).to_string())),
        s("sweep/fig11", SWEEP_RATIO, || figure(|s| exp::fig11::run(s).to_string())),
        s("campaign/cached_rerun", CACHED_RATIO, campaign_cached_rerun),
    ]
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

struct Measurement {
    name: &'static str,
    max_ratio: f64,
    median_ms: f64,
    samples_ms: Vec<f64>,
}

fn run_scenarios(samples: usize, filter: &[String]) -> Vec<Measurement> {
    let mut out = Vec::new();
    for Scenario { name, max_ratio, run } in scenarios() {
        if !filter.is_empty() && !filter.iter().any(|f| name.contains(f.as_str())) {
            continue;
        }
        // One untimed warm-up (page faults, lazy init, branch history —
        // and for campaign/cached_rerun, the cold store population).
        run();
        let mut samples_ms = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            run();
            samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let median_ms = median(&mut samples_ms.clone());
        eprintln!("# {name:<28} median {median_ms:>10.2} ms over {samples} samples");
        out.push(Measurement { name, max_ratio, median_ms, samples_ms });
    }
    out
}

fn render_json(samples: usize, results: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"mosaic-bench/v2\",\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, m) in results.iter().enumerate() {
        let list = m.samples_ms.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", ");
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ms\": {:.3}, \"max_ratio\": {:.1}, \"samples_ms\": [{}]}}{}\n",
            m.name,
            m.median_ms,
            m.max_ratio,
            list,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One baseline row: scenario name, committed median, regression limit.
struct BaselineEntry {
    name: String,
    median_ms: f64,
    max_ratio: f64,
}

/// Parses one numeric field (`"tag": 12.3`) out of a scenario line.
fn parse_number(line: &str, name: &str, tag: &str) -> Result<Option<f64>, String> {
    let full = format!("\"{tag}\": ");
    let Some(pos) = line.find(&full) else { return Ok(None) };
    let after = &line[pos + full.len()..];
    let num_end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .ok_or_else(|| format!("{name}: unterminated {tag}"))?;
    let value: f64 =
        after[..num_end].parse().map_err(|e| format!("{name}: bad {tag} number: {e}"))?;
    Ok(Some(value))
}

/// Extracts the baseline entries from a BENCH.json document.
///
/// Deliberately schema-specific rather than a general JSON parser: the
/// harness is the only writer, so any deviation from the expected shape
/// *is* malformation and must fail the gate. Accepts both the current v2
/// schema (per-scenario `max_ratio`) and the original v1 schema, whose
/// entries all check at the historical global 2x limit.
fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    if !text.contains("\"schema\": \"mosaic-bench/v1\"")
        && !text.contains("\"schema\": \"mosaic-bench/v2\"")
    {
        return Err("missing or unknown \"schema\" marker".into());
    }
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("{\"name\": \"") {
        rest = &rest[pos + "{\"name\": \"".len()..];
        let name_end = rest.find('"').ok_or("unterminated scenario name")?;
        let name = rest[..name_end].to_string();
        // Each scenario is one line of the writer's output; confining the
        // field search to it keeps a missing max_ratio from silently
        // borrowing the next scenario's.
        let line =
            &rest[name_end..rest[name_end..].find('\n').map_or(rest.len(), |p| name_end + p)];
        let median_ms = parse_number(line, &name, "median_ms")?
            .ok_or_else(|| format!("{name}: no median_ms field"))?;
        if !median_ms.is_finite() || median_ms <= 0.0 {
            return Err(format!("{name}: median_ms {median_ms} is not a positive finite number"));
        }
        let max_ratio = parse_number(line, &name, "max_ratio")?.unwrap_or(2.0);
        if !max_ratio.is_finite() || max_ratio < 1.0 {
            return Err(format!("{name}: max_ratio {max_ratio} must be a finite number >= 1"));
        }
        out.push(BaselineEntry { name, median_ms, max_ratio });
        rest = &rest[name_end..];
    }
    if out.is_empty() {
        return Err("no scenarios found".into());
    }
    Ok(out)
}

/// Compares current medians to the committed baseline: any scenario more
/// than its baseline `max_ratio` slower fails. Scenarios present on only
/// one side are reported but tolerated (the roster may grow between
/// commits).
fn check_regressions(results: &[Measurement], baseline: &[BaselineEntry]) -> bool {
    let mut ok = true;
    for m in results {
        match baseline.iter().find(|b| b.name == m.name) {
            Some(b) => {
                let ratio = m.median_ms / b.median_ms;
                let verdict = if ratio > b.max_ratio {
                    ok = false;
                    "REGRESSION"
                } else {
                    "ok"
                };
                eprintln!(
                    "# check {:<28} {:>8.2} ms vs baseline {:>8.2} ms ({:>5.2}x, limit {:.1}x) {}",
                    m.name, m.median_ms, b.median_ms, ratio, b.max_ratio, verdict
                );
            }
            None => eprintln!("# check {:<28} no baseline entry (new scenario)", m.name),
        }
    }
    ok
}

fn main() {
    let mut samples = SAMPLES;
    let mut out_path: Option<String> = Some("BENCH.json".to_string());
    let mut check_path: Option<String> = None;
    let mut filter: Vec<String> = Vec::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => samples = QUICK_SAMPLES,
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--samples needs a positive integer"));
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--no-out" => out_path = None,
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--list" => list = true,
            other if other.starts_with('-') => panic!("unknown flag {other}"),
            other => filter.push(other.to_string()),
        }
    }
    if list {
        for s in scenarios() {
            println!("{}", s.name);
        }
        return;
    }
    assert!(samples >= 1, "need at least one sample");

    let results = run_scenarios(samples, &filter);
    assert!(!results.is_empty(), "scenario filter matched nothing");
    let json = render_json(samples, &results);
    if let Some(path) = &out_path {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("# wrote {path}");
    } else {
        print!("{json}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let baseline = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("# {path} is malformed: {e}");
                std::process::exit(1);
            }
        };
        if !check_regressions(&results, &baseline) {
            eprintln!("# benchmark regression gate FAILED (see above)");
            std::process::exit(1);
        }
        eprintln!("# benchmark regression gate passed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    fn m(name: &'static str, max_ratio: f64, median_ms: f64) -> Measurement {
        Measurement { name, max_ratio, median_ms, samples_ms: vec![median_ms] }
    }

    fn b(name: &str, median_ms: f64, max_ratio: f64) -> BaselineEntry {
        BaselineEntry { name: name.to_string(), median_ms, max_ratio }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let results = vec![
            Measurement {
                name: "micro/a",
                max_ratio: 1.6,
                median_ms: 1.5,
                samples_ms: vec![1.4, 1.5, 1.6],
            },
            Measurement {
                name: "sweep/b",
                max_ratio: 2.0,
                median_ms: 250.0,
                samples_ms: vec![250.0],
            },
        ];
        let json = render_json(3, &results);
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            (parsed[0].name.as_str(), parsed[0].median_ms, parsed[0].max_ratio),
            ("micro/a", 1.5, 1.6)
        );
        assert_eq!(
            (parsed[1].name.as_str(), parsed[1].median_ms, parsed[1].max_ratio),
            ("sweep/b", 250.0, 2.0)
        );
    }

    #[test]
    fn v1_baselines_check_at_the_historical_global_limit() {
        let v1 = "{\"schema\": \"mosaic-bench/v1\", \"scenarios\": [\n\
             {\"name\": \"micro/a\", \"median_ms\": 1.500, \"samples_ms\": [1.5]},\n\
             {\"name\": \"sweep/b\", \"median_ms\": 250.000, \"samples_ms\": [250.0]}]}";
        let parsed = parse_baseline(v1).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed.iter().all(|e| e.max_ratio == 2.0), "v1 entries default to 2x");
        assert_eq!(parsed[1].median_ms, 250.0);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"mosaic-bench/v1\"}").is_err());
        let bad_number = "{\"schema\": \"mosaic-bench/v1\", \"scenarios\": [\n\
             {\"name\": \"x\", \"median_ms\": -3.0, \"samples_ms\": []}]}";
        assert!(parse_baseline(bad_number).is_err());
        let bad_ratio = "{\"schema\": \"mosaic-bench/v2\", \"scenarios\": [\n\
             {\"name\": \"x\", \"median_ms\": 3.0, \"max_ratio\": 0.5, \"samples_ms\": []}]}";
        assert!(parse_baseline(bad_ratio).is_err(), "a limit below 1x would always fail");
    }

    #[test]
    fn regression_gate_trips_at_each_scenarios_own_limit() {
        let results = vec![m("micro/a", 1.6, 10.0)];
        assert!(check_regressions(&results, &[b("micro/a", 6.0, 2.0)]), "1.67x is within 2x");
        assert!(!check_regressions(&results, &[b("micro/a", 4.0, 2.0)]), "2.5x must fail");
        // The baseline's limit governs, not a global constant: the same
        // 1.67x ratio fails a 1.6x scenario...
        assert!(!check_regressions(&results, &[b("micro/a", 6.0, 1.6)]));
        // ...while 2.5x passes a loose 4x scenario.
        assert!(check_regressions(&results, &[b("micro/a", 4.0, 4.0)]));
        // Unknown scenarios are tolerated.
        assert!(check_regressions(&results, &[b("micro/other", 1.0, 2.0)]));
    }

    #[test]
    fn roster_limits_cover_every_scenario_family() {
        for s in scenarios() {
            let expected = if s.name == "micro/page_table_map_unmap" {
                // The documented exception: ~3 ms absolute, so one
                // scheduler preemption reads as a 1.6x+ swing.
                SWEEP_RATIO
            } else if s.name.starts_with("micro/") {
                MICRO_RATIO
            } else if s.name.starts_with("campaign/") {
                CACHED_RATIO
            } else {
                SWEEP_RATIO
            };
            assert_eq!(s.max_ratio, expected, "{} carries its family's limit", s.name);
        }
    }
}
