//! The figure/table regeneration harness: `cargo bench -p mosaic-bench
//! --bench figures` re-runs every experiment of the paper's evaluation
//! and prints the paper-formatted rows and series.
//!
//! Scope control (how much of the 235-workload evaluation is swept):
//!
//! ```text
//! cargo bench -p mosaic-bench --bench figures                       # default subset
//! MOSAIC_SCOPE=smoke cargo bench -p mosaic-bench --bench figures    # quick
//! MOSAIC_SCOPE=full  cargo bench -p mosaic-bench --bench figures    # complete suites
//! ```
//!
//! Individual figures: pass their names as arguments, e.g.
//! `cargo bench -p mosaic-bench --bench figures -- fig08 fig13`.

use mosaic_experiments as exp;
use mosaic_experiments::Scope;

fn main() {
    let scope = Scope::from_env();
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-')) // ignore cargo-bench flags like --bench
        .collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);
    eprintln!("# figure benches at scope {scope:?} (MOSAIC_SCOPE=smoke|default|full)");

    macro_rules! figure {
        ($name:literal, $run:expr) => {
            if want($name) {
                let t0 = std::time::Instant::now();
                let result = $run;
                println!("==================================================================");
                println!("{result}");
                eprintln!("# [{} regenerated in {:.1?}]", $name, t0.elapsed());
            }
        };
    }

    figure!("fig03", exp::fig03::run(scope));
    figure!("fig04", exp::fig04::run(scope));
    figure!("bloat", exp::bloat::run(scope));
    figure!("fig06", exp::fig06::run(scope));
    figure!("fig08", exp::fig08::run(scope));
    figure!("fig09", exp::fig09::run(scope));
    figure!("fig10", exp::fig10::run(scope));
    figure!("fig11", exp::fig11::run(scope));
    figure!("fig12", exp::fig12::run(scope));
    figure!("fig13", exp::fig13::run(scope));
    figure!("fig14", exp::fig14::run(scope));
    figure!("fig15", exp::fig15::run(scope));
    figure!("fig16", exp::fig16::run(scope));
    figure!("table2", exp::table2::run(scope));
    figure!("oversub", exp::oversub::run(scope));
    figure!("ablation_pwc", exp::ablations::pwc_vs_l2tlb(scope));
    figure!("ablation_walker", exp::ablations::walker_threads(scope));
    figure!("ablation_cac_threshold", exp::ablations::cac_threshold(scope));
    figure!("ablation_coalescers", exp::ablations::migrating_coalescer(scope));
}
