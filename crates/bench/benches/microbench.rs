//! Criterion microbenchmarks of the hot data structures: the memory
//! manager's allocation/coalescing path, TLB lookups, page-table
//! operations, and the timing-model primitives.
//!
//! These guard the *simulator's* throughput (a full-suite sweep performs
//! hundreds of millions of these operations) and document the relative
//! cost of Mosaic's metadata-only coalescing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mosaic_core::{MemoryManager, MosaicConfig, MosaicManager};
use mosaic_mem::{Cache, CacheConfig, Dram, DramConfig};
use mosaic_sim_core::Cycle;
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PageTable, PhysFrameNum, Tlb, TlbConfig,
    VirtAddr, VirtPageNum,
};

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("l1_lookup_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::paper_l1());
        tlb.fill(AppId(0), VirtAddr(0x1000), PageSize::Base);
        b.iter(|| black_box(tlb.lookup(AppId(0), VirtAddr(0x1000))));
    });
    g.bench_function("l2_lookup_miss", |b| {
        let mut tlb = Tlb::new(TlbConfig::paper_l2());
        b.iter(|| black_box(tlb.lookup(AppId(0), VirtAddr(0xdead_0000))));
    });
    g.bench_function("fill_evict_cycle", |b| {
        let mut tlb = Tlb::new(TlbConfig::paper_l1());
        let mut page = 0u64;
        b.iter(|| {
            page += 1;
            black_box(tlb.fill(AppId(0), VirtPageNum(page).addr(), PageSize::Base))
        });
    });
    g.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    g.bench_function("map_base", |b| {
        let mut pt = PageTable::new(AppId(0));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(pt.map_base(VirtPageNum(i), PhysFrameNum(i)).ok())
        });
    });
    g.bench_function("translate_base", |b| {
        let mut pt = PageTable::new(AppId(0));
        pt.map_base(VirtPageNum(7), PhysFrameNum(9)).unwrap();
        b.iter(|| black_box(pt.translate(VirtPageNum(7).addr())));
    });
    g.bench_function("coalesce_splinter_2mb", |b| {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(1);
        let lf = LargeFrameNum(2);
        for i in 0..512 {
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
        b.iter(|| {
            pt.coalesce(lpn).unwrap();
            pt.splinter(lpn);
        });
    });
    g.finish();
}

fn bench_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("mosaic_manager");
    // The demand-paging hot path: touch one page (allocation + mapping),
    // amortized over a whole chunk including its in-place coalesce.
    g.bench_function("touch_chunk_of_512_pages", |b| {
        b.iter_with_setup(
            || {
                let mut m =
                    MosaicManager::new(MosaicConfig::with_memory(256 * 2 * 1024 * 1024));
                m.register_app(AppId(0));
                m.reserve(AppId(0), VirtPageNum(0), 512);
                m
            },
            |mut m| {
                for i in 0..512 {
                    black_box(m.touch(AppId(0), VirtPageNum(i)).unwrap());
                }
                m
            },
        );
    });
    g.finish();
}

fn bench_timing_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing_models");
    g.bench_function("dram_access", |b| {
        let mut dram = Dram::new(DramConfig::paper());
        let mut t = Cycle::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            t = dram.access(t, addr);
            black_box(t)
        });
    });
    g.bench_function("cache_access", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l2_slice());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(128);
            black_box(cache.access(addr, false))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tlb, bench_page_table, bench_manager, bench_timing_models);
criterion_main!(benches);
