//! Microbenchmarks of the hot data structures: the memory manager's
//! allocation/coalescing path, TLB lookups, page-table operations, and
//! the timing-model primitives.
//!
//! These guard the *simulator's* throughput (a full-suite sweep performs
//! hundreds of millions of these operations) and document the relative
//! cost of Mosaic's metadata-only coalescing.
//!
//! The harness is hand-rolled (the workspace builds offline, so no
//! criterion): each benchmark is warmed up, then timed over enough
//! iterations to smooth scheduler noise, reporting ns/op over the best
//! of several samples.

use mosaic_core::{MemoryManager, MosaicConfig, MosaicManager};
use mosaic_mem::{Cache, CacheConfig, Dram, DramConfig};
use mosaic_sim_core::Cycle;
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PageTable, PhysFrameNum, Tlb, TlbConfig,
    VirtAddr, VirtPageNum,
};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: u32 = 5;
const WARMUP_ITERS: u64 = 10_000;
const TIMED_ITERS: u64 = 200_000;

/// Times `op` (called once per iteration) and prints the best ns/op
/// across samples.
fn bench(group: &str, name: &str, iters: u64, mut op: impl FnMut()) {
    for _ in 0..WARMUP_ITERS.min(iters) {
        op();
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    println!("{group:<16} {name:<28} {best:>12.1} ns/op");
}

fn bench_tlb() {
    let mut tlb = Tlb::new(TlbConfig::paper_l1());
    tlb.fill(AppId(0), VirtAddr(0x1000), PageSize::Base);
    bench("tlb", "l1_lookup_hit", TIMED_ITERS, || {
        black_box(tlb.lookup(AppId(0), VirtAddr(0x1000)));
    });

    let mut tlb = Tlb::new(TlbConfig::paper_l2());
    bench("tlb", "l2_lookup_miss", TIMED_ITERS, || {
        black_box(tlb.lookup(AppId(0), VirtAddr(0xdead_0000)));
    });

    let mut tlb = Tlb::new(TlbConfig::paper_l1());
    let mut page = 0u64;
    bench("tlb", "fill_evict_cycle", TIMED_ITERS, || {
        page += 1;
        black_box(tlb.fill(AppId(0), VirtPageNum(page).addr(), PageSize::Base));
    });
}

fn bench_page_table() {
    let mut pt = PageTable::new(AppId(0));
    let mut i = 0u64;
    bench("page_table", "map_base", TIMED_ITERS, || {
        i += 1;
        black_box(pt.map_base(VirtPageNum(i), PhysFrameNum(i)).ok());
    });

    let mut pt = PageTable::new(AppId(0));
    pt.map_base(VirtPageNum(7), PhysFrameNum(9)).unwrap();
    bench("page_table", "translate_base", TIMED_ITERS, || {
        black_box(pt.translate(VirtPageNum(7).addr()).ok());
    });

    let mut pt = PageTable::new(AppId(0));
    let lpn = LargePageNum(1);
    let lf = LargeFrameNum(2);
    for i in 0..512 {
        pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
    }
    bench("page_table", "coalesce_splinter_2mb", 50_000, || {
        pt.coalesce(lpn).unwrap();
        pt.splinter(lpn);
    });
}

fn bench_manager() {
    // The demand-paging hot path: touch one page (allocation + mapping),
    // amortized over a whole chunk including its in-place coalesce.
    bench("mosaic_manager", "touch_chunk_of_512_pages", 200, || {
        let mut m = MosaicManager::new(MosaicConfig::with_memory(256 * 2 * 1024 * 1024));
        m.register_app(AppId(0));
        m.reserve(AppId(0), VirtPageNum(0), 512);
        for i in 0..512 {
            black_box(m.touch(AppId(0), VirtPageNum(i)).unwrap());
        }
    });
}

fn bench_timing_models() {
    let mut dram = Dram::new(DramConfig::paper());
    let mut t = Cycle::ZERO;
    let mut addr = 0u64;
    bench("timing_models", "dram_access", TIMED_ITERS, || {
        addr = addr.wrapping_add(4096);
        t = dram.access(t, addr);
        black_box(t);
    });

    let mut cache = Cache::new(CacheConfig::paper_l2_slice());
    let mut addr = 0u64;
    bench("timing_models", "cache_access", TIMED_ITERS, || {
        addr = addr.wrapping_add(128);
        black_box(cache.access(addr, false));
    });
}

fn main() {
    println!("{:<16} {:<28} {:>12}", "group", "benchmark", "best");
    bench_tlb();
    bench_page_table();
    bench_manager();
    bench_timing_models();
}
