//! Property tests for the statistics primitives' merge algebra.
//!
//! The parallel sweep executor and the per-SM/per-phase accumulation
//! paths fold partial statistics with `merge`, in whatever grouping the
//! driver happens to use — so `merge` must behave like stream
//! concatenation: associative, commutative (for these order-insensitive
//! aggregates), and in agreement with recording the concatenated sample
//! stream into a single accumulator.

use mosaic_sim_core::{Histogram, Ratio, SimRng};

/// Random sample streams for one property-test case.
fn sample_streams(seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut rng = SimRng::from_seed(seed);
    let mut stream = |max_len: u64| {
        let len = rng.below(max_len + 1) as usize;
        (0..len)
            .map(|_| {
                // Mix tiny, mid-range, and huge samples so bucket indices,
                // zero handling, and the u128 sum all get exercised.
                match rng.below(4) {
                    0 => rng.below(3),
                    1 => rng.below(1 << 12),
                    2 => rng.below(1 << 40),
                    _ => u64::MAX - rng.below(1 << 20),
                }
            })
            .collect::<Vec<u64>>()
    };
    (stream(40), stream(40), stream(40))
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    h
}

fn ratio_of(samples: &[u64]) -> Ratio {
    let mut r = Ratio::default();
    for &s in samples {
        r.record(s % 2 == 0);
    }
    r
}

#[test]
fn histogram_merge_is_associative_commutative_and_matches_concatenation() {
    for seed in 0..64u64 {
        let (a, b, c) = sample_streams(seed);
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        assert_eq!(left, right, "associativity failed for seed {seed}");

        // a ⊔ b == b ⊔ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab, ba, "commutativity failed for seed {seed}");

        // Merged partials agree with one accumulator over the
        // concatenated stream — including the derived mean.
        let concat: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let whole = hist_of(&concat);
        assert_eq!(left, whole, "concatenation agreement failed for seed {seed}");
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.sum(), whole.sum());
        assert_eq!(left.mean().to_bits(), whole.mean().to_bits(), "seed {seed}");
        assert_eq!(
            left.buckets().collect::<Vec<_>>(),
            whole.buckets().collect::<Vec<_>>(),
            "seed {seed}"
        );

        // Merging an empty histogram is the identity.
        let mut with_empty = left.clone();
        with_empty.merge(&Histogram::default());
        assert_eq!(with_empty, left, "empty-merge identity failed for seed {seed}");
    }
}

#[test]
fn ratio_merge_is_associative_commutative_and_matches_concatenation() {
    for seed in 0..64u64 {
        let (a, b, c) = sample_streams(seed);
        let (ra, rb, rc) = (ratio_of(&a), ratio_of(&b), ratio_of(&c));

        let mut left = ra;
        left.merge(&rb);
        left.merge(&rc);
        let mut bc = rb;
        bc.merge(&rc);
        let mut right = ra;
        right.merge(&bc);
        assert_eq!(left, right, "associativity failed for seed {seed}");

        let mut ab = ra;
        ab.merge(&rb);
        let mut ba = rb;
        ba.merge(&ra);
        assert_eq!(ab, ba, "commutativity failed for seed {seed}");

        let concat: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let whole = ratio_of(&concat);
        assert_eq!(left, whole, "concatenation agreement failed for seed {seed}");
        assert_eq!(left.rate().to_bits(), whole.rate().to_bits(), "seed {seed}");

        let mut with_empty = left;
        with_empty.merge(&Ratio::default());
        assert_eq!(with_empty, left, "empty-merge identity failed for seed {seed}");
    }
}

#[test]
fn empty_aggregates_are_well_defined() {
    let h = Histogram::default();
    assert_eq!(h.mean(), 0.0, "empty histogram mean is 0.0, not NaN");
    assert!(h.mean().is_finite());
    assert_eq!(h.count(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    assert_eq!(h.buckets().count(), 0);

    let r = Ratio::default();
    assert_eq!(r.rate(), 1.0, "an empty TLB has not missed");
    assert!(r.rate().is_finite());
}
