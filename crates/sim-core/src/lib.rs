//! Simulation kernel for the Mosaic reproduction.
//!
//! This crate provides the time base, statistics, deterministic random
//! number generation, and contention-modeling primitives shared by every
//! other crate in the workspace:
//!
//! * [`Cycle`] and [`ClockDomain`] — the cycle-typed time base and
//!   frequency-domain conversions (the simulated GPU runs its cores at
//!   1020 MHz and its GDDR5 interface at 1674 MHz, and the PCIe model is
//!   specified in nanoseconds).
//! * [`stats`] — counters, ratios, and histograms that the memory hierarchy
//!   uses to report hit rates, latencies, and bandwidth.
//! * [`rng`] — seeded, forkable random number generation so that every
//!   experiment in the paper reproduction is bit-deterministic.
//! * [`queue`] — occupancy trackers and throughput ports used to model
//!   contended resources (TLB ports, page-walker slots, DRAM banks, the
//!   system I/O bus) without per-cycle queue simulation.
//! * [`audit`] — the runtime invariant auditor: every structural
//!   component implements [`AuditInvariants`] and the runner sweeps the
//!   whole system every N cycles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod clock;
pub mod queue;
pub mod rng;
pub mod stats;

pub use audit::{AuditInvariants, AuditReport, AuditViolation};
pub use clock::{ClockDomain, Cycle, Nanos};
pub use queue::{OccupancyPool, ThroughputPort};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, Ratio, StatSet};
