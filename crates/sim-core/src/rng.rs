//! Deterministic, forkable random number generation.
//!
//! Every source of randomness in the reproduction — workload address
//! streams, heterogeneous workload mixes, fragmentation injection — draws
//! from a [`SimRng`] seeded from the experiment configuration, so a given
//! configuration always reproduces the same simulation bit-for-bit.
//!
//! The generator is hand-rolled (xoshiro256** seeded through splitmix64)
//! rather than pulled from a crate: the simulator must build offline, and
//! owning the generator pins the exact stream across toolchain and
//! dependency upgrades — a determinism guarantee an external crate's
//! "same seed" cannot make across versions.

/// A seeded random number generator with deterministic forking.
///
/// Forking derives an independent child stream from a parent seed and a
/// label, so that adding a new consumer of randomness does not perturb the
/// streams observed by existing consumers (a property plain sequential
/// draws from one generator would not have).
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forks with different labels are independent but reproducible.
/// let mut wl = SimRng::from_seed(42).fork("workload", 0);
/// let mut frag = SimRng::from_seed(42).fork("fragmentation", 0);
/// assert_ne!(wl.next_u64(), frag.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

/// splitmix64 finalization step: expands a 64-bit seed into
/// well-distributed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        // Seed xoshiro256** state through splitmix64 as its authors
        // recommend; the state is never all-zero because splitmix64 is a
        // bijection of a counter sequence.
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { seed, state }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by a label and an
    /// index. The same `(seed, label, index)` triple always yields the same
    /// stream.
    pub fn fork(&self, label: &str, index: u64) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed and index via
        // splitmix64 finalization. Cheap, stable, and well-distributed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = self.seed ^ h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::from_seed(z)
    }

    /// Draws the next 64 random bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draws the next 32 random bits (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Debiased multiply-shift (Lemire): reject the short leading zone
        // so every residue is exactly equally likely.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= zone || zone == 0 {
                return hi;
            }
        }
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Picks an index in `[0, weights.len())` with probability
    /// proportional to its weight (zero-weight entries are never picked).
    ///
    /// # Panics
    ///
    /// Panics if the weights sum to zero (including an empty slice).
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weighted choice needs a positive total weight");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("below(total) is less than the sum of the weights")
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_reproducible_and_independent() {
        let root = SimRng::from_seed(99);
        let mut f1 = root.fork("alpha", 3);
        let mut f2 = root.fork("alpha", 3);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut g1 = root.fork("alpha", 4);
        let mut g2 = root.fork("beta", 3);
        let a = root.fork("alpha", 3).next_u64();
        assert_ne!(a, g1.next_u64());
        assert_ne!(a, g2.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::from_seed(5);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::from_seed(17);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = SimRng::from_seed(5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stream_is_pinned() {
        // The exact stream is part of the reproduction's contract: golden
        // values guard against accidental generator changes.
        let mut r = SimRng::from_seed(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x1578_0b2e_0c2e_c716,
                0x6104_d986_6d11_3a7e,
                0xae17_5332_39e4_99a1,
                0xecb8_ad47_03b3_60a1,
            ]
        );
    }

    #[test]
    fn weighted_respects_zero_and_proportions() {
        let mut r = SimRng::from_seed(23);
        let mut buckets = [0u32; 3];
        for _ in 0..9000 {
            buckets[r.weighted(&[1, 0, 2])] += 1;
        }
        assert_eq!(buckets[1], 0, "zero-weight entries are never picked");
        assert!((2500..3500).contains(&buckets[0]), "bucket 0 got {}", buckets[0]);
        assert!((5500..6500).contains(&buckets[2]), "bucket 2 got {}", buckets[2]);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_all_zero_panics() {
        let mut r = SimRng::from_seed(0);
        let _ = r.weighted(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn pick_empty_panics() {
        let mut r = SimRng::from_seed(0);
        let empty: [u8; 0] = [];
        let _ = r.pick(&empty);
    }
}
