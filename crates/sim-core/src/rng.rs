//! Deterministic, forkable random number generation.
//!
//! Every source of randomness in the reproduction — workload address
//! streams, heterogeneous workload mixes, fragmentation injection — draws
//! from a [`SimRng`] seeded from the experiment configuration, so a given
//! configuration always reproduces the same simulation bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random number generator with deterministic forking.
///
/// Forking derives an independent child stream from a parent seed and a
/// label, so that adding a new consumer of randomness does not perturb the
/// streams observed by existing consumers (a property plain sequential
/// draws from one generator would not have).
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::SimRng;
/// use rand::RngCore;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forks with different labels are independent but reproducible.
/// let mut wl = SimRng::from_seed(42).fork("workload", 0);
/// let mut frag = SimRng::from_seed(42).fork("fragmentation", 0);
/// assert_ne!(wl.next_u64(), frag.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng { seed, inner: StdRng::seed_from_u64(seed) }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by a label and an
    /// index. The same `(seed, label, index)` triple always yields the same
    /// stream.
    pub fn fork(&self, label: &str, index: u64) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed and index via
        // splitmix64 finalization. Cheap, stable, and well-distributed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = self.seed ^ h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::from_seed(z)
    }

    /// Draws a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_reproducible_and_independent() {
        let root = SimRng::from_seed(99);
        let mut f1 = root.fork("alpha", 3);
        let mut f2 = root.fork("alpha", 3);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut g1 = root.fork("alpha", 4);
        let mut g2 = root.fork("beta", 3);
        let a = root.fork("alpha", 3).next_u64();
        assert_ne!(a, g1.next_u64());
        assert_ne!(a, g2.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::from_seed(5);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn pick_empty_panics() {
        let mut r = SimRng::from_seed(0);
        let empty: [u8; 0] = [];
        let _ = r.pick(&empty);
    }
}
