//! Cycle-typed time base and clock-domain conversion.
//!
//! The simulator keeps one global time base in *core cycles* (the GPU shader
//! clock). Components whose timing is naturally expressed in another domain
//! — GDDR5 command timing, PCIe transfer latencies in nanoseconds — convert
//! through a [`ClockDomain`].

/// A point in simulated time, measured in cycles of some clock domain.
///
/// `Cycle` is an ordered, copyable newtype over `u64`. Arithmetic saturates
/// on subtraction (time never goes negative) and panics on addition overflow
/// in debug builds, like plain integer arithmetic.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + 55;
/// assert_eq!(end.as_u64(), 155);
/// assert_eq!(end - start, 55);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero cycle (simulation start).
    pub const ZERO: Cycle = Cycle(0);
    /// The largest representable cycle; used as an "infinitely far away"
    /// sentinel for events that are not scheduled.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two cycles.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two cycles.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Cycles elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl core::ops::Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl core::ops::AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl core::ops::Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl core::fmt::Display for Cycle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A duration in nanoseconds of simulated wall-clock time.
///
/// Used at the boundary between the cycle-driven GPU model and components
/// specified in real time (the PCIe bus, in-DRAM bulk copy latency).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanos(pub f64);

impl Nanos {
    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Nanos(us * 1_000.0)
    }

    /// Returns the duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl core::ops::Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

/// A clock domain with a fixed frequency, used to convert between cycles
/// and wall-clock time and between domains.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::{ClockDomain, Nanos};
///
/// // The paper's shader clock (Table 1).
/// let core = ClockDomain::from_mhz(1020.0);
/// // A 55 us PCIe far-fault (Section 3.2) costs ~56k shader cycles.
/// let cycles = core.cycles_for(Nanos::from_micros(55.0));
/// assert!((56_000f64 - cycles as f64).abs() < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_mhz: f64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "clock frequency must be positive, got {mhz}");
        ClockDomain { freq_mhz: mhz }
    }

    /// The frequency of this domain in MHz.
    #[inline]
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Duration of one cycle in nanoseconds.
    #[inline]
    pub fn cycle_time(&self) -> Nanos {
        Nanos(1_000.0 / self.freq_mhz)
    }

    /// Number of whole cycles (rounded up) needed to cover `duration`.
    #[inline]
    pub fn cycles_for(&self, duration: Nanos) -> u64 {
        (duration.0 * self.freq_mhz / 1_000.0).ceil().max(0.0) as u64
    }

    /// Wall-clock duration of `cycles` cycles in this domain.
    #[inline]
    pub fn duration_of(&self, cycles: u64) -> Nanos {
        Nanos(cycles as f64 * 1_000.0 / self.freq_mhz)
    }

    /// Converts a cycle count in this domain to the equivalent (rounded-up)
    /// count in `other`.
    ///
    /// Used to express GDDR5 command timing in shader cycles.
    #[inline]
    pub fn convert(&self, cycles: u64, other: &ClockDomain) -> u64 {
        other.cycles_for(self.duration_of(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_round_trips() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).as_u64(), 15);
        assert_eq!((c + 5) - c, 5);
        assert_eq!(c - (c + 5), 0, "subtraction saturates");
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn cycle_since_saturates() {
        let early = Cycle::new(5);
        let late = Cycle::new(30);
        assert_eq!(late.since(early), 25);
        assert_eq!(early.since(late), 0);
    }

    #[test]
    fn cycle_min_max() {
        let a = Cycle::new(3);
        let b = Cycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn clock_domain_conversion_is_consistent() {
        let core = ClockDomain::from_mhz(1020.0);
        let dram = ClockDomain::from_mhz(1674.0);
        // 1020 core cycles == 1 us == 1674 DRAM cycles.
        assert_eq!(core.cycles_for(Nanos::from_micros(1.0)), 1020);
        assert_eq!(core.convert(1020, &dram), 1674);
    }

    #[test]
    fn cycles_for_rounds_up() {
        let clk = ClockDomain::from_mhz(1000.0); // 1 ns per cycle
        assert_eq!(clk.cycles_for(Nanos(0.1)), 1);
        assert_eq!(clk.cycles_for(Nanos(2.0)), 2);
        assert_eq!(clk.cycles_for(Nanos(0.0)), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::from_mhz(0.0);
    }

    #[test]
    fn nanos_micros_round_trip() {
        let n = Nanos::from_micros(55.0);
        assert!((n.as_micros() - 55.0).abs() < 1e-9);
        assert!((n.0 - 55_000.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_display() {
        assert_eq!(Cycle::new(42).to_string(), "42cy");
    }
}
