//! Contention-modeling primitives.
//!
//! The simulator models contended resources — TLB ports, page-walker
//! threads, DRAM banks, the system I/O bus — with *occupancy tracking*
//! rather than per-cycle queue simulation: a resource remembers when each
//! of its slots next becomes free, and a request acquires the earliest
//! free slot at or after its arrival time. This yields the same queueing
//! delays as an explicit FIFO under in-order service while being far
//! cheaper to simulate, which is what makes sweeping the paper's 235
//! workloads tractable.

use crate::clock::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of `n` identical slots, each serving one request at a time.
///
/// Models resources with finite concurrency, such as the paper's
/// highly-threaded page-table walker (64 concurrent walks) or the MSHRs of
/// a cache.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::{Cycle, OccupancyPool};
///
/// // A 2-slot resource with 10-cycle service time.
/// let mut pool = OccupancyPool::new(2);
/// let a = pool.acquire(Cycle::new(0), 10); // starts at 0, done at 10
/// let b = pool.acquire(Cycle::new(0), 10); // starts at 0, done at 10
/// let c = pool.acquire(Cycle::new(0), 10); // queues: starts at 10
/// assert_eq!(a.start, Cycle::new(0));
/// assert_eq!(b.start, Cycle::new(0));
/// assert_eq!(c.start, Cycle::new(10));
/// assert_eq!(c.done, Cycle::new(20));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyPool {
    /// Min-heap of cycles at which each busy slot frees up; idle slots are
    /// represented implicitly by `idle` count.
    busy_until: BinaryHeap<Reverse<Cycle>>,
    slots: usize,
}

/// The scheduling decision returned by [`OccupancyPool::acquire`] and
/// [`ThroughputPort::acquire`]: when service starts and when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Cycle at which the request begins service.
    pub start: Cycle,
    /// Cycle at which the request completes service.
    pub done: Cycle,
}

impl Grant {
    /// Queueing delay experienced before service began.
    pub fn wait_since(&self, arrival: Cycle) -> u64 {
        self.start.since(arrival)
    }
}

impl OccupancyPool {
    /// Creates a pool with `slots` concurrent slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "an occupancy pool needs at least one slot");
        OccupancyPool { busy_until: BinaryHeap::new(), slots }
    }

    /// Number of slots in the pool.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of slots still busy at `now`.
    pub fn in_use(&mut self, now: Cycle) -> usize {
        self.drain_freed(now);
        self.busy_until.len()
    }

    /// Acquires a slot for a request arriving at `now` needing `service`
    /// cycles, returning when it starts and completes.
    pub fn acquire(&mut self, now: Cycle, service: u64) -> Grant {
        self.drain_freed(now);
        let start = if self.busy_until.len() < self.slots {
            now
        } else {
            // All slots busy: wait for the earliest one. A zero-slot pool
            // has nothing in flight to wait on and serves immediately.
            match self.busy_until.pop() {
                Some(Reverse(free_at)) => free_at.max(now),
                None => now,
            }
        };
        let done = start + service;
        self.busy_until.push(Reverse(done));
        start_done(start, done)
    }

    /// Earliest cycle at which a new request arriving at `now` could start.
    pub fn next_free(&mut self, now: Cycle) -> Cycle {
        self.drain_freed(now);
        if self.busy_until.len() < self.slots {
            now
        } else {
            self.busy_until.peek().map(|Reverse(c)| (*c).max(now)).unwrap_or(now)
        }
    }

    fn drain_freed(&mut self, now: Cycle) {
        while let Some(Reverse(free_at)) = self.busy_until.peek() {
            if *free_at <= now {
                self.busy_until.pop();
            } else {
                break;
            }
        }
    }
}

fn start_done(start: Cycle, done: Cycle) -> Grant {
    Grant { start, done }
}

/// A single-server resource that serializes requests, optionally with an
/// initiation interval shorter than the full service latency (pipelining).
///
/// Models the system I/O bus (fully serialized transfers) and cache/TLB
/// ports (new request each cycle, multi-cycle latency).
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::{Cycle, ThroughputPort};
///
/// // A pipelined port: one new request per cycle, 10-cycle latency.
/// let mut port = ThroughputPort::pipelined(10, 1);
/// let a = port.acquire(Cycle::new(0));
/// let b = port.acquire(Cycle::new(0));
/// assert_eq!(a.done, Cycle::new(10));
/// assert_eq!(b.start, Cycle::new(1)); // issues one cycle later
/// assert_eq!(b.done, Cycle::new(11));
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputPort {
    latency: u64,
    interval: u64,
    /// Whether the port holds for the whole (possibly request-specific)
    /// service time rather than the fixed initiation interval. Set by the
    /// constructor — a pipelined port whose interval happens to equal its
    /// latency must not behave as serialized.
    serialized: bool,
    next_issue: Cycle,
}

impl ThroughputPort {
    /// Creates a fully serialized port: the next request cannot start until
    /// the previous one finishes.
    pub fn serialized(latency: u64) -> Self {
        ThroughputPort {
            latency,
            interval: latency.max(1),
            serialized: true,
            next_issue: Cycle::ZERO,
        }
    }

    /// Creates a pipelined port that accepts a new request every
    /// `interval` cycles, each completing after `latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn pipelined(latency: u64, interval: u64) -> Self {
        assert!(interval > 0, "initiation interval must be non-zero");
        ThroughputPort { latency, interval, serialized: false, next_issue: Cycle::ZERO }
    }

    /// The per-request latency of this port.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Acquires the port for a request arriving at `now` using the port's
    /// configured latency.
    pub fn acquire(&mut self, now: Cycle) -> Grant {
        self.acquire_for(now, self.latency)
    }

    /// Acquires the port for a request with a custom service time (used by
    /// the I/O bus, where transfer time depends on size). The occupancy
    /// window equals the service time for serialized ports.
    pub fn acquire_for(&mut self, now: Cycle, service: u64) -> Grant {
        let start = self.next_issue.max(now);
        let occupy = if self.serialized {
            // Serialized port: hold for the whole service.
            service.max(1)
        } else {
            self.interval
        };
        self.next_issue = start + occupy;
        Grant { start, done: start + service }
    }

    /// Earliest cycle a request arriving at `now` could start.
    pub fn next_free(&self, now: Cycle) -> Cycle {
        self.next_issue.max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_parallel_until_full() {
        let mut p = OccupancyPool::new(3);
        for _ in 0..3 {
            let g = p.acquire(Cycle::new(5), 100);
            assert_eq!(g.start, Cycle::new(5));
        }
        let g = p.acquire(Cycle::new(5), 100);
        assert_eq!(g.start, Cycle::new(105));
        assert_eq!(g.wait_since(Cycle::new(5)), 100);
    }

    #[test]
    fn pool_frees_slots_over_time() {
        let mut p = OccupancyPool::new(1);
        let g1 = p.acquire(Cycle::new(0), 10);
        assert_eq!(g1.done, Cycle::new(10));
        // Arriving after the slot freed: no wait.
        let g2 = p.acquire(Cycle::new(50), 10);
        assert_eq!(g2.start, Cycle::new(50));
        assert_eq!(p.in_use(Cycle::new(55)), 1);
        assert_eq!(p.in_use(Cycle::new(60)), 0);
    }

    #[test]
    fn pool_next_free_matches_acquire() {
        let mut p = OccupancyPool::new(2);
        p.acquire(Cycle::new(0), 7);
        p.acquire(Cycle::new(0), 9);
        assert_eq!(p.next_free(Cycle::new(0)), Cycle::new(7));
        assert_eq!(p.next_free(Cycle::new(100)), Cycle::new(100));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_pool_panics() {
        let _ = OccupancyPool::new(0);
    }

    #[test]
    fn serialized_port_back_to_back() {
        let mut port = ThroughputPort::serialized(100);
        let a = port.acquire(Cycle::new(0));
        let b = port.acquire(Cycle::new(0));
        assert_eq!(a, Grant { start: Cycle::new(0), done: Cycle::new(100) });
        assert_eq!(b, Grant { start: Cycle::new(100), done: Cycle::new(200) });
    }

    #[test]
    fn serialized_port_variable_service() {
        let mut port = ThroughputPort::serialized(100);
        let a = port.acquire_for(Cycle::new(0), 30);
        let b = port.acquire_for(Cycle::new(0), 40);
        assert_eq!(a.done, Cycle::new(30));
        assert_eq!(b.start, Cycle::new(30));
        assert_eq!(b.done, Cycle::new(70));
    }

    #[test]
    fn pipelined_port_overlaps() {
        let mut port = ThroughputPort::pipelined(10, 2);
        let a = port.acquire(Cycle::new(0));
        let b = port.acquire(Cycle::new(0));
        let c = port.acquire(Cycle::new(0));
        assert_eq!(a.done, Cycle::new(10));
        assert_eq!(b.start, Cycle::new(2));
        assert_eq!(c.start, Cycle::new(4));
    }

    #[test]
    fn pipelined_port_with_interval_equal_to_latency_stays_pipelined() {
        // Regression: "serialized" used to be detected by the coincidence
        // `interval == latency.max(1)`, so a pipelined(8, 8) port given a
        // custom service time silently switched to whole-service
        // occupancy.
        let mut port = ThroughputPort::pipelined(8, 8);
        let a = port.acquire_for(Cycle::new(0), 20);
        let b = port.acquire_for(Cycle::new(0), 20);
        assert_eq!(a, Grant { start: Cycle::new(0), done: Cycle::new(20) });
        // Pipelined: the next request issues after the 8-cycle interval,
        // not after the 20-cycle service completes.
        assert_eq!(b, Grant { start: Cycle::new(8), done: Cycle::new(28) });

        // A truly serialized port with the same latency does occupy for
        // the whole custom service.
        let mut ser = ThroughputPort::serialized(8);
        ser.acquire_for(Cycle::new(0), 20);
        let c = ser.acquire_for(Cycle::new(0), 20);
        assert_eq!(c.start, Cycle::new(20));
    }

    #[test]
    fn port_idle_gap_resets_issue_time() {
        let mut port = ThroughputPort::pipelined(10, 1);
        port.acquire(Cycle::new(0));
        let late = port.acquire(Cycle::new(1000));
        assert_eq!(late.start, Cycle::new(1000));
    }

    #[test]
    fn grant_wait_is_zero_when_immediate() {
        let mut p = OccupancyPool::new(1);
        let g = p.acquire(Cycle::new(3), 5);
        assert_eq!(g.wait_since(Cycle::new(3)), 0);
    }
}
