//! Runtime invariant auditing.
//!
//! The simulator's results are deltas of a few percent; a silent
//! frame-accounting leak or a stale TLB entry would drown them out long
//! before it crashed anything. Every structural component therefore
//! implements [`AuditInvariants`] — a side-effect-free, exhaustive
//! consistency sweep — and the full-system runner invokes the audit
//! every N cycles (always in debug builds, and on demand via the
//! runner's `--audit` flag in release builds).
//!
//! An audit is *not* an assertion sprinkled on a hot path: it walks
//! whole structures (frame pools, page tables, TLB arrays) from the
//! outside, so the checked invariants are global ones — frame-count
//! conservation, large-frame exclusivity, TLB/page-table coherence —
//! that no local `debug_assert!` can see.

use std::fmt;

/// One invariant violation observed during an audit sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The component that failed (e.g. `"frame-pool"`, `"page-table"`).
    pub component: String,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.component, self.message)
    }
}

/// Collects the outcome of one audit sweep: how many invariants were
/// checked and which ones failed.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::audit::{AuditInvariants, AuditReport};
///
/// struct Counter { count: u64, cap: u64 }
/// impl AuditInvariants for Counter {
///     fn audit_component(&self) -> &'static str { "counter" }
///     fn audit(&self, report: &mut AuditReport) {
///         report.check("counter", self.count <= self.cap, || {
///             format!("count {} exceeds cap {}", self.count, self.cap)
///         });
///     }
/// }
///
/// let mut report = AuditReport::new();
/// Counter { count: 3, cap: 10 }.audit(&mut report);
/// assert!(report.is_clean());
/// Counter { count: 11, cap: 10 }.audit(&mut report);
/// assert_eq!(report.violations().len(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AuditReport {
    checks: u64,
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invariant check; `message` is only rendered when the
    /// invariant failed.
    pub fn check(&mut self, component: &str, holds: bool, message: impl FnOnce() -> String) {
        self.checks += 1;
        if !holds {
            self.violations
                .push(AuditViolation { component: component.to_string(), message: message() });
        }
    }

    /// Number of invariants checked so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The violations found so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a full listing if any invariant was violated.
    ///
    /// Simulation state is append-only evidence: by the time a violation
    /// is observable the run's statistics are already unsound, so the
    /// only honest reaction is to stop.
    ///
    /// `context` is only rendered on failure, so callers on audited hot
    /// loops should pass something lazily formatted (`format_args!`)
    /// rather than a pre-built `String` — the clean path then allocates
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if the report holds at least one violation.
    pub fn assert_clean(&self, context: impl fmt::Display) {
        assert!(
            self.is_clean(),
            "invariant audit failed ({context}): {} violation(s) in {} checks\n{self}",
            self.violations.len(),
            self.checks,
        );
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean ({} checks)", self.checks);
        }
        writeln!(
            f,
            "audit found {} violation(s) in {} checks:",
            self.violations.len(),
            self.checks
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// A structural component whose global invariants can be swept.
///
/// Implementations must be side-effect free (no statistics, no
/// mutation): an audited run and an unaudited run of the same seed must
/// produce bit-identical results.
pub trait AuditInvariants {
    /// Short, stable component name used in violation reports.
    fn audit_component(&self) -> &'static str;

    /// Checks every invariant, recording each into `report`.
    fn audit(&self, report: &mut AuditReport);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysClean;
    impl AuditInvariants for AlwaysClean {
        fn audit_component(&self) -> &'static str {
            "clean"
        }
        fn audit(&self, report: &mut AuditReport) {
            report.check(self.audit_component(), true, || unreachable!());
        }
    }

    struct AlwaysBroken;
    impl AuditInvariants for AlwaysBroken {
        fn audit_component(&self) -> &'static str {
            "broken"
        }
        fn audit(&self, report: &mut AuditReport) {
            report.check(self.audit_component(), false, || "it broke".to_string());
        }
    }

    #[test]
    fn clean_component_reports_clean() {
        let mut r = AuditReport::new();
        AlwaysClean.audit(&mut r);
        assert!(r.is_clean());
        assert_eq!(r.checks(), 1);
        r.assert_clean("test");
    }

    #[test]
    fn violations_accumulate_across_components() {
        let mut r = AuditReport::new();
        AlwaysClean.audit(&mut r);
        AlwaysBroken.audit(&mut r);
        AlwaysBroken.audit(&mut r);
        assert_eq!(r.checks(), 3);
        assert_eq!(r.violations().len(), 2);
        assert_eq!(r.violations()[0].component, "broken");
        assert_eq!(r.violations()[0].message, "it broke");
    }

    #[test]
    #[should_panic(expected = "invariant audit failed")]
    fn assert_clean_panics_on_violation() {
        let mut r = AuditReport::new();
        AlwaysBroken.audit(&mut r);
        r.assert_clean("cycle 42");
    }

    #[test]
    fn report_renders_violations() {
        let mut r = AuditReport::new();
        AlwaysBroken.audit(&mut r);
        let text = r.to_string();
        assert!(text.contains("[broken] it broke"));
    }

    #[test]
    fn message_closure_not_called_when_clean() {
        let mut r = AuditReport::new();
        // `check` must not render the message for passing checks — the
        // closure here would panic if called.
        r.check("lazy", true, || panic!("must not render"));
        assert!(r.is_clean());
    }
}
