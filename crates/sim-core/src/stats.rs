//! Statistics primitives: counters, ratios, and histograms.
//!
//! Every component of the simulated memory hierarchy exposes its behaviour
//! through these types, and the experiment drivers aggregate them into the
//! rows and series the paper reports.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::Counter;
///
/// let mut hits = Counter::default();
/// hits.inc();
/// hits.add(4);
/// assert_eq!(hits.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A hit/total ratio, used for TLB and cache hit rates.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::Ratio;
///
/// let mut hit_rate = Ratio::default();
/// hit_rate.record(true);
/// hit_rate.record(true);
/// hit_rate.record(false);
/// assert!((hit_rate.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Records one event; `hit` selects the numerator.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of hits recorded.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// Total events recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The hit fraction in `[0, 1]`; `1.0` when no events were recorded
    /// (an empty TLB has not missed).
    #[inline]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}% ({}/{})", self.rate() * 100.0, self.hits, self.total)
    }
}

/// A latency/size histogram with power-of-two buckets plus exact mean.
///
/// Tracks count, sum, min, and max exactly; the bucketed view is for
/// distribution-shaped reporting (e.g., page-walk latency spread).
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::Histogram;
///
/// let mut h = Histogram::default();
/// h.record(10);
/// h.record(20);
/// assert_eq!(h.count(), 2);
/// assert!((h.mean() - 15.0).abs() < 1e-12);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(20));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
    /// bucket index `i` counts samples in `[2^i, 2^(i+1))`; index 0 also
    /// holds zero-valued samples.
    buckets: BTreeMap<u8, u64>,
}

impl Histogram {
    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
        let bucket = if value == 0 { 0 } else { 63 - value.leading_zeros() as u8 };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of all samples; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any were recorded.
    #[inline]
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any were recorded.
    #[inline]
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Iterates `(bucket_floor, count)` pairs in ascending order, where
    /// `bucket_floor` is the inclusive lower bound of the bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (if b == 0 { 0 } else { 1u64 << b }, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
    }
}

/// A named, ordered collection of scalar statistics, used to dump any
/// component's counters as one machine-readable blob.
///
/// # Examples
///
/// ```
/// use mosaic_sim_core::StatSet;
///
/// let mut s = StatSet::new("l1_tlb");
/// s.set("hits", 90.0);
/// s.set("misses", 10.0);
/// assert_eq!(s.get("hits"), Some(90.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatSet {
    name: String,
    values: BTreeMap<String, f64>,
}

impl StatSet {
    /// Creates an empty set labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        StatSet { name: name.into(), values: BTreeMap::new() }
    }

    /// The label of this set.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts or overwrites the statistic `key`.
    pub fn set(&mut self, key: impl Into<String>, value: f64) {
        self.values.insert(key.into(), value);
    }

    /// Looks up a statistic by name.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.name)?;
        for (k, v) in self.iter() {
            writeln!(f, "  {k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn ratio_empty_is_full_hit_rate() {
        let r = Ratio::default();
        assert_eq!(r.rate(), 1.0);
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn ratio_counts_hits_and_misses() {
        let mut r = Ratio::default();
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.hits(), 5);
        assert_eq!(r.misses(), 5);
        assert!((r.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_merge_adds() {
        let mut a = Ratio::default();
        a.record(true);
        let mut b = Ratio::default();
        b.record(false);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.hits(), 2);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1024));
        assert!((h.mean() - (1.0 + 2.0 + 4.0 + 8.0 + 1024.0) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(3); // bucket [2,4)
        h.record(1000); // bucket [512, 1024)
        let buckets: Vec<_> = h.buckets().collect();
        // Bucket 0 holds both the zero sample and the sample of value 1.
        assert!(buckets.contains(&(0, 2)));
        assert!(buckets.contains(&(2, 1)));
        assert!(buckets.contains(&(512, 1)));
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::default();
        a.record(5);
        let mut b = Histogram::default();
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(50));
    }

    #[test]
    fn statset_roundtrip() {
        let mut s = StatSet::new("dram");
        s.set("row_hits", 7.0);
        s.set("row_misses", 3.0);
        assert_eq!(s.name(), "dram");
        assert_eq!(s.get("row_hits"), Some(7.0));
        assert_eq!(s.get("absent"), None);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), 2);
    }
}
