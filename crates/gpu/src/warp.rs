//! Warp-level abstractions: operations, instruction streams, and the
//! memory-system boundary.

use mosaic_sim_core::Cycle;
use mosaic_telemetry::{AccessTimeline, StallBucket};
use mosaic_vm::{AppId, VirtAddr};

/// Capacity of [`AddrList`]: a warp has 32 lanes, so one instruction can
/// touch at most 32 distinct cache lines (fully divergent).
pub const MAX_WARP_ADDRS: usize = 32;

/// The coalesced addresses of one memory instruction, stored inline.
///
/// Every issued memory op used to carry a heap `Vec` (usually of one
/// element), making the per-op allocation the hottest line of the issue
/// loop; an inline fixed-capacity list keeps the stream generators
/// allocation-free. Dereferences to `&[VirtAddr]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrList {
    addrs: [VirtAddr; MAX_WARP_ADDRS],
    len: u8,
}

impl AddrList {
    /// An empty list.
    pub fn new() -> Self {
        AddrList { addrs: [VirtAddr(0); MAX_WARP_ADDRS], len: 0 }
    }

    /// A single-address list (the fully-converged common case).
    pub fn one(addr: VirtAddr) -> Self {
        let mut list = Self::new();
        list.push(addr);
        list
    }

    /// Appends an address; a warp cannot produce more than
    /// [`MAX_WARP_ADDRS`] (enforced by the slot indexing).
    pub fn push(&mut self, addr: VirtAddr) {
        self.addrs[usize::from(self.len)] = addr;
        self.len += 1;
    }
}

impl Default for AddrList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for AddrList {
    type Target = [VirtAddr];

    fn deref(&self) -> &[VirtAddr] {
        &self.addrs[..usize::from(self.len)]
    }
}

impl FromIterator<VirtAddr> for AddrList {
    fn from_iter<I: IntoIterator<Item = VirtAddr>>(iter: I) -> Self {
        let mut list = Self::new();
        for addr in iter {
            list.push(addr);
        }
        list
    }
}

/// One warp instruction, as seen by the timing model.
//
// The size asymmetry is deliberate: boxing `Memory` (clippy's suggestion)
// would put a heap allocation back on the per-op issue path, which is the
// cost `AddrList` exists to remove.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpOp {
    /// A non-memory instruction (or a fused run of them): the warp cannot
    /// issue again for `cycles` cycles.
    Compute {
        /// Warp-local latency before the next instruction can issue.
        cycles: u32,
    },
    /// A memory instruction, already coalesced into one virtual address
    /// per distinct cache line touched by the warp's 32 lanes (1 address
    /// = fully converged, 32 = fully divergent).
    Memory {
        /// Per-transaction virtual addresses.
        addresses: AddrList,
    },
    /// The warp has retired its last instruction.
    Exit,
}

/// A source of warp instructions. Implemented by the synthetic workload
/// generators; finite streams end by returning [`WarpOp::Exit`] forever.
pub trait WarpStream: std::fmt::Debug {
    /// Produces the warp's next instruction.
    fn next_op(&mut self) -> WarpOp;
}

/// Checkpoint/restore of a warp stream's cursor, required of streams
/// driven by the speculative engine: rolling back an aborted
/// [`Sm::advance_logged`](crate::Sm::advance_logged) step must also
/// rewind the `next_op` calls it consumed. `State` should capture
/// exactly the stream's mutable fields (cursors, op budgets, RNG state)
/// — restoring it onto the same stream must make the following
/// `next_op` calls replay identically.
pub trait StreamCheckpoint {
    /// Saved mutable state of the stream.
    type State: std::fmt::Debug + Clone;

    /// Captures the stream's mutable state.
    fn checkpoint(&self) -> Self::State;

    /// Restores state captured by [`StreamCheckpoint::checkpoint`] on
    /// this same stream.
    fn restore(&mut self, state: &Self::State);
}

/// Blanket stream over a boxed stream (so `Box<dyn WarpStream>` is itself
/// a stream).
impl WarpStream for Box<dyn WarpStream> {
    fn next_op(&mut self) -> WarpOp {
        (**self).next_op()
    }
}

/// The boundary between the execution model and the memory system.
///
/// The full-system simulator implements this with the complete hierarchy
/// (L1 TLB → L1$ → crossbar → L2 TLB/L2$ → page walker → DRAM → demand
/// paging); unit tests use fixed-latency mocks.
pub trait MemoryInterface {
    /// Services one warp memory instruction issued at `now` by SM `sm` on
    /// behalf of address space `asid`, with one virtual address per
    /// coalesced transaction. Returns the cycle at which the *slowest*
    /// transaction completes — the warp resumes then (SIMT lockstep).
    fn warp_access(&mut self, now: Cycle, sm: usize, asid: AppId, addresses: &[VirtAddr]) -> Cycle;

    /// Like [`MemoryInterface::warp_access`], but also describes *where*
    /// the access's cycles went by filling `timeline` with a segment run
    /// tiling `[now, done)` for the slowest transaction. The default
    /// charges the whole interval to [`StallBucket::Other`], so simple
    /// mocks still produce exactly-summing stall breakdowns; the
    /// full-system memory hierarchy overrides this with a real
    /// decomposition.
    fn warp_access_timed(
        &mut self,
        now: Cycle,
        sm: usize,
        asid: AppId,
        addresses: &[VirtAddr],
        timeline: &mut AccessTimeline,
    ) -> Cycle {
        let done = self.warp_access(now, sm, asid, addresses);
        *timeline = AccessTimeline::single(now, done, StallBucket::Other);
        done
    }
}

/// A fixed-latency memory, useful as a baseline and in tests.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatencyMemory {
    /// Cycles charged per warp memory instruction.
    pub latency: u64,
}

impl MemoryInterface for FixedLatencyMemory {
    fn warp_access(
        &mut self,
        now: Cycle,
        _sm: usize,
        _asid: AppId,
        _addresses: &[VirtAddr],
    ) -> Cycle {
        now + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Three(u32);
    impl WarpStream for Three {
        fn next_op(&mut self) -> WarpOp {
            if self.0 == 0 {
                WarpOp::Exit
            } else {
                self.0 -= 1;
                WarpOp::Compute { cycles: 1 }
            }
        }
    }

    #[test]
    fn boxed_stream_delegates() {
        let mut s: Box<dyn WarpStream> = Box::new(Three(2));
        assert_eq!(s.next_op(), WarpOp::Compute { cycles: 1 });
        assert_eq!(s.next_op(), WarpOp::Compute { cycles: 1 });
        assert_eq!(s.next_op(), WarpOp::Exit);
        assert_eq!(s.next_op(), WarpOp::Exit, "exit is sticky");
    }

    #[test]
    fn fixed_latency_memory_adds_latency() {
        let mut m = FixedLatencyMemory { latency: 100 };
        let done = m.warp_access(Cycle::new(5), 0, AppId(0), &[VirtAddr(0)]);
        assert_eq!(done, Cycle::new(105));
    }
}
