//! The streaming multiprocessor (SM) model with GTO warp scheduling.
//!
//! Each SM owns a set of resident warps (its thread blocks' warps), issues
//! at most one warp instruction per cycle, and follows the
//! greedy-then-oldest policy of the paper's configuration (Table 1): keep
//! issuing from the current warp until it stalls, then switch to the
//! oldest ready warp. When no warp is ready the SM fast-forwards to the
//! earliest wake-up — those skipped cycles are the *stall cycles* that
//! TLB misses and far-faults inflate and that Mosaic claws back.

use crate::warp::{MemoryInterface, StreamCheckpoint, WarpOp, WarpStream};
use mosaic_sim_core::Cycle;
use mosaic_telemetry::{emit, AccessTimeline, Event, StallBreakdown, StallBucket};
use mosaic_vm::AppId;

/// SM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Resident warps per SM (warp slots across its thread blocks).
    pub warps: usize,
    /// Maximum instructions issued per [`Sm::advance`] call before
    /// returning control to the global scheduler (keeps SM clocks in
    /// lockstep with shared-resource contention).
    pub batch: usize,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig { warps: 32, batch: 8 }
    }
}

/// Per-SM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp instructions retired.
    pub instructions: u64,
    /// Memory instructions among them.
    pub memory_instructions: u64,
    /// Cycles with no warp ready to issue.
    pub stall_cycles: u64,
    /// Memory transactions issued (post-coalescing).
    pub transactions: u64,
    /// Exact decomposition of `stall_cycles` by cause: each stalled
    /// interval is attributed to the timeline of the warp whose wake-up
    /// ends it (the critical path), so the buckets always sum to
    /// `stall_cycles`.
    pub stall_breakdown: StallBreakdown,
}

#[derive(Debug)]
struct WarpCtx<S> {
    stream: S,
    ready_at: Cycle,
    finished: bool,
}

/// Journal reversing one [`Sm::advance_logged`] call: the scalar SM
/// header (clock, GTO cursor, fence, stats — all mutated
/// unconditionally) plus one record per issued op capturing the picked
/// warp's pre-issue state, including its stream checkpoint. `C` is the
/// stream's [`StreamCheckpoint::State`]. Reuse one journal per
/// speculation slot — [`Sm::advance_logged`] clears and refills the op
/// vector, so its allocation amortizes across steps.
#[derive(Debug, Clone)]
pub struct AdvanceUndo<C> {
    now: Cycle,
    current: usize,
    fence: Cycle,
    fence_cause: StallBucket,
    stats: SmStats,
    ops: Vec<OpUndo<C>>,
}

impl<C> Default for AdvanceUndo<C> {
    fn default() -> Self {
        AdvanceUndo {
            now: Cycle::ZERO,
            current: 0,
            fence: Cycle::ZERO,
            fence_cause: StallBucket::Sync,
            stats: SmStats::default(),
            ops: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct OpUndo<C> {
    warp: usize,
    ready_at: Cycle,
    finished: bool,
    timeline: AccessTimeline,
    stream: C,
}

/// Hook the scheduler loop invokes immediately before a picked warp's
/// stream produces its next op. The serial path uses [`NoOpLog`], which
/// monomorphizes away; [`Sm::advance_logged`] installs a journal writer.
/// Keeping one shared loop body (instead of a logged copy of `advance`)
/// is what guarantees the speculative and serial paths cannot drift.
trait OpLogger<S: WarpStream> {
    fn log_op(&mut self, sm: &Sm<S>, warp: usize);
}

/// The serial no-journal logger.
struct NoOpLog;

impl<S: WarpStream> OpLogger<S> for NoOpLog {
    fn log_op(&mut self, _sm: &Sm<S>, _warp: usize) {}
}

/// Journal writer for [`Sm::advance_logged`].
struct JournalLog<'a, C> {
    ops: &'a mut Vec<OpUndo<C>>,
}

impl<S> OpLogger<S> for JournalLog<'_, S::State>
where
    S: WarpStream + StreamCheckpoint,
{
    fn log_op(&mut self, sm: &Sm<S>, warp: usize) {
        self.ops.push(OpUndo {
            warp,
            ready_at: sm.warps[warp].ready_at,
            finished: sm.warps[warp].finished,
            timeline: sm.timelines[warp],
            stream: sm.warps[warp].stream.checkpoint(),
        });
    }
}

/// One streaming multiprocessor.
///
/// Drive it with [`Sm::advance`] from a loop that always advances the SM
/// with the smallest local clock; the SM is done when [`Sm::is_active`]
/// turns false.
///
/// The SM is generic over its warp-stream type. The default,
/// `Box<dyn WarpStream>`, accepts any mix of streams; callers on the hot
/// path (the full-system runner) instantiate `Sm<ConcreteStream>` instead
/// so `next_op` calls are static — no per-warp box, no vtable dispatch.
#[derive(Debug)]
pub struct Sm<S: WarpStream = Box<dyn WarpStream>> {
    id: usize,
    asid: AppId,
    config: SmConfig,
    warps: Vec<WarpCtx<S>>,
    /// Where the cycles of each warp's in-flight operation went, indexed
    /// like `warps`; consulted when an SM stall ends at that warp's
    /// wake-up. Kept out of `WarpCtx` so the scheduler's per-cycle scans
    /// over `warps` stay dense.
    timelines: Vec<AccessTimeline>,
    current: usize,
    now: Cycle,
    /// External stall barrier (e.g., worst-case compaction stalls): the SM
    /// may not issue before this cycle.
    fence: Cycle,
    /// Which bucket fence-induced stall cycles are charged to.
    fence_cause: StallBucket,
    stats: SmStats,
}

impl<S: WarpStream> Sm<S> {
    /// Creates an SM for application `asid` with the given warp streams.
    /// SMs with no warps start inactive.
    pub fn new(id: usize, asid: AppId, config: SmConfig, streams: Vec<S>) -> Self {
        let warps: Vec<_> = streams
            .into_iter()
            .map(|stream| WarpCtx { stream, ready_at: Cycle::ZERO, finished: false })
            .collect();
        let timelines = vec![AccessTimeline::default(); warps.len()];
        Sm {
            id,
            asid,
            config,
            warps,
            timelines,
            current: 0,
            now: Cycle::ZERO,
            fence: Cycle::ZERO,
            fence_cause: StallBucket::Sync,
            stats: SmStats::default(),
        }
    }

    /// Re-arms the SM with a new grid's warp streams, resetting the clock,
    /// fence, and statistics but keeping identity (`id`, `asid`) and the
    /// warp-slot allocation. Lets a multi-phase runner reuse its SMs
    /// instead of constructing a fresh vector per kernel phase.
    pub fn reload(&mut self, streams: impl IntoIterator<Item = S>) {
        self.warps.clear();
        self.warps.extend(streams.into_iter().map(|stream| WarpCtx {
            stream,
            ready_at: Cycle::ZERO,
            finished: false,
        }));
        self.timelines.clear();
        self.timelines.resize(self.warps.len(), AccessTimeline::default());
        self.current = 0;
        self.now = Cycle::ZERO;
        self.fence = Cycle::ZERO;
        self.fence_cause = StallBucket::Sync;
        self.stats = SmStats::default();
    }

    /// This SM's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The application this SM is partitioned to.
    pub fn asid(&self) -> AppId {
        self.asid
    }

    /// The SM's local clock.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// Whether any warp still has work.
    pub fn is_active(&self) -> bool {
        self.warps.iter().any(|w| !w.finished)
    }

    /// Stalls the SM until `until` (used for the conservative whole-GPU
    /// compaction stalls and baseline TLB-shootdown modelling), charging
    /// the stalled cycles to [`StallBucket::Sync`].
    pub fn stall_until(&mut self, until: Cycle) {
        self.stall_until_for(until, StallBucket::Sync);
    }

    /// Stalls the SM until `until`, charging the stalled cycles to
    /// `cause`. A fence that does not extend the current one keeps the
    /// existing cause.
    pub fn stall_until_for(&mut self, until: Cycle, cause: StallBucket) {
        if until > self.fence {
            self.fence = until;
            self.fence_cause = cause;
        }
    }

    /// GTO pick: the current warp if ready, else the oldest (lowest index)
    /// ready warp, else `None`.
    fn pick(&self) -> Option<usize> {
        let ready = |w: &WarpCtx<S>| !w.finished && w.ready_at <= self.now;
        if ready(&self.warps[self.current]) {
            return Some(self.current);
        }
        self.warps.iter().position(ready)
    }

    /// The unfinished warp with the earliest wake-up (first such index;
    /// its `ready_at` equals the minimum the old `next_wakeup` returned).
    fn next_wakeup_warp(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, w) in self.warps.iter().enumerate() {
            if w.finished {
                continue;
            }
            match best {
                Some(b) if self.warps[b].ready_at <= w.ready_at => {}
                _ => best = Some(i),
            }
        }
        best
    }

    /// Runs the SM for up to `config.batch` issued instructions (or one
    /// stall jump), charging memory operations to `mem`. Returns `true`
    /// while active.
    pub fn advance(&mut self, mem: &mut dyn MemoryInterface) -> bool {
        self.advance_impl(mem, &mut NoOpLog)
    }

    fn advance_impl(&mut self, mem: &mut dyn MemoryInterface, log: &mut impl OpLogger<S>) -> bool {
        if !self.is_active() {
            return false;
        }
        if self.fence > self.now {
            let skipped = self.fence - self.now;
            self.stats.stall_cycles += skipped;
            self.stats.stall_breakdown.add(self.fence_cause, skipped);
            self.now = self.fence;
        }
        for _ in 0..self.config.batch {
            let Some(w) = self.pick() else {
                // Nothing ready: fast-forward to the next wake-up and
                // attribute the skipped interval to the waking warp's
                // timeline (the critical path that ends the stall).
                if let Some(i) = self.next_wakeup_warp() {
                    let wake = self.warps[i].ready_at;
                    if wake > self.now {
                        let skipped = wake - self.now;
                        self.stats.stall_cycles += skipped;
                        self.stats.stall_breakdown.attribute(&self.timelines[i], self.now, wake);
                        self.now = wake;
                    }
                    return true;
                }
                return false; // everyone finished
            };
            self.current = w;
            log.log_op(self, w);
            let op = self.warps[w].stream.next_op();
            match op {
                WarpOp::Compute { cycles } => {
                    self.stats.instructions += 1;
                    let ready = self.now + u64::from(cycles.max(1));
                    self.warps[w].ready_at = ready;
                    self.timelines[w] =
                        AccessTimeline::single(self.now, ready, StallBucket::Compute);
                    self.now += 1;
                }
                WarpOp::Memory { addresses } => {
                    self.stats.instructions += 1;
                    self.stats.memory_instructions += 1;
                    self.stats.transactions += addresses.len() as u64;
                    let done = mem.warp_access_timed(
                        self.now,
                        self.id,
                        self.asid,
                        &addresses,
                        &mut self.timelines[w],
                    );
                    if done == Cycle::MAX {
                        // Abort sentinel: a speculative memory wrapper
                        // signals "not serviceable locally" and the
                        // engine rolls this step back via its journal.
                        // Real memory systems never produce Cycle::MAX.
                        return true;
                    }
                    debug_assert!(done >= self.now);
                    // SIMT lockstep: the warp waits for its slowest lane.
                    self.warps[w].ready_at = done;
                    emit(|| Event::WarpMem {
                        sm: self.id as u32,
                        asid: self.asid.0,
                        issue: self.now.as_u64(),
                        done: done.as_u64(),
                        transactions: addresses.len() as u32,
                    });
                    self.now += 1;
                }
                WarpOp::Exit => {
                    self.warps[w].finished = true;
                }
            }
        }
        true
    }

    /// [`Sm::advance`] with a journal: `undo` is cleared and refilled so
    /// [`Sm::undo_advance`] can reverse the step exactly. The loop body
    /// is `advance` itself (shared via the logging hook), so outcome,
    /// statistics, and scheduling are identical to the serial path.
    /// External effects of memory ops (TLB/cache state, telemetry) are
    /// *not* covered — the speculative engine journals those at the
    /// memory-wrapper layer.
    pub fn advance_logged(
        &mut self,
        mem: &mut dyn MemoryInterface,
        undo: &mut AdvanceUndo<S::State>,
    ) -> bool
    where
        S: StreamCheckpoint,
    {
        undo.ops.clear();
        undo.now = self.now;
        undo.current = self.current;
        undo.fence = self.fence;
        undo.fence_cause = self.fence_cause;
        undo.stats = self.stats;
        self.advance_impl(mem, &mut JournalLog { ops: &mut undo.ops })
    }

    /// Reverses one [`Sm::advance_logged`] call: per-op warp state is
    /// restored in reverse issue order, then the SM header. Only valid
    /// as the inverse of the *most recent* un-undone `advance_logged` on
    /// this SM.
    pub fn undo_advance(&mut self, undo: &AdvanceUndo<S::State>)
    where
        S: StreamCheckpoint,
    {
        for op in undo.ops.iter().rev() {
            let w = &mut self.warps[op.warp];
            w.ready_at = op.ready_at;
            w.finished = op.finished;
            w.stream.restore(&op.stream);
            self.timelines[op.warp] = op.timeline;
        }
        self.now = undo.now;
        self.current = undo.current;
        self.fence = undo.fence;
        self.fence_cause = undo.fence_cause;
        self.stats = undo.stats;
    }

    /// Runs the SM to completion against `mem` (single-SM convenience for
    /// tests and microbenchmarks). Returns the final cycle.
    pub fn run_to_completion(&mut self, mem: &mut dyn MemoryInterface) -> Cycle {
        while self.advance(mem) {}
        self.now
    }

    /// Instructions per cycle retired so far.
    pub fn ipc(&self) -> f64 {
        if self.now == Cycle::ZERO {
            0.0
        } else {
            self.stats.instructions as f64 / self.now.as_u64() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{AddrList, FixedLatencyMemory};
    use mosaic_vm::VirtAddr;

    /// `n` compute ops then exit.
    #[derive(Debug)]
    struct ComputeN(u64);
    impl WarpStream for ComputeN {
        fn next_op(&mut self) -> WarpOp {
            if self.0 == 0 {
                WarpOp::Exit
            } else {
                self.0 -= 1;
                WarpOp::Compute { cycles: 1 }
            }
        }
    }

    /// Alternates memory and compute, `n` memory ops total.
    #[derive(Debug)]
    struct MemN(u64);
    impl WarpStream for MemN {
        fn next_op(&mut self) -> WarpOp {
            if self.0 == 0 {
                WarpOp::Exit
            } else {
                self.0 -= 1;
                WarpOp::Memory { addresses: AddrList::one(VirtAddr(self.0 * 128)) }
            }
        }
    }
    impl StreamCheckpoint for MemN {
        type State = u64;
        fn checkpoint(&self) -> u64 {
            self.0
        }
        fn restore(&mut self, state: &u64) {
            self.0 = *state;
        }
    }

    fn sm_with(streams: Vec<Box<dyn WarpStream>>) -> Sm {
        Sm::new(0, AppId(0), SmConfig { warps: streams.len(), batch: 8 }, streams)
    }

    #[test]
    fn single_compute_warp_is_ipc_1() {
        let mut sm = sm_with(vec![Box::new(ComputeN(100))]);
        let mut mem = FixedLatencyMemory { latency: 0 };
        let end = sm.run_to_completion(&mut mem);
        assert_eq!(sm.stats().instructions, 100);
        assert_eq!(end.as_u64(), 100);
        assert!((sm.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_latency_stalls_single_warp() {
        let mut sm = sm_with(vec![Box::new(MemN(10))]);
        let mut mem = FixedLatencyMemory { latency: 100 };
        let end = sm.run_to_completion(&mut mem);
        // Each op: issue (1cy) then wait ~100: about 1000 cycles total.
        assert!(end.as_u64() >= 1000);
        assert!(sm.stats().stall_cycles > 900);
        assert_eq!(sm.stats().memory_instructions, 10);
    }

    #[test]
    fn tlp_hides_memory_latency() {
        // One warp: ~100 cycles per op. 32 warps: the SM interleaves them,
        // so total time is far less than 32x.
        let streams: Vec<Box<dyn WarpStream>> = (0..32).map(|_| Box::new(MemN(10)) as _).collect();
        let mut sm = sm_with(streams);
        let mut mem = FixedLatencyMemory { latency: 100 };
        let end = sm.run_to_completion(&mut mem);
        let single_warp_time = 1010;
        assert!(
            end.as_u64() < 2 * single_warp_time,
            "32 warps should overlap: {} cycles",
            end.as_u64()
        );
        assert_eq!(sm.stats().instructions, 320);
    }

    #[test]
    fn gto_prefers_current_warp() {
        // Two warps of compute: greedy keeps issuing warp 0 until it exits.
        #[derive(Debug)]
        struct Tagged(&'static str, u64, std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>);
        impl WarpStream for Tagged {
            fn next_op(&mut self) -> WarpOp {
                if self.1 == 0 {
                    WarpOp::Exit
                } else {
                    self.1 -= 1;
                    self.2.borrow_mut().push(self.0);
                    WarpOp::Compute { cycles: 1 }
                }
            }
        }
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let streams: Vec<Box<dyn WarpStream>> =
            vec![Box::new(Tagged("a", 3, log.clone())), Box::new(Tagged("b", 3, log.clone()))];
        let mut sm = sm_with(streams);
        let mut mem = FixedLatencyMemory { latency: 0 };
        sm.run_to_completion(&mut mem);
        // With 1-cycle compute, warp 0 is always ready again by the next
        // cycle, so GTO never leaves it until exit.
        assert_eq!(&log.borrow()[..3], &["a", "a", "a"]);
    }

    #[test]
    fn stall_fence_blocks_issue() {
        let mut sm = sm_with(vec![Box::new(ComputeN(10))]);
        sm.stall_until(Cycle::new(500));
        let mut mem = FixedLatencyMemory { latency: 0 };
        let end = sm.run_to_completion(&mut mem);
        assert!(end.as_u64() >= 510);
        assert!(sm.stats().stall_cycles >= 500);
    }

    #[test]
    fn stall_breakdown_sums_exactly_to_stall_cycles() {
        let mut sm = sm_with(vec![Box::new(MemN(10)), Box::new(ComputeN(30))]);
        sm.stall_until(Cycle::new(100));
        let mut mem = FixedLatencyMemory { latency: 100 };
        sm.run_to_completion(&mut mem);
        let stats = sm.stats();
        assert_eq!(stats.stall_breakdown.total(), stats.stall_cycles, "buckets tile every stall");
        assert_eq!(stats.stall_breakdown.get(StallBucket::Sync), 100, "fence charged to Sync");
        assert!(
            stats.stall_breakdown.get(StallBucket::Other) > 0,
            "mock memory waits charge Other"
        );
    }

    #[test]
    fn stall_until_for_charges_the_given_cause() {
        let mut sm = sm_with(vec![Box::new(ComputeN(5))]);
        sm.stall_until_for(Cycle::new(50), StallBucket::Shootdown);
        // A shorter fence afterwards neither moves the fence nor the cause.
        sm.stall_until(Cycle::new(10));
        let mut mem = FixedLatencyMemory { latency: 0 };
        sm.run_to_completion(&mut mem);
        assert_eq!(sm.stats().stall_breakdown.get(StallBucket::Shootdown), 50);
        assert_eq!(sm.stats().stall_breakdown.total(), sm.stats().stall_cycles);
    }

    #[test]
    fn compute_waits_attribute_to_compute_bucket() {
        #[derive(Debug)]
        struct SlowCompute(u64);
        impl WarpStream for SlowCompute {
            fn next_op(&mut self) -> WarpOp {
                if self.0 == 0 {
                    WarpOp::Exit
                } else {
                    self.0 -= 1;
                    WarpOp::Compute { cycles: 40 }
                }
            }
        }
        let mut sm = sm_with(vec![Box::new(SlowCompute(5))]);
        let mut mem = FixedLatencyMemory { latency: 0 };
        sm.run_to_completion(&mut mem);
        let stats = sm.stats();
        assert!(stats.stall_cycles > 0);
        assert_eq!(stats.stall_breakdown.get(StallBucket::Compute), stats.stall_cycles);
        assert_eq!(stats.stall_breakdown.total(), stats.stall_cycles);
    }

    #[test]
    fn monomorphized_sm_matches_boxed_sm() {
        // The same streams through Sm<ComputeN> (static dispatch) and the
        // default Sm (boxed) must behave identically.
        let mut mono =
            Sm::new(0, AppId(0), SmConfig { warps: 2, batch: 8 }, vec![ComputeN(50), ComputeN(50)]);
        let mut boxed = sm_with(vec![Box::new(ComputeN(50)), Box::new(ComputeN(50))]);
        let mut mem = FixedLatencyMemory { latency: 0 };
        let end_mono = mono.run_to_completion(&mut mem);
        let end_boxed = boxed.run_to_completion(&mut mem);
        assert_eq!(end_mono, end_boxed);
        assert_eq!(mono.stats(), boxed.stats());
    }

    #[test]
    fn reload_rearms_for_a_new_phase() {
        let mut sm = Sm::new(3, AppId(1), SmConfig { warps: 1, batch: 8 }, vec![ComputeN(10)]);
        let mut mem = FixedLatencyMemory { latency: 0 };
        sm.run_to_completion(&mut mem);
        assert!(!sm.is_active());
        assert_eq!(sm.stats().instructions, 10);

        sm.reload(vec![ComputeN(7), ComputeN(7)]);
        assert!(sm.is_active(), "reload rearms the SM");
        assert_eq!(sm.now(), Cycle::ZERO, "clock resets");
        assert_eq!(sm.stats(), SmStats::default(), "stats reset");
        assert_eq!(sm.id(), 3, "identity survives");
        assert_eq!(sm.asid(), AppId(1));
        sm.run_to_completion(&mut mem);
        assert_eq!(sm.stats().instructions, 14);
    }

    /// Contract of the speculation journal: every `advance_logged` step
    /// matches `advance` in lockstep (shared loop body), and undo/redo
    /// round-trips restore the SM bit-for-bit (compared via `Debug`,
    /// which covers warps, streams, timelines, clocks, fence, stats).
    #[test]
    fn advance_logged_matches_advance_and_undoes_exactly() {
        let cfg = SmConfig { warps: 4, batch: 8 };
        let streams = || vec![MemN(6), MemN(4), MemN(9), MemN(2)];
        let mut plain = Sm::new(1, AppId(0), cfg, streams());
        let mut logged = Sm::new(1, AppId(0), cfg, streams());
        plain.stall_until(Cycle::new(10));
        logged.stall_until(Cycle::new(10));
        let mut mem_plain = FixedLatencyMemory { latency: 37 };
        let mut mem_logged = FixedLatencyMemory { latency: 37 };
        let mut undo = AdvanceUndo::default();
        loop {
            let snapshot = format!("{logged:?}");
            let cont = logged.advance_logged(&mut mem_logged, &mut undo);
            logged.undo_advance(&undo);
            assert_eq!(format!("{logged:?}"), snapshot, "undo restores the pre-step state");
            assert_eq!(logged.advance_logged(&mut mem_logged, &mut undo), cont, "redo replays");
            assert_eq!(plain.advance(&mut mem_plain), cont, "shared loop body stays in lockstep");
            assert_eq!(format!("{logged:?}"), format!("{plain:?}"));
            if !cont {
                break;
            }
        }
        assert_eq!(logged.stats(), plain.stats());
    }

    /// An aborted step (memory wrapper returns the `Cycle::MAX`
    /// sentinel) returns control immediately and leaves no trace once
    /// its journal is applied.
    #[test]
    fn abort_sentinel_rolls_back_cleanly() {
        #[derive(Debug)]
        struct FailNth {
            calls: u64,
            fail_at: u64,
        }
        impl MemoryInterface for FailNth {
            fn warp_access(
                &mut self,
                now: Cycle,
                _sm: usize,
                _asid: AppId,
                _addresses: &[VirtAddr],
            ) -> Cycle {
                self.calls += 1;
                if self.calls == self.fail_at {
                    Cycle::MAX
                } else {
                    now + 5
                }
            }
        }
        let cfg = SmConfig { warps: 2, batch: 8 };
        let mut sm = Sm::new(0, AppId(0), cfg, vec![MemN(5), MemN(5)]);
        let mut mem = FailNth { calls: 0, fail_at: 4 };
        let mut undo = AdvanceUndo::default();
        loop {
            let snapshot = format!("{sm:?}");
            assert!(sm.advance_logged(&mut mem, &mut undo), "abort still reports active");
            if mem.calls >= mem.fail_at {
                // This step hit the sentinel mid-batch; roll it back.
                sm.undo_advance(&undo);
                assert_eq!(format!("{sm:?}"), snapshot, "aborted step leaves no trace");
                break;
            }
        }
    }

    #[test]
    fn empty_sm_is_inactive() {
        let mut sm = sm_with(vec![]);
        let mut mem = FixedLatencyMemory { latency: 0 };
        assert!(!sm.advance(&mut mem));
        assert!(!sm.is_active());
        assert_eq!(sm.ipc(), 0.0);
    }

    #[test]
    fn transactions_count_divergence() {
        #[derive(Debug)]
        struct Divergent(bool);
        impl WarpStream for Divergent {
            fn next_op(&mut self) -> WarpOp {
                if self.0 {
                    self.0 = false;
                    WarpOp::Memory { addresses: (0..32).map(|i| VirtAddr(i * 4096)).collect() }
                } else {
                    WarpOp::Exit
                }
            }
        }
        let mut sm = sm_with(vec![Box::new(Divergent(true))]);
        let mut mem = FixedLatencyMemory { latency: 1 };
        sm.run_to_completion(&mut mem);
        assert_eq!(sm.stats().transactions, 32);
        assert_eq!(sm.stats().memory_instructions, 1);
    }
}
