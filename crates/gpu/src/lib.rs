//! GPU execution model for the Mosaic reproduction.
//!
//! Models what Section 2.1 of the paper calls the GPU execution model at
//! the granularity that drives the memory system:
//!
//! * applications are grids of *thread blocks*; each block is a set of
//!   *warps*; warps execute in SIMT lockstep, so a warp stalls until the
//!   slowest memory transaction of its current instruction completes;
//! * each *streaming multiprocessor* (SM) issues at most one warp
//!   instruction per cycle, hiding memory latency by switching among its
//!   resident warps with the greedy-then-oldest (GTO) warp scheduler;
//! * a warp memory instruction is presented to the memory system as a set
//!   of coalesced transactions (one per distinct cache line).
//!
//! The model is *trace-synthesized* rather than functional: warps draw
//! [`WarpOp`]s from a [`WarpStream`] (the workload crate provides
//! generators mimicking the paper's 27 benchmarks) and the SM charges
//! timing. Memory is reached through the [`MemoryInterface`] trait, which
//! the full-system simulator implements with TLBs, caches, page walks,
//! and demand paging.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod sm;
pub mod warp;

pub use sm::{AdvanceUndo, Sm, SmConfig, SmStats};
pub use warp::{
    AddrList, FixedLatencyMemory, MemoryInterface, StreamCheckpoint, WarpOp, WarpStream,
    MAX_WARP_ADDRS,
};
