//! Stall-cycle attribution: buckets, per-access timelines, and breakdowns.
//!
//! The paper's headline claims are latency-breakdown claims — *where* a
//! warp's stall cycles go (TLB hit vs. miss/walk, shootdowns, caches, DRAM
//! queueing vs. service). The memory system describes each warp access as
//! an [`AccessTimeline`]: an ordered run of segments tiling the interval
//! from issue to completion, each charged to one [`StallBucket`]. When the
//! SM fast-forwards over a stall it attributes the skipped interval to the
//! waking warp's timeline segments, accumulating a [`StallBreakdown`]
//! whose buckets sum *exactly* to the SM's total stall cycles (any
//! residual the timeline does not cover lands in [`StallBucket::Other`]).
//!
//! These types are plain `Copy` data built unconditionally on the hot
//! path (a handful of array writes per access), so the stall report is
//! deterministic and available without event tracing.

use mosaic_sim_core::Cycle;

/// Where a stalled cycle is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum StallBucket {
    /// Translation serviced by an L1 or L2 TLB hit.
    TlbHit,
    /// TLB miss: page-table walk (including L2 TLB probe and walker
    /// queueing on the miss path).
    TlbWalk,
    /// Far-fault service: demand paging over the I/O bus plus any
    /// compaction migrations the allocation waited on.
    Fault,
    /// TLB shootdown / compaction stall fences raised by the manager.
    Shootdown,
    /// L1/L2 data-cache access time (including crossbar traversal).
    Cache,
    /// Waiting in DRAM bank/bus queues ahead of service.
    DramQueue,
    /// DRAM row access plus data burst.
    DramService,
    /// Warp-local compute latency.
    Compute,
    /// Kernel-phase synchronization fences (later phases start where the
    /// previous grid left off).
    Sync,
    /// Eviction under memory pressure: tearing down victim translations
    /// (page-table/TLB work) before a fault's allocation can retry.
    Evict,
    /// Write-back of dirty evicted pages over the I/O bus (queueing plus
    /// wire time the triggering fault waits on).
    Writeback,
    /// Remote access over the inter-GPU interconnect: link queueing plus
    /// hop traversal when a warp's data lives on another GPU's DRAM.
    Remote,
    /// Inter-GPU page migration the access waited on: moving a frame's
    /// bytes across the interconnect under `migrate-on-threshold`.
    Migrate,
    /// Residual cycles no timeline segment covers.
    #[default]
    Other,
}

impl StallBucket {
    /// Number of buckets.
    pub const COUNT: usize = 14;

    /// Every bucket, in display order.
    pub const ALL: [StallBucket; Self::COUNT] = [
        StallBucket::TlbHit,
        StallBucket::TlbWalk,
        StallBucket::Fault,
        StallBucket::Shootdown,
        StallBucket::Cache,
        StallBucket::DramQueue,
        StallBucket::DramService,
        StallBucket::Compute,
        StallBucket::Sync,
        StallBucket::Evict,
        StallBucket::Writeback,
        StallBucket::Remote,
        StallBucket::Migrate,
        StallBucket::Other,
    ];

    /// Dense index of this bucket (inverse of `ALL`).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short, fixed label for report columns.
    pub fn label(self) -> &'static str {
        match self {
            StallBucket::TlbHit => "tlb-hit",
            StallBucket::TlbWalk => "tlb-walk",
            StallBucket::Fault => "fault",
            StallBucket::Shootdown => "shootdown",
            StallBucket::Cache => "cache",
            StallBucket::DramQueue => "dram-q",
            StallBucket::DramService => "dram-svc",
            StallBucket::Compute => "compute",
            StallBucket::Sync => "sync",
            StallBucket::Evict => "evict",
            StallBucket::Writeback => "writeback",
            StallBucket::Remote => "remote",
            StallBucket::Migrate => "migrate",
            StallBucket::Other => "other",
        }
    }
}

/// Maximum segments one access timeline can carry. The deepest path (L1
/// TLB probe → walk → fault → L1$ → xbar/L2$ → DRAM queue → DRAM service)
/// merges into at most seven distinct-bucket runs; eight leaves slack.
pub const MAX_TIMELINE_SEGS: usize = 8;

/// An ordered run of `(end, bucket)` segments tiling `[start, end())`,
/// describing where the cycles of one warp access (or compute wait) went.
///
/// Built with [`AccessTimeline::mark`]: each mark extends coverage up to
/// its end cycle under one bucket; non-monotonic marks are clamped and
/// adjacent same-bucket segments merge, so the structure never drops time
/// and never exceeds [`MAX_TIMELINE_SEGS`] on the paths the simulator
/// builds (a full timeline extends its last segment instead of losing
/// cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTimeline {
    start: u64,
    len: u8,
    ends: [u64; MAX_TIMELINE_SEGS],
    buckets: [StallBucket; MAX_TIMELINE_SEGS],
}

impl Default for AccessTimeline {
    fn default() -> Self {
        AccessTimeline::begin(Cycle::ZERO)
    }
}

impl AccessTimeline {
    /// An empty timeline anchored at `start`.
    #[inline]
    pub fn begin(start: Cycle) -> Self {
        AccessTimeline {
            start: start.as_u64(),
            len: 0,
            ends: [0; MAX_TIMELINE_SEGS],
            buckets: [StallBucket::Other; MAX_TIMELINE_SEGS],
        }
    }

    /// A single-segment timeline `[start, end)` charged to `bucket`.
    #[inline]
    pub fn single(start: Cycle, end: Cycle, bucket: StallBucket) -> Self {
        let mut tl = AccessTimeline::begin(start);
        tl.mark(end, bucket);
        tl
    }

    /// The anchor cycle (when the access issued).
    #[inline]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last covered cycle (`start` when empty).
    #[inline]
    pub fn end(&self) -> u64 {
        if self.len == 0 {
            self.start
        } else {
            self.ends[usize::from(self.len) - 1]
        }
    }

    /// Extends coverage up to `end` under `bucket`. Marks that do not
    /// advance past the current end are ignored; a mark matching the last
    /// segment's bucket extends it in place.
    #[inline]
    pub fn mark(&mut self, end: Cycle, bucket: StallBucket) {
        let end = end.as_u64();
        if end <= self.end() {
            return;
        }
        let len = usize::from(self.len);
        if len > 0 && self.buckets[len - 1] == bucket {
            self.ends[len - 1] = end;
        } else if len < MAX_TIMELINE_SEGS {
            self.ends[len] = end;
            self.buckets[len] = bucket;
            self.len += 1;
        } else {
            // Full: extend the last segment rather than drop cycles.
            self.ends[MAX_TIMELINE_SEGS - 1] = end;
        }
    }

    /// Guarantees coverage up to `end` (extending the last segment, or
    /// opening an `Other` segment when empty). Used by the caller that
    /// knows the access's final completion cycle.
    #[inline]
    pub fn seal(&mut self, end: Cycle) {
        if end.as_u64() <= self.end() {
            return;
        }
        let bucket = if self.len == 0 {
            StallBucket::Other
        } else {
            self.buckets[usize::from(self.len) - 1]
        };
        self.mark(end, bucket);
    }

    /// Iterates `(seg_start, seg_end, bucket)` triples in time order.
    pub fn segments(&self) -> impl Iterator<Item = (u64, u64, StallBucket)> + '_ {
        let mut prev = self.start;
        (0..usize::from(self.len)).map(move |i| {
            let s = prev;
            prev = self.ends[i];
            (s, self.ends[i], self.buckets[i])
        })
    }
}

/// Per-bucket stall-cycle totals. Buckets always sum exactly to the stall
/// cycles attributed through [`StallBreakdown::attribute`] and
/// [`StallBreakdown::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    cycles: [u64; StallBucket::COUNT],
}

impl StallBreakdown {
    /// Charges `cycles` to `bucket`.
    #[inline]
    pub fn add(&mut self, bucket: StallBucket, cycles: u64) {
        self.cycles[bucket.index()] += cycles;
    }

    /// Attributes the stall interval `[from, to)` to `timeline`'s
    /// overlapping segments; cycles outside the timeline's coverage are
    /// charged to [`StallBucket::Other`], so exactly `to - from` cycles
    /// are added in total.
    pub fn attribute(&mut self, timeline: &AccessTimeline, from: Cycle, to: Cycle) {
        let (from, to) = (from.as_u64(), to.as_u64());
        if to <= from {
            return;
        }
        let mut attributed = 0u64;
        for (s, e, bucket) in timeline.segments() {
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                self.cycles[bucket.index()] += hi - lo;
                attributed += hi - lo;
            }
        }
        let total = to - from;
        if attributed < total {
            self.cycles[StallBucket::Other.index()] += total - attributed;
        }
    }

    /// Cycles charged to `bucket`.
    #[inline]
    pub fn get(&self, bucket: StallBucket) -> u64 {
        self.cycles[bucket.index()]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for i in 0..StallBucket::COUNT {
            self.cycles[i] += other.cycles[i];
        }
    }

    /// Iterates `(bucket, cycles)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (StallBucket, u64)> + '_ {
        StallBucket::ALL.iter().map(move |&b| (b, self.cycles[b.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_match_all_order() {
        for (i, b) in StallBucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn marks_tile_contiguously() {
        let mut tl = AccessTimeline::begin(Cycle::new(10));
        tl.mark(Cycle::new(15), StallBucket::TlbHit);
        tl.mark(Cycle::new(40), StallBucket::Cache);
        tl.mark(Cycle::new(90), StallBucket::DramService);
        let segs: Vec<_> = tl.segments().collect();
        assert_eq!(
            segs,
            vec![
                (10, 15, StallBucket::TlbHit),
                (15, 40, StallBucket::Cache),
                (40, 90, StallBucket::DramService)
            ]
        );
        assert_eq!(tl.end(), 90);
    }

    #[test]
    fn same_bucket_marks_merge_and_stale_marks_are_ignored() {
        let mut tl = AccessTimeline::begin(Cycle::new(0));
        tl.mark(Cycle::new(5), StallBucket::Cache);
        tl.mark(Cycle::new(9), StallBucket::Cache);
        tl.mark(Cycle::new(3), StallBucket::TlbWalk); // stale
        assert_eq!(tl.segments().count(), 1);
        assert_eq!(tl.end(), 9);
    }

    #[test]
    fn full_timeline_extends_last_segment() {
        let mut tl = AccessTimeline::begin(Cycle::new(0));
        for i in 0..MAX_TIMELINE_SEGS as u64 {
            let b = if i % 2 == 0 { StallBucket::Cache } else { StallBucket::TlbHit };
            tl.mark(Cycle::new(i + 1), b);
        }
        tl.mark(Cycle::new(100), StallBucket::Fault);
        assert_eq!(tl.end(), 100, "no cycles dropped when full");
        assert_eq!(tl.segments().count(), MAX_TIMELINE_SEGS);
    }

    #[test]
    fn attribution_is_exact_with_residual_in_other() {
        let mut tl = AccessTimeline::begin(Cycle::new(100));
        tl.mark(Cycle::new(110), StallBucket::TlbWalk);
        tl.mark(Cycle::new(150), StallBucket::DramQueue);
        let mut bd = StallBreakdown::default();
        // Stall window [105, 200): 5 walk + 40 queue + 50 uncovered.
        bd.attribute(&tl, Cycle::new(105), Cycle::new(200));
        assert_eq!(bd.get(StallBucket::TlbWalk), 5);
        assert_eq!(bd.get(StallBucket::DramQueue), 40);
        assert_eq!(bd.get(StallBucket::Other), 50);
        assert_eq!(bd.total(), 95);
    }

    #[test]
    fn seal_covers_to_completion() {
        let mut tl = AccessTimeline::single(Cycle::new(0), Cycle::new(10), StallBucket::Cache);
        tl.seal(Cycle::new(25));
        assert_eq!(tl.end(), 25);
        let mut empty = AccessTimeline::begin(Cycle::new(4));
        empty.seal(Cycle::new(6));
        assert_eq!(empty.segments().collect::<Vec<_>>(), vec![(4, 6, StallBucket::Other)]);
    }

    #[test]
    fn breakdown_merge_adds_per_bucket() {
        let mut a = StallBreakdown::default();
        a.add(StallBucket::Sync, 7);
        let mut b = StallBreakdown::default();
        b.add(StallBucket::Sync, 3);
        b.add(StallBucket::Fault, 1);
        a.merge(&b);
        assert_eq!(a.get(StallBucket::Sync), 10);
        assert_eq!(a.get(StallBucket::Fault), 1);
        assert_eq!(a.total(), 11);
    }
}
