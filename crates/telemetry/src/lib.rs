//! Deterministic, zero-overhead-when-off event telemetry for the Mosaic
//! simulator.
//!
//! # Design
//!
//! - **Typed events** ([`Event`]): plain `Copy` records, no strings, no
//!   heap, serialized to JSONL with a fixed key order so equal traces are
//!   byte-identical.
//! - **Thread-local gate**: tracing state lives in a thread-local
//!   (enabled flag + boxed sink), which keeps the parallel sweep executor
//!   deterministic — each worker thread traces only its own runs, and
//!   collected events are re-ordered by job submission index, so traces
//!   are byte-identical at any `--jobs` count.
//! - **Zero overhead when off**: instrumentation sites call
//!   [`emit`] with a *closure*; when tracing is disabled the closure is
//!   never invoked, no event is constructed, and no sink is touched. The
//!   enabled check is one `const`-initialized thread-local `Cell` load.
//! - **Stall attribution** ([`StallBreakdown`]): exact per-bucket
//!   decomposition of warp stall cycles, built from [`AccessTimeline`]s
//!   on the always-on path (cheap stack writes, no tracing required).
//!
//! See `DESIGN.md` §10 for the determinism contract and overhead policy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod progress;
pub mod stall;

pub use event::{escape_json, run_begin_jsonl, Event, SCHEMA};
pub use progress::Eta;
pub use stall::{AccessTimeline, StallBreakdown, StallBucket, MAX_TIMELINE_SEGS};

use std::cell::{Cell, RefCell};

/// Receives emitted events. Sinks run on the emitting thread; they must
/// not assume any global ordering across threads.
pub trait EventSink {
    /// Records one event.
    fn record(&mut self, ev: Event);

    /// Drains and returns buffered events, if the sink buffers any.
    /// In-memory sinks override this; streaming sinks use the default.
    fn take_events(&mut self) -> Vec<Event> {
        Vec::new()
    }

    /// Number of events currently buffered (0 for non-buffering sinks).
    /// Together with [`EventSink::truncate`] this lets the speculative
    /// engine bracket an in-place step and discard exactly the events an
    /// aborted step emitted; sinks used to capture speculation must
    /// implement both.
    fn buffered(&self) -> usize {
        0
    }

    /// Drops every buffered event past the first `len` (no-op for
    /// non-buffering sinks).
    fn truncate(&mut self, len: usize) {
        let _ = len;
    }
}

/// A sink that discards everything (the explicit "off" sink; with the
/// gate disabled it is never even called).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _ev: Event) {}
}

/// An unbounded in-memory sink; [`EventSink::take_events`] drains it.
#[derive(Debug, Default)]
pub struct MemSink {
    events: Vec<Event>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemSink::default()
    }
}

impl EventSink for MemSink {
    fn record(&mut self, ev: Event) {
        self.events.push(ev);
    }

    fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    fn buffered(&self) -> usize {
        self.events.len()
    }

    fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }
}

/// A bounded cycle-stamped ring buffer: keeps the most recent `capacity`
/// events and counts how many were overwritten. Useful for flight-
/// recorder style capture of long runs.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<Event>,
    capacity: usize,
    next: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink { buf: Vec::new(), capacity: capacity.max(1), next: 0, dropped: 0 }
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl EventSink for RingSink {
    fn record(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Drains the ring in arrival order (oldest surviving event first).
    fn take_events(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.capacity {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        self.buf.clear();
        self.next = 0;
        out
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<Box<dyn EventSink>>> = const { RefCell::new(None) };
}

/// Whether tracing is enabled on this thread. One thread-local load;
/// instrumentation may use it to skip building expensive event inputs.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Emits an event if tracing is enabled on this thread. The closure runs
/// only when enabled, so disabled call sites construct nothing.
#[inline]
pub fn emit(f: impl FnOnce() -> Event) {
    if enabled() {
        let ev = f();
        SINK.with(|sink| {
            if let Some(s) = sink.borrow_mut().as_mut() {
                s.record(ev);
            }
        });
    }
}

/// Turns the per-thread gate on or off.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Number of events buffered in this thread's sink (0 when no sink is
/// installed or the sink does not buffer). The speculative engine reads
/// this before an in-place step so [`truncate_sink`] can discard exactly
/// the events an aborted step emitted.
pub fn sink_len() -> usize {
    SINK.with(|s| s.borrow().as_ref().map_or(0, |sink| sink.buffered()))
}

/// Truncates this thread's sink to its first `len` buffered events (the
/// abort half of the [`sink_len`] bracket).
pub fn truncate_sink(len: usize) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.truncate(len);
        }
    });
}

/// Installs (or removes) this thread's sink, returning the previous one.
/// Installing a sink does not enable the gate — [`set_enabled`] controls
/// that separately, which is what lets tests install a counting sink and
/// prove the disabled path never reaches it.
pub fn set_sink(sink: Option<Box<dyn EventSink>>) -> Option<Box<dyn EventSink>> {
    SINK.with(|s| std::mem::replace(&mut *s.borrow_mut(), sink))
}

/// A scoped tracing session: enables tracing into a [`MemSink`] on
/// creation, and restores the disabled/no-sink state on
/// [`TraceSession::finish`] (or drop). One session wraps one simulated
/// run on one worker thread.
#[derive(Debug)]
pub struct TraceSession {
    finished: bool,
}

impl TraceSession {
    /// Starts tracing on this thread into a fresh in-memory sink.
    pub fn start() -> Self {
        set_sink(Some(Box::new(MemSink::new())));
        set_enabled(true);
        TraceSession { finished: false }
    }

    /// Stops tracing and returns the captured events in emission order.
    pub fn finish(mut self) -> Vec<Event> {
        self.finished = true;
        set_enabled(false);
        match set_sink(None) {
            Some(mut sink) => sink.take_events(),
            None => Vec::new(),
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            set_enabled(false);
            set_sink(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event::Epoch { cycle, instructions: 0, stall_cycles: 0 }
    }

    #[test]
    fn disabled_emit_never_runs_the_closure() {
        set_enabled(false);
        let mut ran = false;
        emit(|| {
            ran = true;
            ev(0)
        });
        assert!(!ran);
    }

    #[test]
    fn session_captures_and_restores() {
        let session = TraceSession::start();
        assert!(enabled());
        emit(|| ev(1));
        emit(|| ev(2));
        let events = session.finish();
        assert_eq!(events, vec![ev(1), ev(2)]);
        assert!(!enabled());
        let mut captured = false;
        emit(|| {
            captured = true;
            ev(3)
        });
        assert!(!captured, "finish restores the disabled state");
    }

    #[test]
    fn dropped_session_restores_state() {
        {
            let _session = TraceSession::start();
            assert!(enabled());
        }
        assert!(!enabled());
        assert!(set_sink(None).is_none(), "drop removed the sink");
    }

    #[test]
    fn sink_len_and_truncate_bracket_speculation() {
        set_sink(Some(Box::new(MemSink::new())));
        set_enabled(true);
        emit(|| ev(1));
        let mark = sink_len();
        assert_eq!(mark, 1);
        emit(|| ev(2));
        emit(|| ev(3));
        assert_eq!(sink_len(), 3);
        // Abort: discard exactly the bracketed events.
        truncate_sink(mark);
        emit(|| ev(4));
        set_enabled(false);
        let events = set_sink(None).unwrap().take_events();
        assert_eq!(events, vec![ev(1), ev(4)]);
        // With no sink installed both are safe no-ops.
        assert_eq!(sink_len(), 0);
        truncate_sink(0);
    }

    #[test]
    fn ring_sink_keeps_newest_in_order() {
        let mut ring = RingSink::new(3);
        for c in 0..5 {
            ring.record(ev(c));
        }
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.take_events(), vec![ev(2), ev(3), ev(4)]);
        // Partially filled after drain.
        ring.record(ev(9));
        assert_eq!(ring.take_events(), vec![ev(9)]);
    }
}
