//! Chrome `trace_event` exporter: converts a JSONL trace into the JSON
//! array format that chrome://tracing and Perfetto load directly.
//!
//! Mapping:
//! - each `run_begin` line starts a new process (`pid`), labelled with
//!   the workload/manager names via `process_name` metadata;
//! - events with a duration (`warp_mem`, `page_walk`, `far_fault`,
//!   `dram_access`, `page_copy`) become complete events (`ph:"X"`) with
//!   `ts` = start cycle and `dur` = cycles (1 simulated cycle = 1 µs on
//!   the trace timeline);
//! - instantaneous events become instants (`ph:"i"`); `coalesce` /
//!   `splinter` carry no cycle and are placed at the last cycle seen.
//! - `tid` groups rows: per-SM rows for warp traffic, one row per
//!   subsystem (TLB, walker, DRAM, manager) otherwise.

use crate::json::{parse_object, Value};

/// Converts JSONL trace text into a Chrome `trace_event` JSON document.
/// Lines must already satisfy the schema (run `validate` first for
/// friendly errors); returns the first offending line otherwise.
pub fn jsonl_to_chrome(jsonl: &str) -> Result<String, String> {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut pid = 0u64;
    let mut cursor = 0u64; // last cycle seen, for untimestamped events
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_object(line).map_err(|e| format!("line {}: {}", idx + 1, e))?;
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| get(key).and_then(Value::as_num).unwrap_or(0);
        let tag = get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", idx + 1))?
            .to_string();

        let mut push = |record: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&record);
        };

        match tag.as_str() {
            "run_begin" => {
                pid += 1;
                cursor = 0;
                let workload = get("workload").and_then(Value::as_str).unwrap_or("?");
                let manager = get("manager").and_then(Value::as_str).unwrap_or("?");
                push(format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{} [{}]\"}}}}",
                    crate::escape_json(workload),
                    crate::escape_json(manager)
                ));
            }
            "warp_mem" => {
                let (ts, done) = (num("issue"), num("done"));
                cursor = cursor.max(done);
                push(complete(
                    pid,
                    &format!("sm{}", num("sm")),
                    "warp_mem",
                    ts,
                    done,
                    &format!("\"asid\":{},\"transactions\":{}", num("asid"), num("transactions")),
                ));
            }
            "page_walk" => {
                let (ts, done) = (num("issue"), num("done"));
                cursor = cursor.max(done);
                push(complete(
                    pid,
                    "walker",
                    "page_walk",
                    ts,
                    done,
                    &format!("\"asid\":{},\"vpn\":{}", num("asid"), num("vpn")),
                ));
            }
            "far_fault" => {
                let (ts, done) = (num("cycle"), num("done"));
                cursor = cursor.max(done);
                push(complete(
                    pid,
                    "manager",
                    "far_fault",
                    ts,
                    done,
                    &format!("\"asid\":{},\"vpn\":{}", num("asid"), num("vpn")),
                ));
            }
            "dram_access" => {
                let (ts, done) = (num("cycle"), num("done"));
                cursor = cursor.max(done);
                push(complete(
                    pid,
                    "dram",
                    "dram_access",
                    ts,
                    done,
                    &format!(
                        "\"service\":{},\"row_hit\":{}",
                        num("service"),
                        get("row_hit").map(|v| *v == Value::Bool(true)).unwrap_or(false)
                    ),
                ));
            }
            "page_copy" => {
                let (ts, done) = (num("cycle"), num("done"));
                cursor = cursor.max(done);
                push(complete(
                    pid,
                    "dram",
                    "page_copy",
                    ts,
                    done,
                    &format!(
                        "\"bulk\":{}",
                        get("bulk").map(|v| *v == Value::Bool(true)).unwrap_or(false)
                    ),
                ));
            }
            "coalesce" | "splinter" => {
                push(instant(
                    pid,
                    "manager",
                    &tag,
                    cursor,
                    &format!("\"asid\":{},\"lpn\":{}", num("asid"), num("lpn")),
                ));
            }
            "shootdown" => {
                let ts = num("cycle");
                cursor = cursor.max(ts);
                push(instant(
                    pid,
                    "manager",
                    "shootdown",
                    ts,
                    &format!("\"asid\":{},\"lpn\":{}", num("asid"), num("lpn")),
                ));
            }
            "page_evict" => {
                let ts = num("cycle");
                cursor = cursor.max(ts);
                push(instant(
                    pid,
                    "manager",
                    "page_evict",
                    ts,
                    &format!(
                        "\"asid\":{},\"lpn\":{},\"pages\":{}",
                        num("asid"),
                        num("lpn"),
                        num("pages")
                    ),
                ));
            }
            "page_writeback" => {
                let (ts, done) = (num("cycle"), num("done"));
                cursor = cursor.max(done);
                push(complete(
                    pid,
                    "iobus",
                    "page_writeback",
                    ts,
                    done,
                    &format!("\"bytes\":{}", num("bytes")),
                ));
            }
            "tlb_lookup" => {
                let ts = num("cycle");
                cursor = cursor.max(ts);
                push(instant(
                    pid,
                    &format!("tlb-l{}", num("level")),
                    "tlb_lookup",
                    ts,
                    &format!(
                        "\"sm\":{},\"asid\":{},\"hit\":{}",
                        num("sm"),
                        num("asid"),
                        get("hit").map(|v| *v == Value::Bool(true)).unwrap_or(false)
                    ),
                ));
            }
            "phase_begin" | "phase_end" | "epoch" => {
                let ts = num("cycle");
                cursor = cursor.max(ts);
                let args = match tag.as_str() {
                    "epoch" => format!(
                        "\"instructions\":{},\"stall_cycles\":{}",
                        num("instructions"),
                        num("stall_cycles")
                    ),
                    _ => format!("\"phase\":{}", num("phase")),
                };
                push(instant(pid, "run", &tag, ts, &args));
            }
            other => return Err(format!("line {}: unknown event type \"{other}\"", idx + 1)),
        }
    }
    out.push_str("]}");
    Ok(out)
}

fn complete(pid: u64, tid: &str, name: &str, ts: u64, done: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":\"{tid}\",\"name\":\"{name}\",\
         \"ts\":{ts},\"dur\":{},\"args\":{{{args}}}}}",
        done.saturating_sub(ts).max(1)
    )
}

fn instant(pid: u64, tid: &str, name: &str, ts: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":\"{tid}\",\"name\":\"{name}\",\
         \"ts\":{ts},\"args\":{{{args}}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_begin_jsonl, Event};

    #[test]
    fn round_trips_a_small_trace() {
        let mut jsonl = String::new();
        jsonl.push_str(&run_begin_jsonl("MM", "Mosaic"));
        jsonl.push('\n');
        for ev in [
            Event::PhaseBegin { phase: 0, cycle: 0 },
            Event::WarpMem { sm: 0, asid: 1, issue: 10, done: 300, transactions: 2 },
            Event::TlbLookup { level: 1, sm: 0, asid: 1, cycle: 11, hit: false },
            Event::PageWalk { asid: 1, vpn: 7, issue: 20, done: 180 },
            Event::DramAccess { cycle: 200, done: 260, service: 40, row_hit: true },
            Event::Coalesce { asid: 1, lpn: 3 },
            Event::Shootdown { asid: 1, lpn: 3, cycle: 280 },
            Event::PhaseEnd { phase: 0, cycle: 300 },
        ] {
            jsonl.push_str(&ev.to_jsonl());
            jsonl.push('\n');
        }
        let chrome = jsonl_to_chrome(&jsonl).expect("export succeeds");
        assert!(chrome.starts_with("{\"displayTimeUnit\""));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"process_name\""));
        // The untimestamped coalesce lands at the last-seen cycle (300).
        assert!(chrome.contains("\"name\":\"coalesce\",\"ts\":300"));
    }

    #[test]
    fn rejects_unknown_types_and_bad_lines() {
        assert!(jsonl_to_chrome("{\"type\":\"bogus\"}").is_err());
        assert!(jsonl_to_chrome("not json").is_err());
        assert!(jsonl_to_chrome("\n\n").is_ok(), "blank lines are skipped");
    }
}
