//! A minimal JSON parser for flat trace objects (no external deps).
//!
//! Trace lines are flat objects whose values are strings, unsigned
//! integers, or booleans — nothing nested. [`parse_object`] parses one
//! such line into an ordered key/value list; `mosaic-trace validate` and
//! the Chrome exporter are built on it.

/// A parsed JSON scalar value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string (unescaped).
    Str(String),
    /// A non-negative JSON integer.
    Num(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl Value {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`) into its key/value pairs
/// in source order. Values must be strings, non-negative integers, or
/// booleans; anything else (nesting, floats, negatives, trailing data)
/// is an error described by the returned message.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!("expected ',' or '}}', got {:?}", other.map(char::from)))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}', got {:?} at byte {}",
                char::from(want),
                other.map(char::from),
                self.pos
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            let v = (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                            code = code * 16 + v;
                        }
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("bad escape {:?}", other.map(char::from))),
                },
                Some(b) if b < 0x20 => return Err("raw control character in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 byte-by-byte; input came from &str
                    // so sequences are valid.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err("floats are not part of the trace schema".into());
                }
                let digits = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number")?;
                digits.parse::<u64>().map(Value::Num).map_err(|e| format!("bad number: {e}"))
            }
            other => Err(format!(
                "expected string, integer, or bool, got {:?} at byte {}",
                other.map(char::from),
                self.pos
            )),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected literal '{lit}' at byte {}", self.pos))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object_in_order() {
        let pairs =
            parse_object(r#"{"type":"warp_mem","sm":3,"hit":true,"name":"MM [x]"}"#).unwrap();
        assert_eq!(
            pairs,
            vec![
                ("type".into(), Value::Str("warp_mem".into())),
                ("sm".into(), Value::Num(3)),
                ("hit".into(), Value::Bool(true)),
                ("name".into(), Value::Str("MM [x]".into())),
            ]
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let pairs = parse_object(r#"{"k":"a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("a\"b\\c\ndAé".into()));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"k":1.5}"#).is_err());
        assert!(parse_object(r#"{"k":{}}"#).is_err());
        assert!(parse_object(r#"{"k":1} extra"#).is_err());
        assert!(parse_object(r#"{"k":01e}"#).is_err());
    }

    #[test]
    fn empty_object_is_ok() {
        assert_eq!(parse_object("{}").unwrap(), vec![]);
    }
}
