//! `mosaic-trace`: validate and convert JSONL traces produced by
//! `reproduce --trace`.
//!
//! ```text
//! mosaic-trace validate TRACE.jsonl
//! mosaic-trace chrome TRACE.jsonl -o OUT.json
//! ```

use std::process::ExitCode;

use mosaic_telemetry::chrome::jsonl_to_chrome;
use mosaic_telemetry::json::{parse_object, Value};
use mosaic_telemetry::SCHEMA;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mosaic-trace validate TRACE.jsonl\n  mosaic-trace chrome TRACE.jsonl -o OUT.json"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") => {
            let [_, path] = &args[..] else { return usage() };
            match std::fs::read_to_string(path) {
                Err(e) => {
                    eprintln!("mosaic-trace: cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
                Ok(text) => match validate(&text) {
                    Ok(count) => {
                        println!("{path}: {count} events OK");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("mosaic-trace: {path}: {e}");
                        ExitCode::FAILURE
                    }
                },
            }
        }
        Some("chrome") => {
            let [_, path, flag, out_path] = &args[..] else { return usage() };
            if flag != "-o" {
                return usage();
            }
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("mosaic-trace: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match jsonl_to_chrome(&text) {
                Ok(chrome) => {
                    if let Err(e) = std::fs::write(out_path, chrome) {
                        eprintln!("mosaic-trace: cannot write {out_path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {out_path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("mosaic-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Validates every line against the event schema: each line must parse
/// as a flat object, lead with a known `"type"`, and carry exactly that
/// type's key set in schema order. Returns the number of event lines.
fn validate(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = idx + 1;
        let pairs = parse_object(line).map_err(|e| format!("line {n}: {e}"))?;
        let Some(("type", Value::Str(tag))) = pairs.first().map(|(k, v)| (k.as_str(), v.clone()))
        else {
            return Err(format!("line {n}: first key must be \"type\""));
        };
        let Some((_, keys)) = SCHEMA.iter().find(|(t, _)| *t == tag) else {
            return Err(format!("line {n}: unknown event type \"{tag}\""));
        };
        let got: Vec<&str> = pairs.iter().skip(1).map(|(k, _)| k.as_str()).collect();
        if got != *keys {
            return Err(format!("line {n}: \"{tag}\" keys {got:?} do not match schema {keys:?}"));
        }
        count += 1;
    }
    if count == 0 {
        return Err("trace contains no events".into());
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::validate;
    use mosaic_telemetry::{run_begin_jsonl, Event};

    #[test]
    fn validate_accepts_schema_conformant_lines() {
        let mut text = run_begin_jsonl("MM", "Mosaic");
        text.push('\n');
        text.push_str(&Event::Epoch { cycle: 1, instructions: 2, stall_cycles: 3 }.to_jsonl());
        text.push('\n');
        assert_eq!(validate(&text), Ok(2));
    }

    #[test]
    fn validate_rejects_wrong_keys_and_unknown_types() {
        assert!(validate("{\"type\":\"epoch\",\"cycle\":1}").is_err());
        assert!(validate("{\"type\":\"nope\"}").is_err());
        assert!(validate("{\"cycle\":1}").is_err());
        assert!(validate("").is_err(), "empty traces are an error");
    }
}
