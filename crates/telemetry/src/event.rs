//! The typed event vocabulary and its JSONL encoding.
//!
//! Events are plain `Copy` records — no strings, no heap — so emitting
//! one into a memory sink is a bounded-cost array write and the null-sink
//! path allocates nothing. Run-level metadata that needs strings (the
//! workload and manager names) is written by the trace *writer* as a
//! `run_begin` JSONL line rather than carried inside [`Event`].

/// One structured simulator event. All cycle fields are absolute
/// simulated cycles; identifiers are the simulator's own (SM index,
/// `AppId`, large-page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A kernel phase started on every SM.
    PhaseBegin {
        /// Phase index within the run.
        phase: u32,
        /// Cycle the phase's SMs were released.
        cycle: u64,
    },
    /// A kernel phase finished (all SMs drained).
    PhaseEnd {
        /// Phase index within the run.
        phase: u32,
        /// Cycle the last SM finished.
        cycle: u64,
    },
    /// Periodic whole-GPU metric snapshot.
    Epoch {
        /// Snapshot cycle.
        cycle: u64,
        /// Instructions retired so far (all SMs, current phase set).
        instructions: u64,
        /// Stall cycles accumulated so far (all SMs).
        stall_cycles: u64,
    },
    /// One warp memory instruction, from issue to slowest transaction.
    WarpMem {
        /// Issuing SM index.
        sm: u32,
        /// Address space of the issuing app.
        asid: u16,
        /// Issue cycle.
        issue: u64,
        /// Completion cycle of the slowest transaction.
        done: u64,
        /// Coalesced transactions in the instruction.
        transactions: u32,
    },
    /// A TLB probe at L1 or L2.
    TlbLookup {
        /// TLB level (1 or 2).
        level: u8,
        /// Probing SM index.
        sm: u32,
        /// Address space probed.
        asid: u16,
        /// Probe cycle.
        cycle: u64,
        /// Whether the probe hit.
        hit: bool,
    },
    /// A page-table walk issued by the walker (fresh, not coalesced).
    PageWalk {
        /// Address space walked.
        asid: u16,
        /// Virtual page number walked.
        vpn: u64,
        /// Cycle the walk was requested.
        issue: u64,
        /// Cycle the walk completed.
        done: u64,
    },
    /// A far fault serviced by the manager (demand paging / migration).
    FarFault {
        /// Faulting address space.
        asid: u16,
        /// Faulting virtual page number.
        vpn: u64,
        /// Cycle the fault was raised.
        cycle: u64,
        /// Cycle the fault service completed.
        done: u64,
    },
    /// One DRAM data access (row activate + burst).
    DramAccess {
        /// Cycle the request reached DRAM.
        cycle: u64,
        /// Cycle the data burst completed.
        done: u64,
        /// Pure service cycles (row access + burst), excluding queueing.
        service: u64,
        /// Whether the access hit the open row.
        row_hit: bool,
    },
    /// A page copy executed in DRAM (migration or compaction).
    PageCopy {
        /// Cycle the copy was requested.
        cycle: u64,
        /// Cycle the copy completed.
        done: u64,
        /// Whether the in-DRAM bulk path was used (vs. the narrow
        /// read-modify-write path).
        bulk: bool,
    },
    /// The manager coalesced a large-page region.
    Coalesce {
        /// Owning address space.
        asid: u16,
        /// Coalesced large-page number.
        lpn: u64,
    },
    /// The manager splintered a large-page region.
    Splinter {
        /// Owning address space.
        asid: u16,
        /// Splintered large-page number.
        lpn: u64,
    },
    /// A TLB shootdown was broadcast to every SM.
    Shootdown {
        /// Address space whose mappings were invalidated.
        asid: u16,
        /// Large-page number invalidated.
        lpn: u64,
        /// Cycle the shootdown was raised.
        cycle: u64,
    },
    /// One large frame was evicted under memory pressure.
    PageEvict {
        /// Address space that owned the evicted frame.
        asid: u16,
        /// Large-page number whose translations were torn down.
        lpn: u64,
        /// Base pages unmapped by the eviction.
        pages: u32,
        /// Cycle the eviction was performed.
        cycle: u64,
    },
    /// Dirty evicted pages were written back over the I/O bus.
    PageWriteback {
        /// Bytes written back.
        bytes: u64,
        /// Cycle the write-back was enqueued.
        cycle: u64,
        /// Cycle the transfer completed on the wire.
        done: u64,
    },
}

impl Event {
    /// The event's schema type tag (the JSONL `"type"` value).
    pub fn type_tag(&self) -> &'static str {
        match self {
            Event::PhaseBegin { .. } => "phase_begin",
            Event::PhaseEnd { .. } => "phase_end",
            Event::Epoch { .. } => "epoch",
            Event::WarpMem { .. } => "warp_mem",
            Event::TlbLookup { .. } => "tlb_lookup",
            Event::PageWalk { .. } => "page_walk",
            Event::FarFault { .. } => "far_fault",
            Event::DramAccess { .. } => "dram_access",
            Event::PageCopy { .. } => "page_copy",
            Event::Coalesce { .. } => "coalesce",
            Event::Splinter { .. } => "splinter",
            Event::Shootdown { .. } => "shootdown",
            Event::PageEvict { .. } => "page_evict",
            Event::PageWriteback { .. } => "page_writeback",
        }
    }

    /// Serializes the event as one JSONL object. Keys are emitted in the
    /// fixed schema order, so equal events always produce identical
    /// bytes (the golden-trace digests rely on this).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"type\":\"");
        s.push_str(self.type_tag());
        s.push('"');
        let mut field = |key: &str, value: String| {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&value);
        };
        match *self {
            Event::PhaseBegin { phase, cycle } | Event::PhaseEnd { phase, cycle } => {
                field("phase", phase.to_string());
                field("cycle", cycle.to_string());
            }
            Event::Epoch { cycle, instructions, stall_cycles } => {
                field("cycle", cycle.to_string());
                field("instructions", instructions.to_string());
                field("stall_cycles", stall_cycles.to_string());
            }
            Event::WarpMem { sm, asid, issue, done, transactions } => {
                field("sm", sm.to_string());
                field("asid", asid.to_string());
                field("issue", issue.to_string());
                field("done", done.to_string());
                field("transactions", transactions.to_string());
            }
            Event::TlbLookup { level, sm, asid, cycle, hit } => {
                field("level", level.to_string());
                field("sm", sm.to_string());
                field("asid", asid.to_string());
                field("cycle", cycle.to_string());
                field("hit", hit.to_string());
            }
            Event::PageWalk { asid, vpn, issue, done } => {
                field("asid", asid.to_string());
                field("vpn", vpn.to_string());
                field("issue", issue.to_string());
                field("done", done.to_string());
            }
            Event::FarFault { asid, vpn, cycle, done } => {
                field("asid", asid.to_string());
                field("vpn", vpn.to_string());
                field("cycle", cycle.to_string());
                field("done", done.to_string());
            }
            Event::DramAccess { cycle, done, service, row_hit } => {
                field("cycle", cycle.to_string());
                field("done", done.to_string());
                field("service", service.to_string());
                field("row_hit", row_hit.to_string());
            }
            Event::PageCopy { cycle, done, bulk } => {
                field("cycle", cycle.to_string());
                field("done", done.to_string());
                field("bulk", bulk.to_string());
            }
            Event::Coalesce { asid, lpn } | Event::Splinter { asid, lpn } => {
                field("asid", asid.to_string());
                field("lpn", lpn.to_string());
            }
            Event::Shootdown { asid, lpn, cycle } => {
                field("asid", asid.to_string());
                field("lpn", lpn.to_string());
                field("cycle", cycle.to_string());
            }
            Event::PageEvict { asid, lpn, pages, cycle } => {
                field("asid", asid.to_string());
                field("lpn", lpn.to_string());
                field("pages", pages.to_string());
                field("cycle", cycle.to_string());
            }
            Event::PageWriteback { bytes, cycle, done } => {
                field("bytes", bytes.to_string());
                field("cycle", cycle.to_string());
                field("done", done.to_string());
            }
        }
        s.push('}');
        s
    }
}

/// The JSONL schema: every event type with its exact, ordered key set
/// (excluding the leading `"type"`). `mosaic-trace validate` checks each
/// line's key set against this table.
pub const SCHEMA: &[(&str, &[&str])] = &[
    ("run_begin", &["workload", "manager"]),
    ("phase_begin", &["phase", "cycle"]),
    ("phase_end", &["phase", "cycle"]),
    ("epoch", &["cycle", "instructions", "stall_cycles"]),
    ("warp_mem", &["sm", "asid", "issue", "done", "transactions"]),
    ("tlb_lookup", &["level", "sm", "asid", "cycle", "hit"]),
    ("page_walk", &["asid", "vpn", "issue", "done"]),
    ("far_fault", &["asid", "vpn", "cycle", "done"]),
    ("dram_access", &["cycle", "done", "service", "row_hit"]),
    ("page_copy", &["cycle", "done", "bulk"]),
    ("coalesce", &["asid", "lpn"]),
    ("splinter", &["asid", "lpn"]),
    ("shootdown", &["asid", "lpn", "cycle"]),
    ("page_evict", &["asid", "lpn", "pages", "cycle"]),
    ("page_writeback", &["bytes", "cycle", "done"]),
];

/// Renders the `run_begin` metadata line that precedes each run's events
/// in a JSONL trace.
pub fn run_begin_jsonl(workload: &str, manager: &str) -> String {
    format!(
        "{{\"type\":\"run_begin\",\"workload\":\"{}\",\"manager\":\"{}\"}}",
        escape_json(workload),
        escape_json(manager)
    )
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_keys_match_schema() {
        let samples = [
            Event::PhaseBegin { phase: 0, cycle: 1 },
            Event::PhaseEnd { phase: 0, cycle: 2 },
            Event::Epoch { cycle: 3, instructions: 4, stall_cycles: 5 },
            Event::WarpMem { sm: 0, asid: 1, issue: 2, done: 3, transactions: 4 },
            Event::TlbLookup { level: 1, sm: 0, asid: 1, cycle: 2, hit: true },
            Event::PageWalk { asid: 1, vpn: 2, issue: 3, done: 4 },
            Event::FarFault { asid: 1, vpn: 2, cycle: 3, done: 4 },
            Event::DramAccess { cycle: 1, done: 2, service: 1, row_hit: false },
            Event::PageCopy { cycle: 1, done: 2, bulk: true },
            Event::Coalesce { asid: 1, lpn: 2 },
            Event::Splinter { asid: 1, lpn: 2 },
            Event::Shootdown { asid: 1, lpn: 2, cycle: 3 },
            Event::PageEvict { asid: 1, lpn: 2, pages: 512, cycle: 3 },
            Event::PageWriteback { bytes: 4096, cycle: 1, done: 2 },
        ];
        for ev in samples {
            let line = ev.to_jsonl();
            let parsed = crate::json::parse_object(&line).expect("valid JSON");
            let (_, keys) = SCHEMA
                .iter()
                .find(|(tag, _)| *tag == ev.type_tag())
                .expect("every event type is in SCHEMA");
            let got: Vec<&str> = parsed.iter().skip(1).map(|(k, _)| k.as_str()).collect();
            assert_eq!(&got[..], *keys, "key order for {}", ev.type_tag());
        }
        // SCHEMA covers exactly the 14 event types plus run_begin.
        assert_eq!(SCHEMA.len(), samples.len() + 1);
    }

    #[test]
    fn run_begin_escapes_metadata() {
        let line = run_begin_jsonl("MM \"x\"", "Mosaic");
        assert_eq!(
            line,
            "{\"type\":\"run_begin\",\"workload\":\"MM \\\"x\\\"\",\"manager\":\"Mosaic\"}"
        );
        assert!(crate::json::parse_object(&line).is_ok());
    }
}
