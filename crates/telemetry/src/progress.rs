//! Progress/ETA estimation for long sweeps and campaigns.
//!
//! The estimator is deliberately simple — linear extrapolation of
//! elapsed wall time over completed jobs — because simulation points in
//! one sweep are similarly sized and the audience is a human watching
//! stderr, not a scheduler. The pure core ([`remaining`]) is separated
//! from the wall-clock wrapper ([`Eta`]) so it can be unit-tested
//! without sleeping.

use std::time::{Duration, Instant};

/// Estimated time remaining after `done` of `total` jobs took `elapsed`.
///
/// Returns `None` while no job has finished (nothing to extrapolate
/// from) and `Some(0)` once `done >= total`.
pub fn remaining(total: usize, done: usize, elapsed: Duration) -> Option<Duration> {
    if done == 0 {
        return None;
    }
    if done >= total {
        return Some(Duration::ZERO);
    }
    let per_job = elapsed.as_secs_f64() / done as f64;
    Some(Duration::from_secs_f64(per_job * (total - done) as f64))
}

/// Renders a duration as a compact human figure: `~950ms`, `~12s`,
/// `~3m40s`, `~2h05m`.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs();
    if secs == 0 {
        format!("~{}ms", d.as_millis())
    } else if secs < 100 {
        format!("~{secs}s")
    } else if secs < 6000 {
        format!("~{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("~{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

/// Wall-clock ETA tracker for a fixed-size batch of jobs.
#[derive(Debug, Clone, Copy)]
pub struct Eta {
    total: usize,
    started: Instant,
}

impl Eta {
    /// Starts the clock for a batch of `total` jobs.
    pub fn start(total: usize) -> Self {
        Eta { total, started: Instant::now() }
    }

    /// Time elapsed since [`Eta::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Estimated time remaining with `done` jobs finished.
    pub fn remaining(&self, done: usize) -> Option<Duration> {
        remaining(self.total, done, self.elapsed())
    }

    /// Renders `"ETA ~12s"`, or `""` while no estimate exists yet.
    pub fn render(&self, done: usize) -> String {
        match self.remaining(done) {
            Some(left) => format!("ETA {}", fmt_duration(left)),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_extrapolates_linearly() {
        assert_eq!(remaining(10, 0, Duration::from_secs(5)), None);
        assert_eq!(remaining(10, 5, Duration::from_secs(5)), Some(Duration::from_secs(5)));
        assert_eq!(remaining(10, 10, Duration::from_secs(5)), Some(Duration::ZERO));
        assert_eq!(remaining(10, 12, Duration::from_secs(5)), Some(Duration::ZERO));
        let left = remaining(4, 1, Duration::from_secs(3)).unwrap();
        assert_eq!(left, Duration::from_secs(9));
    }

    #[test]
    fn durations_render_compactly() {
        assert_eq!(fmt_duration(Duration::from_millis(950)), "~950ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "~12s");
        assert_eq!(fmt_duration(Duration::from_secs(220)), "~3m40s");
        assert_eq!(fmt_duration(Duration::from_secs(7500)), "~2h05m");
    }

    #[test]
    fn eta_renders_once_jobs_complete() {
        let eta = Eta::start(4);
        assert_eq!(eta.render(0), "");
        let rendered = eta.render(2);
        assert!(rendered.starts_with("ETA ~"), "got {rendered:?}");
    }
}
