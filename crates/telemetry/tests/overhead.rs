//! Overhead smoke: with tracing disabled, a fixed 10k-cycle emit loop
//! must execute zero sink calls and allocate no per-event heap memory.
//!
//! Everything lives in one test function: the allocation counter is a
//! process-global, so splitting the phases into separate (parallel)
//! tests would let one test's allocations bleed into another's window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mosaic_telemetry::{emit, set_enabled, set_sink, Event, EventSink};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`, only counting calls.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

static RECORDED: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct CountingSink;

impl EventSink for CountingSink {
    fn record(&mut self, _ev: Event) {
        RECORDED.fetch_add(1, Ordering::Relaxed);
    }
}

const CYCLES: u64 = 10_000;

fn run_fixed_cycles() {
    for cycle in 0..CYCLES {
        emit(|| Event::WarpMem {
            sm: (cycle % 16) as u32,
            asid: 0,
            issue: cycle,
            done: cycle + 300,
            transactions: 1,
        });
    }
}

#[test]
fn null_path_is_zero_sink_calls_and_zero_allocations() {
    // A counting sink is installed but the gate stays off: the disabled
    // path must never reach it.
    set_enabled(false);
    let previous = set_sink(Some(Box::new(CountingSink)));
    assert!(previous.is_none());

    // Warm up so lazy one-time allocations (if any) happen outside the
    // measured window.
    run_fixed_cycles();

    RECORDED.store(0, Ordering::SeqCst);
    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    run_fixed_cycles();
    let allocs_after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(RECORDED.load(Ordering::SeqCst), 0, "disabled tracing must not call the sink");
    assert_eq!(allocs_after - allocs_before, 0, "disabled tracing must not allocate per event");

    // Sanity check the harness itself: enabled, every emit reaches the
    // sink exactly once — so the zero above is meaningful.
    set_enabled(true);
    run_fixed_cycles();
    set_enabled(false);
    assert_eq!(RECORDED.load(Ordering::SeqCst), CYCLES, "enabled tracing records every event");
    assert!(set_sink(None).is_some());
}
