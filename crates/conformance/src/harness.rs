//! Lockstep runners: replay an op schedule against the real
//! implementation and its oracle, comparing observable state after every
//! step.
//!
//! The VM suite drives a real [`PageTable`] + [`Tlb`] against
//! [`OraclePageTable`] + [`OracleTlb`]. The manager suite drives a full
//! [`MemoryManager`] against a [`FrameLedger`] that re-derives every
//! externally-promised number (fault counts, transfer bytes, touched
//! bytes, event/counter agreement) from the op stream alone.

use crate::ops::{MgrOp, VmOp};
use crate::oracle::{OraclePageTable, OracleTlb};
use mosaic_core::{
    GpuMmuManager, MemError, MemoryManager, MgmtEvent, MigratingConfig, MigratingManager,
    MosaicConfig, MosaicManager,
};
use mosaic_sim_core::AuditReport;
use mosaic_vm::{
    AppId, LargePageNum, PageSize, PageTable, Tlb, TlbConfig, VirtPageNum, LARGE_PAGE_SIZE,
};
use std::collections::BTreeSet;
use std::fmt;

/// TLB geometry flavors the VM suite rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmConfigKind {
    /// 4-entry 2-way base array + 2-entry fully-associative large array:
    /// small enough that random schedules exercise eviction constantly.
    Tiny,
    /// The paper's per-SM L1 TLB geometry.
    PaperL1,
    /// The paper's shared L2 TLB geometry.
    PaperL2,
}

impl VmConfigKind {
    /// The real TLB geometry for this flavor.
    pub fn tlb_config(self) -> TlbConfig {
        match self {
            VmConfigKind::Tiny => TlbConfig {
                base_entries: 4,
                base_assoc: 2,
                large_entries: 2,
                large_assoc: 0,
                latency: 1,
            },
            VmConfigKind::PaperL1 => TlbConfig::paper_l1(),
            VmConfigKind::PaperL2 => TlbConfig::paper_l2(),
        }
    }
}

/// Fault injected into the *driver* of the real TLB, proving the harness
/// detects the class of bug it exists for (none of these touch the
/// implementations themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Honest driving.
    #[default]
    None,
    /// Skip every `flush_large` call on the real TLB — the stale-entry
    /// bug a missed splinter shootdown would cause.
    SkipFlushLarge,
    /// Fill the real TLB's base array regardless of the translation's
    /// page size.
    FillIgnoresSize,
    /// Probe the real TLB with the side-effect-free `peek` instead of
    /// `lookup`, so hits never refresh recency.
    LookupSkipsRecency,
}

/// A detected real-vs-oracle disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based index of the op that exposed the disagreement.
    pub step: usize,
    /// The op, rendered.
    pub op: String,
    /// What disagreed.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} ({}): {}", self.step, self.op, self.detail)
    }
}

/// Manager flavors the manager suite rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgrKind {
    /// Mosaic with default CAC.
    MosaicDefault,
    /// Mosaic with CAC-BC (bulk-copy migrations).
    MosaicBulk,
    /// Mosaic with the Ideal CAC reference.
    MosaicIdeal,
    /// Mosaic with CAC disabled.
    MosaicNoCac,
    /// The GPU-MMU baseline, 4 KB pages.
    GpuMmuBase,
    /// The GPU-MMU baseline, 2 MB-only pages.
    GpuMmuLarge,
    /// The CPU-style migrating coalescer.
    Migrating,
}

/// The VM-suite asid used for page-table-coupled ops.
const PT_ASID: AppId = AppId(0);

fn vm_state_digest(
    tlb: &Tlb,
    oracle: &OracleTlb,
    table: &PageTable,
    otable: &OraclePageTable,
) -> Option<String> {
    if tlb.occupancy() != oracle.occupancy() {
        return Some(format!(
            "tlb occupancy: real {} oracle {}",
            tlb.occupancy(),
            oracle.occupancy()
        ));
    }
    let real: BTreeSet<(u16, u64, bool)> =
        tlb.entries().map(|(a, p, s)| (a.0, p, s == PageSize::Large)).collect();
    let want: BTreeSet<(u16, u64, bool)> =
        oracle.entries().map(|(a, p, s)| (a.0, p, s == PageSize::Large)).collect();
    if real != want {
        let missing: Vec<_> = want.difference(&real).collect();
        let extra: Vec<_> = real.difference(&want).collect();
        return Some(format!("tlb entries: missing {missing:?}, unexpected {extra:?}"));
    }
    if table.mapped_base_pages() != otable.mapped_base_pages() {
        return Some(format!(
            "mapped_base_pages: real {} oracle {}",
            table.mapped_base_pages(),
            otable.mapped_base_pages()
        ));
    }
    let real_maps: Vec<_> = table.mappings().collect();
    let want_maps = otable.mappings();
    if real_maps != want_maps {
        return Some(format!("mappings: real {real_maps:?} oracle {want_maps:?}"));
    }
    let mut report = AuditReport::new();
    mosaic_sim_core::AuditInvariants::audit(table, &mut report);
    if !report.is_clean() {
        return Some(format!("page-table audit: {:?}", report.violations()));
    }
    None
}

/// Replays `ops` against a real page table + TLB and the oracles in
/// lockstep, comparing op results and full observable state after every
/// step.
///
/// # Errors
///
/// The first [`Divergence`] found, if any.
pub fn run_vm_case(
    config: VmConfigKind,
    ops: &[VmOp],
    mutation: Mutation,
) -> Result<(), Divergence> {
    let mut table = PageTable::new(PT_ASID);
    let mut otable = OraclePageTable::new();
    let mut tlb = Tlb::new(config.tlb_config());
    let mut oracle = OracleTlb::new(&config.tlb_config());

    for (step, &op) in ops.iter().enumerate() {
        let diverge = |detail: String| Divergence { step, op: format!("VmOp::{op:?}"), detail };
        match op {
            VmOp::Map { vpn, pfn } => {
                let vpn = VirtPageNum(vpn);
                // `map_base` into a coalesced region is only legal for the
                // contiguous slot (the managers' hole-restore contract);
                // the driver must honor it, so redirect — and check both
                // sides agree on the coalesced frame while at it.
                let rc = table.large_frame_of(vpn.large_page());
                let oc = otable.large_frame_of(vpn.large_page());
                if rc != oc {
                    return Err(diverge(format!("large_frame_of: real {rc:?} oracle {oc:?}")));
                }
                let pfn = match rc {
                    Some(lf) => lf.base_frame(vpn.index_in_large()),
                    None => mosaic_vm::PhysFrameNum(pfn),
                };
                let r = table.map_base(vpn, pfn);
                let o = otable.map_base(vpn, pfn);
                if r != o {
                    return Err(diverge(format!("map_base: real {r:?} oracle {o:?}")));
                }
            }
            VmOp::MapRegion { lpn, lf } => {
                let lpn = LargePageNum(lpn);
                let rc = table.large_frame_of(lpn);
                let oc = otable.large_frame_of(lpn);
                if rc != oc {
                    return Err(diverge(format!("large_frame_of: real {rc:?} oracle {oc:?}")));
                }
                // Same hole-restore contract as Map: a coalesced region
                // only ever accepts its own contiguous frame back.
                let lf = rc.unwrap_or(mosaic_vm::LargeFrameNum(lf));
                for i in 0..mosaic_vm::BASE_PAGES_PER_LARGE_PAGE {
                    let r = table.map_base(lpn.base_page(i), lf.base_frame(i));
                    let o = otable.map_base(lpn.base_page(i), lf.base_frame(i));
                    if r != o {
                        return Err(diverge(format!("map_base slot {i}: real {r:?} oracle {o:?}")));
                    }
                }
            }
            VmOp::Unmap { vpn } => {
                let r = table.unmap_base(VirtPageNum(vpn));
                let o = otable.unmap_base(VirtPageNum(vpn));
                if r != o {
                    return Err(diverge(format!("unmap_base: real {r:?} oracle {o:?}")));
                }
            }
            VmOp::Coalesce { lpn } => {
                let r = table.coalesce(LargePageNum(lpn));
                let o = otable.coalesce(LargePageNum(lpn));
                if r != o {
                    return Err(diverge(format!("coalesce: real {r:?} oracle {o:?}")));
                }
            }
            VmOp::Splinter { lpn } => {
                let r = table.splinter(LargePageNum(lpn));
                let o = otable.splinter(LargePageNum(lpn));
                if r != o {
                    return Err(diverge(format!("splinter: real {r} oracle {o}")));
                }
                if r {
                    // Section 4.4: splintering invalidates the large TLB
                    // entry. The mutation models forgetting exactly that.
                    let addr = LargePageNum(lpn).base_page(0).addr();
                    if mutation != Mutation::SkipFlushLarge {
                        tlb.flush_large(PT_ASID, addr);
                    }
                    oracle.flush_large(PT_ASID, addr);
                }
            }
            VmOp::Translate { vpn } => {
                let addr = VirtPageNum(vpn).addr();
                let r = table.translate(addr);
                let o = otable.translate(addr);
                if r != o {
                    return Err(diverge(format!("translate: real {r:?} oracle {o:?}")));
                }
                if let Ok(t) = r {
                    // The walker's fill path: cache what was translated.
                    let size =
                        if mutation == Mutation::FillIgnoresSize { PageSize::Base } else { t.size };
                    let rf = tlb.fill(PT_ASID, addr, size);
                    let of = oracle.fill(PT_ASID, addr, t.size);
                    if rf != of {
                        return Err(diverge(format!(
                            "fill after translate: real evicted {rf:?} oracle {of:?}"
                        )));
                    }
                }
            }
            VmOp::Lookup { asid, page } => {
                let (asid, addr) = (AppId(asid), VirtPageNum(page).addr());
                // peek must agree with the oracle *and* must not disturb
                // replacement state — the lookup after it is the one that
                // refreshes recency.
                let rp = tlb.peek(asid, addr);
                let op_ = oracle.peek(asid, addr);
                if rp != op_ {
                    return Err(diverge(format!("peek: real {rp:?} oracle {op_:?}")));
                }
                let r = if mutation == Mutation::LookupSkipsRecency {
                    tlb.peek(asid, addr)
                } else {
                    tlb.lookup(asid, addr)
                };
                let o = oracle.lookup(asid, addr);
                if r != o {
                    return Err(diverge(format!("lookup: real {r:?} oracle {o:?}")));
                }
            }
            VmOp::Fill { asid, page, large } => {
                let (asid, addr) = (AppId(asid), VirtPageNum(page).addr());
                let size = if large { PageSize::Large } else { PageSize::Base };
                let mutated =
                    if mutation == Mutation::FillIgnoresSize { PageSize::Base } else { size };
                let r = tlb.fill(asid, addr, mutated);
                let o = oracle.fill(asid, addr, size);
                if r != o {
                    return Err(diverge(format!("fill: real evicted {r:?} oracle {o:?}")));
                }
            }
            VmOp::FlushLarge { asid, page } => {
                let (asid, addr) = (AppId(asid), VirtPageNum(page).addr());
                let o = oracle.flush_large(asid, addr);
                if mutation != Mutation::SkipFlushLarge {
                    let r = tlb.flush_large(asid, addr);
                    if r != o {
                        return Err(diverge(format!("flush_large: real {r} oracle {o}")));
                    }
                }
            }
            VmOp::FlushBase { asid, page } => {
                let (asid, addr) = (AppId(asid), VirtPageNum(page).addr());
                let r = tlb.flush_base(asid, addr);
                let o = oracle.flush_base(asid, addr);
                if r != o {
                    return Err(diverge(format!("flush_base: real {r} oracle {o}")));
                }
            }
            VmOp::FlushAsid { asid } => {
                let r = tlb.flush_asid(AppId(asid));
                let o = oracle.flush_asid(AppId(asid));
                if r != o {
                    return Err(diverge(format!("flush_asid: real {r} oracle {o}")));
                }
            }
            VmOp::FlushAll => {
                let r = tlb.flush_all();
                let o = oracle.flush_all();
                if r != o {
                    return Err(diverge(format!("flush_all: real {r} oracle {o}")));
                }
            }
            VmOp::Shootdown { asid, lpn } => {
                // A full shootdown of one 2 MB region, the sequence a
                // splinter-triggered TLB shootdown performs: the large
                // entry first, then all 512 base slots under it. Nearly
                // every base slot is empty, so the real TLB's occupancy
                // filter must short-circuit each absent flush to exactly
                // the oracle's answer.
                let (asid, lpn) = (AppId(asid), LargePageNum(lpn));
                let large_addr = lpn.base_page(0).addr();
                let o = oracle.flush_large(asid, large_addr);
                if mutation != Mutation::SkipFlushLarge {
                    let r = tlb.flush_large(asid, large_addr);
                    if r != o {
                        return Err(diverge(format!("shootdown large: real {r} oracle {o}")));
                    }
                }
                for vpn in lpn.base_pages() {
                    let addr = vpn.addr();
                    let r = tlb.flush_base(asid, addr);
                    let o = oracle.flush_base(asid, addr);
                    if r != o {
                        return Err(diverge(format!(
                            "shootdown base {}: real {r} oracle {o}",
                            vpn.0
                        )));
                    }
                }
            }
        }
        if let Some(detail) = vm_state_digest(&tlb, &oracle, &table, &otable) {
            return Err(diverge(detail));
        }
    }
    Ok(())
}

/// The real manager under test, with the concrete handles the ledger's
/// flavor-specific checks need.
#[derive(Debug)]
enum RealMgr {
    Mosaic(MosaicManager),
    Gpu(GpuMmuManager),
    Migrating(MigratingManager),
}

impl RealMgr {
    fn build(kind: MgrKind, frames: u64) -> RealMgr {
        let bytes = frames * LARGE_PAGE_SIZE;
        let channels = 2;
        match kind {
            MgrKind::MosaicDefault
            | MgrKind::MosaicBulk
            | MgrKind::MosaicIdeal
            | MgrKind::MosaicNoCac => {
                let cac = match kind {
                    MgrKind::MosaicBulk => mosaic_core::CacConfig::with_bulk_copy(),
                    MgrKind::MosaicIdeal => mosaic_core::CacConfig::ideal(),
                    MgrKind::MosaicNoCac => mosaic_core::CacConfig::disabled(),
                    _ => mosaic_core::CacConfig::default(),
                };
                RealMgr::Mosaic(MosaicManager::new(MosaicConfig {
                    memory_bytes: bytes,
                    channels,
                    cac,
                }))
            }
            MgrKind::GpuMmuBase => {
                RealMgr::Gpu(GpuMmuManager::new(bytes, channels, PageSize::Base))
            }
            MgrKind::GpuMmuLarge => {
                RealMgr::Gpu(GpuMmuManager::new(bytes, channels, PageSize::Large))
            }
            MgrKind::Migrating => RealMgr::Migrating(MigratingManager::new(
                bytes,
                channels,
                MigratingConfig::default(),
            )),
        }
    }

    fn as_dyn(&mut self) -> &mut dyn MemoryManager {
        match self {
            RealMgr::Mosaic(m) => m,
            RealMgr::Gpu(m) => m,
            RealMgr::Migrating(m) => m,
        }
    }

    fn as_dyn_ref(&self) -> &dyn MemoryManager {
        match self {
            RealMgr::Mosaic(m) => m,
            RealMgr::Gpu(m) => m,
            RealMgr::Migrating(m) => m,
        }
    }
}

/// Event tallies and derived expectations the ledger accumulates across a
/// schedule.
#[derive(Debug, Default)]
struct FrameLedger {
    reservations: Vec<(u16, u64, u64)>,
    touched: BTreeSet<(u16, u64)>,
    resident: BTreeSet<(u16, u64)>,
    /// Pages a `Store` dirtied since they last became resident. Cleared
    /// by deallocation and eviction — write-back accounting is derived
    /// from this set alone.
    dirty: BTreeSet<(u16, u64)>,
    far_faults: u64,
    transferred: u64,
    evicted_pages: u64,
    writeback: u64,
    coalesced_ev: u64,
    splintered_ev: u64,
    migrated_ev: u64,
    shootdown_ev: u64,
    /// Shootdowns from `evict_for` outcomes, tallied separately: every
    /// manager emits them under pressure, so they must not disturb the
    /// flavor-specific pairings over `shootdown_ev`.
    evict_shootdown_ev: u64,
    flush_all_ev: u64,
}

impl FrameLedger {
    fn reserved(&self, asid: u16, vpn: u64) -> bool {
        self.reservations.iter().any(|&(a, start, n)| a == asid && vpn >= start && vpn < start + n)
    }

    fn tally(&mut self, events: &[MgmtEvent]) {
        for e in events {
            match e {
                MgmtEvent::Coalesced { .. } => self.coalesced_ev += 1,
                MgmtEvent::Splintered { .. } => self.splintered_ev += 1,
                MgmtEvent::PageMigrated { .. } => self.migrated_ev += 1,
                MgmtEvent::TlbShootdown { .. } => self.shootdown_ev += 1,
                MgmtEvent::TlbFlushAll => self.flush_all_ev += 1,
                MgmtEvent::SmStallAll { .. } => {}
            }
        }
    }
}

/// Whether the manager flavor maps *only* pages the app touched (true
/// for Mosaic and the 4 KB baseline; large-page materialization and
/// promotion zero-fill map more).
fn exact_resident(kind: MgrKind) -> bool {
    !matches!(kind, MgrKind::GpuMmuLarge | MgrKind::Migrating)
}

fn ledger_check(kind: MgrKind, mgr: &RealMgr, ledger: &FrameLedger) -> Option<String> {
    let m = mgr.as_dyn_ref();
    let s = m.stats();
    if s.far_faults != ledger.far_faults {
        return Some(format!("far_faults: real {} ledger {}", s.far_faults, ledger.far_faults));
    }
    if s.transferred_bytes != ledger.transferred {
        return Some(format!(
            "transferred_bytes: real {} ledger {}",
            s.transferred_bytes, ledger.transferred
        ));
    }
    if s.evictions != ledger.evicted_pages {
        return Some(format!("evictions: real {} ledger {}", s.evictions, ledger.evicted_pages));
    }
    if s.writeback_bytes != ledger.writeback {
        return Some(format!(
            "writeback_bytes: real {} ledger {}",
            s.writeback_bytes, ledger.writeback
        ));
    }
    let touched = ledger.touched.len() as u64 * mosaic_vm::BASE_PAGE_SIZE;
    if m.touched_bytes() != touched {
        return Some(format!("touched_bytes: real {} ledger {touched}", m.touched_bytes()));
    }
    // Event/counter agreement: every counter the manager reports must be
    // backed by the events it emitted (flavor-specific pairings).
    let eq = |name: &str, counter: u64, events: u64| {
        (counter != events).then(|| {
            format!("counter/event disagreement: {name} counter {counter} vs {events} events")
        })
    };
    let counter_mismatch = match kind {
        // Mosaic: 1:1 events for coalesces, splinters, and migrations
        // (ideal CAC still counts migrations but suppresses their events).
        MgrKind::MosaicDefault | MgrKind::MosaicBulk | MgrKind::MosaicNoCac => {
            eq("coalesces", s.coalesces, ledger.coalesced_ev)
                .or_else(|| eq("splinters", s.splinters, ledger.splintered_ev))
                .or_else(|| eq("migrations", s.migrations, ledger.migrated_ev))
        }
        MgrKind::MosaicIdeal => eq("coalesces", s.coalesces, ledger.coalesced_ev)
            .or_else(|| eq("splinters", s.splinters, ledger.splintered_ev))
            .or_else(|| eq("ideal-CAC PageMigrated", 0, ledger.migrated_ev)),
        MgrKind::GpuMmuBase | MgrKind::GpuMmuLarge => {
            eq("coalesces", s.coalesces, ledger.coalesced_ev)
                .or_else(|| eq("splinters", s.splinters, ledger.splintered_ev))
                .or_else(|| eq("baseline migrations", s.migrations, 0))
                .or_else(|| eq("baseline PageMigrated", 0, ledger.migrated_ev))
        }
        // Promotion emits one TlbShootdown per coalesce and no Coalesced
        // event (the shootdown is the observable cost).
        MgrKind::Migrating => eq("coalesces/shootdowns", s.coalesces, ledger.shootdown_ev)
            .or_else(|| eq("splinters", s.splinters, ledger.splintered_ev))
            .or_else(|| eq("migrations", s.migrations, ledger.migrated_ev))
            .or_else(|| eq("Coalesced from migrating mgr", 0, ledger.coalesced_ev)),
    };
    if let Some(msg) = counter_mismatch {
        return Some(msg);
    }
    if ledger.flush_all_ev != 0 {
        return Some("a manager emitted TlbFlushAll (none of them should)".to_string());
    }
    if !matches!(kind, MgrKind::Migrating) && ledger.shootdown_ev != 0 {
        return Some("TlbShootdown from a non-migrating manager".to_string());
    }
    // Residency: everything the ledger believes resident must be mapped;
    // exact managers map nothing else.
    for &(asid, vpn) in &ledger.resident {
        let mapped = m.tables().table(AppId(asid)).is_some_and(|t| t.is_mapped(VirtPageNum(vpn)));
        if !mapped {
            return Some(format!("asid {asid} page {vpn} touched but not mapped"));
        }
    }
    if exact_resident(kind) && m.tables().total_mapped() != ledger.resident.len() as u64 {
        return Some(format!(
            "mapped pages: real {} ledger resident {}",
            m.tables().total_mapped(),
            ledger.resident.len()
        ));
    }
    // The manager's own invariant sweep must stay clean after every op.
    let mut report = AuditReport::new();
    m.audit(&mut report);
    if !report.is_clean() {
        return Some(format!("audit violations: {:?}", report.violations()));
    }
    // Mosaic extras: the soft guarantee holds verbatim until the manager
    // itself reports breaking it, and parked emergency entries stay
    // coalesced, chunk-bound large pages.
    if let RealMgr::Mosaic(m) = mgr {
        if m.cac().soft_guarantee_breaks() == 0 {
            for (lf, state) in m.pool().tracked() {
                let owners: BTreeSet<AppId> = state.allocated().map(|(_, a)| a).collect();
                if owners.len() > 1 {
                    return Some(format!(
                        "soft guarantee: frame {lf} mixes owners {owners:?} with zero reported breaks"
                    ));
                }
            }
        }
        for (asid, lpn) in m.cocoa().emergency_entries() {
            let coalesced = m.tables().table(asid).is_some_and(|t| t.is_coalesced(lpn));
            if !coalesced {
                return Some(format!(
                    "emergency list holds {asid}/{lpn} which is no longer coalesced"
                ));
            }
            if m.cocoa().chunk_frame(asid, lpn).is_none() {
                return Some(format!("emergency list holds unbound chunk {asid}/{lpn}"));
            }
        }
    }
    None
}

/// Replays `ops` against a real manager and the frame ledger in lockstep.
///
/// # Errors
///
/// The first [`Divergence`] found, if any.
pub fn run_mgr_case(kind: MgrKind, frames: u64, ops: &[MgrOp]) -> Result<(), Divergence> {
    let mut mgr = RealMgr::build(kind, frames);
    let mut ledger = FrameLedger::default();
    for a in 0..2u16 {
        mgr.as_dyn().register_app(AppId(a));
    }

    for (step, &op) in ops.iter().enumerate() {
        let mut fail = None;
        match op {
            MgrOp::Reserve { asid, start, pages } => {
                mgr.as_dyn().reserve(AppId(asid), VirtPageNum(start), pages);
                ledger.reservations.push((asid, start, pages));
            }
            MgrOp::Touch { asid, vpn } => {
                fail = step_touch(&mut mgr, &mut ledger, asid, vpn);
            }
            MgrOp::TouchRange { asid, start, pages } => {
                for vpn in start..start + pages {
                    fail = step_touch(&mut mgr, &mut ledger, asid, vpn);
                    if fail.is_some() {
                        break;
                    }
                }
            }
            MgrOp::Dealloc { asid, start, pages } => {
                let events = mgr.as_dyn().deallocate(AppId(asid), VirtPageNum(start), pages);
                ledger.tally(&events);
                for vpn in start..start + pages {
                    ledger.resident.remove(&(asid, vpn));
                    ledger.dirty.remove(&(asid, vpn));
                    let mapped = mgr
                        .as_dyn_ref()
                        .tables()
                        .table(AppId(asid))
                        .is_some_and(|t| t.is_mapped(VirtPageNum(vpn)));
                    if mapped {
                        fail = Some(format!("page {vpn} still mapped after deallocate"));
                        break;
                    }
                }
            }
            MgrOp::Store { asid, vpn } => {
                // Resident stores feed the eviction policy's recency and
                // dirty bits; non-resident stores are the fault path's
                // problem (`Touch`), modeled as a no-op.
                let frame = mgr
                    .as_dyn_ref()
                    .tables()
                    .table(AppId(asid))
                    .and_then(|t| t.translate(VirtPageNum(vpn).addr()).ok())
                    .map(|t| t.frame);
                if let Some(frame) = frame {
                    mgr.as_dyn().note_use(frame, true);
                    ledger.dirty.insert((asid, vpn));
                }
            }
            MgrOp::Evict { bytes } => {
                fail = step_evict(&mut mgr, &mut ledger, kind, bytes);
            }
        }
        let fail = fail.or_else(|| ledger_check(kind, &mgr, &ledger));
        if let Some(detail) = fail {
            return Err(Divergence { step, op: format!("MgrOp::{op:?}"), detail });
        }
    }
    Ok(())
}

/// One touch against the ledger's expectations. Returns a failure detail
/// on divergence.
fn step_touch(mgr: &mut RealMgr, ledger: &mut FrameLedger, asid: u16, vpn: u64) -> Option<String> {
    let reserved = ledger.reserved(asid, vpn);
    let was_mapped =
        mgr.as_dyn_ref().tables().table(AppId(asid)).is_some_and(|t| t.is_mapped(VirtPageNum(vpn)));
    let out = mgr.as_dyn().touch(AppId(asid), VirtPageNum(vpn));
    if !reserved {
        return match out {
            Err(MemError::NotReserved) => None,
            other => Some(format!("unreserved touch returned {other:?}")),
        };
    }
    match out {
        Ok(out) => {
            if was_mapped && (out.transfer_bytes != 0 || !out.events.is_empty()) {
                return Some(format!(
                    "resident re-touch cost {} bytes, {} events",
                    out.transfer_bytes,
                    out.events.len()
                ));
            }
            if !was_mapped {
                if out.transfer_bytes == 0 {
                    return Some("first touch transferred nothing".to_string());
                }
                ledger.far_faults += 1;
            }
            ledger.transferred += out.transfer_bytes;
            ledger.tally(&out.events);
            ledger.touched.insert((asid, vpn));
            ledger.resident.insert((asid, vpn));
            None
        }
        Err(MemError::NotReserved) => Some("reserved touch rejected as NotReserved".to_string()),
        Err(MemError::OutOfMemory) => {
            if was_mapped {
                return Some("resident re-touch reported OutOfMemory".to_string());
            }
            // OOM must mean exhaustion: with no pre-fragmentation, Mosaic's
            // failsafe chain (free frames -> free base list -> emergency
            // list) must be empty before it may fail an allocation.
            if let RealMgr::Mosaic(m) = mgr {
                if m.pool().free_frames() != 0 {
                    return Some(format!(
                        "OutOfMemory with {} free frames",
                        m.pool().free_frames()
                    ));
                }
                if m.cocoa().free_base_len(AppId(asid)) != 0 {
                    return Some(format!(
                        "OutOfMemory with {} spare base frames on the requester's free list",
                        m.cocoa().free_base_len(AppId(asid))
                    ));
                }
                if m.cocoa().emergency_len() != 0 {
                    return Some(format!(
                        "OutOfMemory with {} entries still parked on the emergency list",
                        m.cocoa().emergency_len()
                    ));
                }
            }
            None
        }
    }
}

/// One `evict_for` call against the ledger's expectations: the outcome's
/// pages, shootdowns, and write-back bytes must all be re-derivable from
/// the op stream. Returns a failure detail on divergence.
fn step_evict(
    mgr: &mut RealMgr,
    ledger: &mut FrameLedger,
    kind: MgrKind,
    bytes: u64,
) -> Option<String> {
    let out = mgr.as_dyn().evict_for(bytes);
    // Events: TlbShootdowns covering exactly the evicted 2 MB regions,
    // nothing else — eviction must not masquerade as coalescing policy.
    // A region scattered across several victim frames may be shot down
    // once per frame, so coverage is a set comparison, not a count.
    let want_regions: BTreeSet<(u16, u64)> =
        out.evicted.iter().map(|&(asid, vpn)| (asid.0, vpn.large_page().raw())).collect();
    let mut got_regions: BTreeSet<(u16, u64)> = BTreeSet::new();
    for e in &out.events {
        match e {
            MgmtEvent::TlbShootdown { asid, lpn } => {
                got_regions.insert((asid.0, lpn.raw()));
                ledger.evict_shootdown_ev += 1;
            }
            other => return Some(format!("eviction emitted a non-shootdown event: {other:?}")),
        }
    }
    if got_regions != want_regions {
        return Some(format!(
            "eviction shootdowns {got_regions:?} do not match evicted regions {want_regions:?}"
        ));
    }
    // Pages: evicted at most once, known-resident beforehand (for the
    // managers that map exactly what was touched), and unmapped now.
    let mut seen: BTreeSet<(u16, u64)> = BTreeSet::new();
    let mut dirty_evicted = 0u64;
    for &(asid, vpn) in &out.evicted {
        let key = (asid.0, vpn.0);
        if !seen.insert(key) {
            return Some(format!("page {key:?} evicted twice in one call"));
        }
        if exact_resident(kind) && !ledger.resident.contains(&key) {
            return Some(format!("evicted page {key:?} was never believed resident"));
        }
        let mapped = mgr.as_dyn_ref().tables().table(asid).is_some_and(|t| t.is_mapped(vpn));
        if mapped {
            return Some(format!("evicted page {key:?} is still mapped"));
        }
        if ledger.dirty.remove(&key) {
            dirty_evicted += 1;
        }
        ledger.resident.remove(&key);
    }
    // Write-back: exactly the dirty pages among the evicted, nothing
    // more (clean pages are free to drop) and nothing less (dirty data
    // must not be lost).
    let want_wb = dirty_evicted * mosaic_vm::BASE_PAGE_SIZE;
    if out.writeback_bytes != want_wb {
        return Some(format!(
            "writeback_bytes {}: the ledger holds {dirty_evicted} dirty pages among the \
             evicted ({want_wb} bytes)",
            out.writeback_bytes
        ));
    }
    ledger.evicted_pages += out.evicted.len() as u64;
    ledger.writeback += out.writeback_bytes;
    None
}
