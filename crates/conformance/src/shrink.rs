//! Greedy delta-debugging minimizer for failing op schedules.
//!
//! Valid because every op is self-contained (see [`crate::ops`]): any
//! subsequence of a schedule is itself a runnable schedule, so removal is
//! always a legal shrink step.

/// Minimizes `ops` while `fails` keeps returning `true` on the candidate.
///
/// Classic ddmin shape: try dropping chunks of half the schedule, halving
/// the chunk size on failure to make progress, then sweep single ops to a
/// fixpoint. Greedy and deterministic — the same failing schedule always
/// shrinks to the same repro.
pub fn shrink<T: Copy>(ops: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    debug_assert!(fails(ops), "shrink() called on a passing schedule");
    let mut cur: Vec<T> = ops.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                progressed = true;
                // Re-test the same offset: it now holds different ops.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
            // A single-op sweep that made progress may have unlocked more.
            continue;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_minimal_failing_pair() {
        // Fails whenever both 3 and 7 are present, anywhere.
        let ops: Vec<u32> = (0..100).collect();
        let out = shrink(&ops, |c| c.contains(&3) && c.contains(&7));
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn single_culprit_shrinks_to_one_op() {
        let ops: Vec<u32> = (0..33).collect();
        let out = shrink(&ops, |c| c.contains(&13));
        assert_eq!(out, vec![13]);
    }

    #[test]
    fn order_dependent_failure_keeps_order() {
        // Fails only when 2 appears before 5.
        let ops: Vec<u32> = (0..20).collect();
        let fails = |c: &[u32]| {
            let p2 = c.iter().position(|&x| x == 2);
            let p5 = c.iter().position(|&x| x == 5);
            matches!((p2, p5), (Some(a), Some(b)) if a < b)
        };
        let out = shrink(&ops, fails);
        assert_eq!(out, vec![2, 5]);
    }
}
