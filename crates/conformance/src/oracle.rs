//! Obviously-correct reference models the real implementations are
//! diffed against.
//!
//! Each oracle trades all of the real structure's cleverness for the
//! flattest data structure that can express the same contract:
//!
//! * [`OraclePageTable`] is one `BTreeMap` from virtual page to frame plus
//!   a map of coalesced regions — no radix levels, no cached counters, no
//!   per-PTE disabled bits (they are derived from the coalesced set).
//! * [`OracleTlb`] keeps each set as an explicit recency-ordered list
//!   (front = least recently used) instead of timestamp ticks scanned
//!   with `min_by_key`.
//!
//! Because the oracles share nothing with the real code but the contract,
//! a lockstep divergence implies a bug in exactly one side — and the
//! oracle side is small enough to verify by inspection.

use mosaic_vm::page_table::CoalesceError;
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PhysFrameNum, TlbConfig, TlbLookup, Translation,
    TranslationError, VirtAddr, VirtPageNum, BASE_PAGES_PER_LARGE_PAGE,
};
use std::collections::BTreeMap;

/// A flat reference page table: one map for base mappings, one for
/// coalesced regions. Mirrors [`mosaic_vm::PageTable`]'s contract.
#[derive(Debug, Default, Clone)]
pub struct OraclePageTable {
    mappings: BTreeMap<VirtPageNum, PhysFrameNum>,
    coalesced: BTreeMap<LargePageNum, LargeFrameNum>,
}

impl OraclePageTable {
    /// Creates an empty oracle table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a base page; `Err` returns the existing frame, as the real
    /// table does.
    pub fn map_base(&mut self, vpn: VirtPageNum, frame: PhysFrameNum) -> Result<(), PhysFrameNum> {
        match self.mappings.get(&vpn) {
            Some(&existing) => Err(existing),
            None => {
                self.mappings.insert(vpn, frame);
                Ok(())
            }
        }
    }

    /// Unmaps a base page. Coalescing state is untouched: deallocating
    /// inside a coalesced region is legal (Section 4.4).
    pub fn unmap_base(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        self.mappings.remove(&vpn)
    }

    /// Translates an address: a coalesced region serves every page —
    /// holes included — from its large frame; otherwise the flat map.
    pub fn translate(&self, addr: VirtAddr) -> Result<Translation, TranslationError> {
        let vpn = addr.base_page();
        if let Some(&lf) = self.coalesced.get(&vpn.large_page()) {
            return Ok(Translation {
                frame: lf.base_frame(vpn.index_in_large()),
                size: PageSize::Large,
            });
        }
        match self.mappings.get(&vpn) {
            Some(&frame) => Ok(Translation { frame, size: PageSize::Base }),
            None => Err(TranslationError::NotMapped),
        }
    }

    /// Number of mapped base pages inside `lpn`.
    pub fn mapped_in_large(&self, lpn: LargePageNum) -> u64 {
        let lo = lpn.base_page(0);
        let hi = lpn.base_page(BASE_PAGES_PER_LARGE_PAGE - 1);
        self.mappings.range(lo..=hi).count() as u64
    }

    /// The coalesce precondition, with the same error priorities as the
    /// real table: already-coalesced first, then population, then
    /// contiguity/alignment.
    pub fn can_coalesce(&self, lpn: LargePageNum) -> Result<LargeFrameNum, CoalesceError> {
        if self.mapped_in_large(lpn) == 0 && !self.coalesced.contains_key(&lpn) {
            return Err(CoalesceError::NotFullyPopulated);
        }
        if self.coalesced.contains_key(&lpn) {
            return Err(CoalesceError::AlreadyCoalesced);
        }
        if self.mapped_in_large(lpn) != BASE_PAGES_PER_LARGE_PAGE {
            return Err(CoalesceError::NotFullyPopulated);
        }
        let first = self.mappings[&lpn.base_page(0)];
        if first.index_in_large() != 0 {
            return Err(CoalesceError::NotContiguous);
        }
        let lf = first.large_frame();
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            if self.mappings[&lpn.base_page(i)] != lf.base_frame(i) {
                return Err(CoalesceError::NotContiguous);
            }
        }
        Ok(lf)
    }

    /// Coalesces `lpn` if the precondition holds.
    pub fn coalesce(&mut self, lpn: LargePageNum) -> Result<LargeFrameNum, CoalesceError> {
        let lf = self.can_coalesce(lpn)?;
        self.coalesced.insert(lpn, lf);
        Ok(lf)
    }

    /// Splinters `lpn`, returning whether it was coalesced.
    pub fn splinter(&mut self, lpn: LargePageNum) -> bool {
        self.coalesced.remove(&lpn).is_some()
    }

    /// Whether `lpn` is coalesced.
    pub fn is_coalesced(&self, lpn: LargePageNum) -> bool {
        self.coalesced.contains_key(&lpn)
    }

    /// The backing large frame while `lpn` is coalesced.
    pub fn large_frame_of(&self, lpn: LargePageNum) -> Option<LargeFrameNum> {
        self.coalesced.get(&lpn).copied()
    }

    /// Whether `vpn` has a base mapping.
    pub fn is_mapped(&self, vpn: VirtPageNum) -> bool {
        self.mappings.contains_key(&vpn)
    }

    /// Number of base mappings.
    pub fn mapped_base_pages(&self) -> u64 {
        self.mappings.len() as u64
    }

    /// Every live mapping as `(page, frame, disabled)` in page order. The
    /// disabled bit is *derived* — a page is disabled exactly while its
    /// region is coalesced — which is precisely the invariant the real
    /// table maintains bit-by-bit.
    pub fn mappings(&self) -> Vec<(VirtPageNum, PhysFrameNum, bool)> {
        self.mappings
            .iter()
            .map(|(&vpn, &pfn)| (vpn, pfn, self.coalesced.contains_key(&vpn.large_page())))
            .collect()
    }
}

/// One reference translation array: per-set recency lists.
#[derive(Debug, Clone)]
struct OracleArray {
    /// Front of each list is the least recently used entry.
    sets: Vec<Vec<(AppId, u64)>>,
    assoc: usize,
}

impl OracleArray {
    /// Mirrors the real array's geometry normalization: zero entries is a
    /// null array, zero or over-large associativity means fully
    /// associative, otherwise `entries / assoc` sets.
    fn new(entries: usize, assoc: usize) -> Self {
        let (num_sets, assoc) = if entries == 0 {
            (0, 1)
        } else if assoc == 0 || assoc >= entries {
            (1, entries)
        } else {
            (entries / assoc, assoc)
        };
        OracleArray { sets: vec![Vec::new(); num_sets], assoc }
    }

    fn set_of(&mut self, page: u64) -> &mut Vec<(AppId, u64)> {
        let idx = (page % self.sets.len() as u64) as usize;
        &mut self.sets[idx]
    }

    /// Probe with recency refresh: a hit moves the entry to the back
    /// (most recently used).
    fn touch(&mut self, asid: AppId, page: u64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set = self.set_of(page);
        match set.iter().position(|&e| e == (asid, page)) {
            Some(i) => {
                let e = set.remove(i);
                set.push(e);
                true
            }
            None => false,
        }
    }

    /// Side-effect-free probe.
    fn probe(&self, asid: AppId, page: u64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let idx = (page % self.sets.len() as u64) as usize;
        self.sets[idx].contains(&(asid, page))
    }

    /// Insert, evicting the front (LRU) entry of a full set.
    fn insert(&mut self, asid: AppId, page: u64) -> Option<(AppId, u64)> {
        if self.sets.is_empty() {
            return None;
        }
        if self.touch(asid, page) {
            return None;
        }
        let assoc = self.assoc;
        let set = self.set_of(page);
        let evicted = if set.len() == assoc { Some(set.remove(0)) } else { None };
        set.push((asid, page));
        evicted
    }

    fn invalidate(&mut self, asid: AppId, page: u64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set = self.set_of(page);
        match set.iter().position(|&e| e == (asid, page)) {
            Some(i) => {
                set.remove(i);
                true
            }
            None => false,
        }
    }

    fn flush_asid(&mut self, asid: AppId) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|&(a, _)| a != asid);
            n += before - set.len();
        }
        n
    }

    fn flush_all(&mut self) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            n += set.len();
            set.clear();
        }
        n
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// A reference TLB with the same geometry and contract as
/// [`mosaic_vm::Tlb`] but explicit LRU lists instead of timestamps.
#[derive(Debug, Clone)]
pub struct OracleTlb {
    base: OracleArray,
    large: OracleArray,
}

impl OracleTlb {
    /// Builds the oracle for the given real geometry.
    pub fn new(config: &TlbConfig) -> Self {
        OracleTlb {
            base: OracleArray::new(config.base_entries, config.base_assoc),
            large: OracleArray::new(config.large_entries, config.large_assoc),
        }
    }

    /// Probes large entries first, then base, refreshing recency on hits.
    pub fn lookup(&mut self, asid: AppId, addr: VirtAddr) -> TlbLookup {
        if self.large.touch(asid, addr.large_page().raw()) {
            return TlbLookup::HitLarge;
        }
        if self.base.touch(asid, addr.base_page().raw()) {
            return TlbLookup::HitBase;
        }
        TlbLookup::Miss
    }

    /// Side-effect-free probe.
    pub fn peek(&self, asid: AppId, addr: VirtAddr) -> TlbLookup {
        if self.large.probe(asid, addr.large_page().raw()) {
            return TlbLookup::HitLarge;
        }
        if self.base.probe(asid, addr.base_page().raw()) {
            return TlbLookup::HitBase;
        }
        TlbLookup::Miss
    }

    /// Fills the array selected by `size`, returning any evicted entry.
    pub fn fill(&mut self, asid: AppId, addr: VirtAddr, size: PageSize) -> Option<(AppId, u64)> {
        match size {
            PageSize::Base => self.base.insert(asid, addr.base_page().raw()),
            PageSize::Large => self.large.insert(asid, addr.large_page().raw()),
        }
    }

    /// Invalidates the large entry covering `addr`.
    pub fn flush_large(&mut self, asid: AppId, addr: VirtAddr) -> bool {
        self.large.invalidate(asid, addr.large_page().raw())
    }

    /// Invalidates the base entry covering `addr`.
    pub fn flush_base(&mut self, asid: AppId, addr: VirtAddr) -> bool {
        self.base.invalidate(asid, addr.base_page().raw())
    }

    /// Drops every entry of `asid`, returning the count.
    pub fn flush_asid(&mut self, asid: AppId) -> usize {
        self.base.flush_asid(asid) + self.large.flush_asid(asid)
    }

    /// Drops everything, returning the count.
    pub fn flush_all(&mut self) -> usize {
        self.base.flush_all() + self.large.flush_all()
    }

    /// Valid entries across both arrays.
    pub fn occupancy(&self) -> usize {
        self.base.occupancy() + self.large.occupancy()
    }

    /// Every valid entry as `(asid, page, size)` for order-insensitive
    /// comparison against the real TLB.
    pub fn entries(&self) -> impl Iterator<Item = (AppId, u64, PageSize)> + '_ {
        let base = self.base.sets.iter().flatten().map(|&(a, p)| (a, p, PageSize::Base));
        let large = self.large.sets.iter().flatten().map(|&(a, p)| (a, p, PageSize::Large));
        base.chain(large)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_table_round_trip() {
        let mut t = OraclePageTable::new();
        let lpn = LargePageNum(2);
        let lf = LargeFrameNum(3);
        assert_eq!(t.can_coalesce(lpn), Err(CoalesceError::NotFullyPopulated));
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            t.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
        assert_eq!(t.coalesce(lpn), Ok(lf));
        assert_eq!(t.coalesce(lpn), Err(CoalesceError::AlreadyCoalesced));
        // Holes still translate at large size while coalesced.
        t.unmap_base(lpn.base_page(7));
        let tr = t.translate(lpn.base_page(7).addr()).unwrap();
        assert_eq!(tr.size, PageSize::Large);
        assert_eq!(tr.frame, lf.base_frame(7));
        assert!(t.splinter(lpn));
        assert!(!t.splinter(lpn));
        assert_eq!(t.translate(lpn.base_page(7).addr()), Err(TranslationError::NotMapped));
    }

    #[test]
    fn oracle_tlb_evicts_lru() {
        let config = TlbConfig {
            base_entries: 2,
            base_assoc: 0,
            large_entries: 1,
            large_assoc: 0,
            latency: 1,
        };
        let mut tlb = OracleTlb::new(&config);
        let a = AppId(0);
        let p0 = VirtPageNum(0).addr();
        let p1 = VirtPageNum(1).addr();
        let p2 = VirtPageNum(2).addr();
        assert_eq!(tlb.fill(a, p0, PageSize::Base), None);
        assert_eq!(tlb.fill(a, p1, PageSize::Base), None);
        // Refresh p0 so p1 is the LRU victim.
        assert_eq!(tlb.lookup(a, p0), TlbLookup::HitBase);
        assert_eq!(tlb.fill(a, p2, PageSize::Base), Some((a, 1)));
        assert_eq!(tlb.peek(a, p1), TlbLookup::Miss);
        assert_eq!(tlb.occupancy(), 2);
    }
}
