//! The multi-GPU suite: differential testing of [`PlacementMap`] against
//! a frame-residency oracle, plus periodic full-system fleet runs.
//!
//! The placement map is the fleet's source of truth for *where every 2 MB
//! region lives*, and the whole scale-out model rests on its residency
//! invariant: a region has exactly one owner, replicas are explicit
//! read-only copies that never include the owner, and a written region is
//! resident on its owner only. [`OracleResidency`] re-derives all of that
//! from the access stream with the dumbest possible data structures
//! (one `BTreeSet` of replica devices per region, no bitmasks, no cached
//! stats) and predicts every [`PlacementOutcome`] independently; any
//! disagreement — outcome, ownership, replica set, or accounting — is a
//! divergence.
//!
//! Every eighth case also runs one small full-system fleet simulation
//! twice, audited and unaudited, and demands bit-identical results: the
//! runtime audit (which sweeps placement residency among its checks)
//! must stay side-effect free on a fleet, and the fleet stats must obey
//! the payload-accounting identity `fleet_copy_bytes = 2 MB ×
//! (migrations + replications)`.

use crate::harness::Divergence;
use mosaic_core::{PlacementMap, PlacementOutcome, PlacementPolicy};
use mosaic_gpusim::{run_workload, RunConfig, Topology};
use mosaic_sim_core::SimRng;
use mosaic_vm::{AppId, LargePageNum, LARGE_PAGE_SIZE};
use mosaic_workloads::{ScaleConfig, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// One step of a placement schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiGpuOp {
    /// A warp access from `gpu` to region `(asid, lpn)`.
    Access {
        /// Address space.
        asid: u64,
        /// Large-page region number.
        lpn: u64,
        /// Accessing device.
        gpu: usize,
        /// Store (true) or load (false).
        store: bool,
    },
    /// The region was deallocated; placement must forget it.
    Remove {
        /// Address space.
        asid: u64,
        /// Large-page region number.
        lpn: u64,
    },
}

/// A generated multi-GPU case: a fleet shape plus an access schedule.
#[derive(Debug, Clone)]
pub struct MultiGpuCase {
    /// Fleet size (1, 2, or 4 devices).
    pub gpus: usize,
    /// Placement policy in force.
    pub policy: PlacementPolicy,
    /// The access/removal schedule.
    pub ops: Vec<MultiGpuOp>,
}

/// Generates the multi-GPU case for `(seed, index)`. Deterministic: the
/// same pair always yields the same case. Region and app spaces are kept
/// tiny so schedules revisit regions often — migration ping-pong,
/// replica invalidation, and re-first-touch after removal all need
/// repeated visits to fire.
pub fn gen_multigpu_case(seed: u64, index: u64, max_ops: usize) -> MultiGpuCase {
    let mut rng = SimRng::from_seed(seed).fork("conformance-multigpu", index);
    let gpus = [1, 2, 4][rng.below(3) as usize];
    let policy = match rng.below(4) {
        0 => PlacementPolicy::FirstTouch,
        1 => PlacementPolicy::ReplicateReadOnly,
        // Weighted toward migration: it is the only policy that moves
        // ownership, so it stresses the residency invariant hardest.
        _ => PlacementPolicy::MigrateOnThreshold { threshold: 1 + rng.below(5) as u32 },
    };
    let count = 1 + rng.below(max_ops as u64) as usize;
    let ops = (0..count)
        .map(|_| {
            if rng.chance(0.05) {
                MultiGpuOp::Remove { asid: rng.below(3), lpn: rng.below(8) }
            } else {
                MultiGpuOp::Access {
                    asid: rng.below(3),
                    lpn: rng.below(8),
                    gpu: rng.below(gpus as u64) as usize,
                    store: rng.chance(0.3),
                }
            }
        })
        .collect();
    MultiGpuCase { gpus, policy, ops }
}

/// Naive per-region residency state: sets instead of bitmasks, explicit
/// counters, nothing cached.
#[derive(Debug, Clone)]
struct OracleHome {
    owner: usize,
    replicas: BTreeSet<usize>,
    written: bool,
    remote: Vec<u32>,
}

/// The obviously-correct residency model the placement map is diffed
/// against.
#[derive(Debug, Default)]
struct OracleResidency {
    homes: BTreeMap<(u64, u64), OracleHome>,
    remote_accesses: u64,
    migrations: u64,
    replications: u64,
    invalidations: u64,
}

impl OracleResidency {
    /// Replays one access, returning the outcome the real map must report.
    fn access(
        &mut self,
        gpus: usize,
        policy: PlacementPolicy,
        asid: u64,
        lpn: u64,
        gpu: usize,
        store: bool,
    ) -> PlacementOutcome {
        let home = self.homes.entry((asid, lpn)).or_insert_with(|| OracleHome {
            owner: gpu,
            replicas: BTreeSet::new(),
            written: false,
            remote: vec![0; gpus],
        });
        if store {
            home.written = true;
            self.invalidations += home.replicas.len() as u64;
            home.replicas.clear();
        }
        if home.owner == gpu || (!store && home.replicas.contains(&gpu)) {
            return PlacementOutcome::Local;
        }
        self.remote_accesses += 1;
        match policy {
            PlacementPolicy::MigrateOnThreshold { threshold } => {
                home.remote[gpu] += 1;
                if home.remote[gpu] == threshold.max(1) {
                    let from = home.owner;
                    home.owner = gpu;
                    home.remote = vec![0; gpus];
                    self.invalidations += home.replicas.len() as u64;
                    home.replicas.clear();
                    self.migrations += 1;
                    return PlacementOutcome::Migrate { from };
                }
                PlacementOutcome::Remote { owner: home.owner }
            }
            PlacementPolicy::ReplicateReadOnly if !store && !home.written => {
                home.replicas.insert(gpu);
                self.replications += 1;
                PlacementOutcome::Replicate { from: home.owner }
            }
            _ => PlacementOutcome::Remote { owner: home.owner },
        }
    }
}

/// Replays `case` through [`PlacementMap`] and the oracle in lockstep.
///
/// # Errors
///
/// A [`Divergence`] naming the first op where the outcome, the residency
/// state, or the accounting disagrees.
pub fn run_multigpu_case(case: &MultiGpuCase) -> Result<(), Divergence> {
    let mut map = PlacementMap::new(case.gpus, case.policy);
    let mut oracle = OracleResidency::default();
    let fail = |step: usize, op: MultiGpuOp, detail: String| {
        Err(Divergence { step, op: format!("{op:?}"), detail })
    };
    for (step, &op) in case.ops.iter().enumerate() {
        match op {
            MultiGpuOp::Access { asid, lpn, gpu, store } => {
                let expected = oracle.access(case.gpus, case.policy, asid, lpn, gpu, store);
                let got = map.access(AppId(asid as u16), LargePageNum(lpn), gpu, store);
                if got != expected {
                    return fail(step, op, format!("outcome: map {got:?}, oracle {expected:?}"));
                }
            }
            MultiGpuOp::Remove { asid, lpn } => {
                map.remove(AppId(asid as u16), LargePageNum(lpn));
                oracle.homes.remove(&(asid, lpn));
            }
        }
        // Residency invariant, re-checked after every op: one owner per
        // region, replicas an explicit read-only set that never includes
        // the owner and never survives a write.
        for (&(asid, lpn), home) in &oracle.homes {
            let key = (AppId(asid as u16), LargePageNum(lpn));
            let owner = map.owner(key.0, key.1);
            if owner != Some(home.owner) {
                return fail(
                    step,
                    op,
                    format!("region {asid}/{lpn} owner: map {owner:?}, oracle {}", home.owner),
                );
            }
            let replicas: BTreeSet<usize> = map.replicas(key.0, key.1).into_iter().collect();
            if replicas != home.replicas {
                return fail(
                    step,
                    op,
                    format!(
                        "region {asid}/{lpn} replicas: map {replicas:?}, oracle {:?}",
                        home.replicas
                    ),
                );
            }
            if replicas.contains(&home.owner) {
                return fail(
                    step,
                    op,
                    format!("region {asid}/{lpn} resident twice on device {}", home.owner),
                );
            }
            if home.written && !replicas.is_empty() {
                return fail(
                    step,
                    op,
                    format!("region {asid}/{lpn} written yet replicated on {replicas:?}"),
                );
            }
        }
    }
    let s = *map.stats();
    let expect = [
        ("remote_accesses", s.remote_accesses, oracle.remote_accesses),
        ("migrations", s.migrations, oracle.migrations),
        ("migrated_bytes", s.migrated_bytes, oracle.migrations * LARGE_PAGE_SIZE),
        ("replications", s.replications, oracle.replications),
        ("replicated_bytes", s.replicated_bytes, oracle.replications * LARGE_PAGE_SIZE),
        ("replica_invalidations", s.replica_invalidations, oracle.invalidations),
    ];
    for (name, got, want) in expect {
        if got != want {
            return Err(Divergence {
                step: case.ops.len(),
                op: "final stats".to_string(),
                detail: format!("{name}: map {got}, oracle {want}"),
            });
        }
    }
    if map.regions() != oracle.homes.len() {
        return Err(Divergence {
            step: case.ops.len(),
            op: "final stats".to_string(),
            detail: format!("regions: map {}, oracle {}", map.regions(), oracle.homes.len()),
        });
    }
    Ok(())
}

/// Runs one small full-system fleet simulation for `(seed, index)` twice
/// — audited and unaudited — and checks bit-identity plus the fleet
/// stats identities. Expensive relative to the op-stream oracle, so the
/// fuzz loop only calls it on a subsample of cases.
///
/// # Errors
///
/// A [`Divergence`] describing the violated run-level invariant.
pub fn run_multigpu_system_case(seed: u64, index: u64) -> Result<(), Divergence> {
    let mut rng = SimRng::from_seed(seed).fork("conformance-multigpu-sys", index);
    let gpus = [2, 4][rng.below(2) as usize];
    let topology = if rng.chance(0.5) { Topology::FullyConnected } else { Topology::Ring };
    let policy = match rng.below(3) {
        0 => PlacementPolicy::FirstTouch,
        1 => PlacementPolicy::ReplicateReadOnly,
        _ => PlacementPolicy::MigrateOnThreshold { threshold: 2 + rng.below(4) as u32 },
    };
    let mut apps = vec!["MM", "GUPS", "HS", "CONS"];
    rng.shuffle(&mut apps);
    apps.truncate(1 + rng.below(2) as usize);
    let mut cfg = mosaic_gpusim::RunConfig::new(mosaic_gpusim::ManagerKind::mosaic()).with_scale(
        ScaleConfig { ws_divisor: 64, mem_ops_per_warp: 12, warps_per_sm: 3, phases: 1 },
    );
    cfg.system.sm_count = 3;
    cfg.seed = rng.below(1 << 16);
    let cfg: RunConfig = cfg.multi_gpu(gpus, topology).with_placement(policy);
    let workload = Workload::from_names(&apps);
    let plain = run_workload(&workload, cfg);
    let audited = run_workload(&workload, cfg.audited(5_000));
    let fail = |detail: String| {
        Err(Divergence { step: 0, op: format!("fleet run {gpus}x {topology:?}"), detail })
    };
    if plain != audited {
        return fail("audited fleet run differs from unaudited run".to_string());
    }
    let s = &plain.stats;
    let copies = s.fleet_migrations + s.fleet_replications;
    if s.fleet_copy_bytes != copies * LARGE_PAGE_SIZE {
        return fail(format!(
            "copy accounting: {} bytes for {copies} region copies",
            s.fleet_copy_bytes
        ));
    }
    if s.remote_accesses > 0 && s.interconnect_bytes == 0 {
        return fail(format!(
            "{} remote accesses moved zero interconnect bytes",
            s.remote_accesses
        ));
    }
    match policy {
        PlacementPolicy::FirstTouch if copies != 0 => {
            fail(format!("first-touch copied {copies} regions"))
        }
        PlacementPolicy::ReplicateReadOnly if s.fleet_migrations != 0 => {
            fail(format!("replicate-read-only migrated {} regions", s.fleet_migrations))
        }
        PlacementPolicy::MigrateOnThreshold { .. } if s.fleet_replications != 0 => {
            fail(format!("migrate-on-threshold replicated {} regions", s.fleet_replications))
        }
        _ => Ok(()),
    }
}

/// Renders a multi-GPU-suite failure as a copy-pasteable Rust test body.
pub fn render_multigpu_repro(case: &MultiGpuCase, ops: &[MultiGpuOp], detail: &str) -> String {
    let mut s = String::new();
    s.push_str("// Repro emitted by the conformance multi-GPU suite.\n");
    s.push_str("// Paste into crates/conformance/tests/ and adjust the test name.\n");
    s.push_str("#[test]\nfn multigpu_divergence_repro() {\n");
    s.push_str("    use mosaic_conformance::{run_multigpu_case, MultiGpuCase, MultiGpuOp};\n");
    s.push_str("    use mosaic_core::PlacementPolicy;\n");
    s.push_str("    let case = MultiGpuCase {\n");
    s.push_str(&format!("        gpus: {},\n", case.gpus));
    s.push_str(&format!("        policy: PlacementPolicy::{:?},\n", case.policy));
    s.push_str("        ops: vec![\n");
    for op in ops {
        s.push_str(&format!("            MultiGpuOp::{op:?},\n"));
    }
    s.push_str("        ],\n    };\n");
    s.push_str("    run_multigpu_case(&case).unwrap();\n");
    s.push_str("}\n");
    s.push_str(&format!("// Original divergence: {detail}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let a = gen_multigpu_case(7, 3, 50);
        let b = gen_multigpu_case(7, 3, 50);
        assert_eq!(a.gpus, b.gpus);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.ops, b.ops);
        assert!(!a.ops.is_empty() && a.ops.len() <= 50);
        assert!(matches!(a.gpus, 1 | 2 | 4));
    }

    #[test]
    fn generated_cases_pass_against_the_oracle() {
        for index in 0..64 {
            let case = gen_multigpu_case(0xC0FFEE, index, 120);
            run_multigpu_case(&case).unwrap_or_else(|d| {
                panic!(
                    "case {index} diverged: {d}\n{}",
                    render_multigpu_repro(&case, &case.ops, &d.to_string())
                )
            });
        }
    }

    #[test]
    fn oracle_catches_a_wrong_outcome() {
        // A schedule whose third op replicates: if the map were to report
        // Remote instead, the oracle must flag it. Simulate the fault by
        // diffing against a policy mismatch (oracle sees replicate-ro,
        // map runs first-touch).
        let case = MultiGpuCase {
            gpus: 2,
            policy: PlacementPolicy::ReplicateReadOnly,
            ops: vec![
                MultiGpuOp::Access { asid: 0, lpn: 0, gpu: 0, store: false },
                MultiGpuOp::Access { asid: 0, lpn: 0, gpu: 1, store: false },
            ],
        };
        // Sanity: the honest pairing passes.
        run_multigpu_case(&case).unwrap();
        // Dishonest map: replay the same ops through a first-touch map
        // while the oracle expects replication.
        let mut map = PlacementMap::new(2, PlacementPolicy::FirstTouch);
        let mut oracle = OracleResidency::default();
        let _ = oracle.access(2, case.policy, 0, 0, 0, false);
        let first = map.access(AppId(0), LargePageNum(0), 0, false);
        assert_eq!(first, PlacementOutcome::Local);
        let expected = oracle.access(2, case.policy, 0, 0, 1, false);
        let got = map.access(AppId(0), LargePageNum(0), 1, false);
        assert_ne!(got, expected, "the oracle distinguishes remote from replicate");
    }

    #[test]
    fn full_system_case_passes() {
        run_multigpu_system_case(0xC0FFEE, 0).unwrap();
    }
}
