//! Differential conformance testing for the Mosaic stack.
//!
//! The real page table, TLB, and memory managers are optimized structures
//! full of cached counters, timestamp LRU, and policy coupling. This crate
//! diffs them against *obviously-correct* reference models:
//!
//! * [`OraclePageTable`] / [`OracleTlb`] — flat `BTreeMap` mappings and
//!   explicit recency lists ([`oracle`] module);
//! * a frame ledger inside [`run_mgr_case`] that re-derives every number a
//!   manager promises (fault counts, transferred bytes, event/counter
//!   agreement, the CoCoA soft guarantee) from the op stream alone;
//! * the sequential simulation engine itself, as the oracle for the
//!   speculative sharded engine — [`run_engine_case`] runs each generated
//!   full-system configuration at `--sim-threads 1` and at the campaign's
//!   worker count and demands bit-identical results ([`engine`] module);
//! * a frame-residency oracle for multi-GPU placement — [`run_multigpu_case`]
//!   replays randomized fleet access schedules through
//!   [`mosaic_core::PlacementMap`] and a naive set-based residency model
//!   in lockstep,
//!   pinning the no-region-resident-on-two-devices invariant ([`multigpu`]
//!   module).
//!
//! A deterministic generator ([`gen_vm_case`] / [`gen_mgr_case`], seeded
//! via [`mosaic_sim_core::SimRng::fork`]) drives both sides through
//! randomized schedules; [`run_fuzz`] loops that, and on divergence a
//! greedy delta-debugging [`shrink`] pass minimizes the schedule and
//! renders it as a copy-pasteable Rust test body.
//!
//! Use it two ways:
//!
//! * as a library from integration tests (`crates/conformance/tests/`);
//! * as a CLI: `cargo run -p mosaic-conformance -- fuzz --cases 256 --seed
//!   0xC0FFEE`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod fuzz;
pub mod harness;
pub mod multigpu;
pub mod ops;
pub mod oracle;
pub mod shrink;

pub use engine::{gen_engine_case, render_engine_repro, run_engine_case, EngineCase};
pub use fuzz::{run_fuzz, FuzzConfig, FuzzFailure, FuzzStats, Suite};
pub use harness::{run_mgr_case, run_vm_case, Divergence, MgrKind, Mutation, VmConfigKind};
pub use multigpu::{
    gen_multigpu_case, render_multigpu_repro, run_multigpu_case, run_multigpu_system_case,
    MultiGpuCase, MultiGpuOp,
};
pub use ops::{
    gen_mgr_case, gen_vm_case, render_mgr_repro, render_vm_repro, MgrCase, MgrOp, VmCase, VmOp,
};
pub use oracle::{OraclePageTable, OracleTlb};
pub use shrink::shrink;
