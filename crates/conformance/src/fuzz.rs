//! The fuzz loop: generate cases, replay them in lockstep, and on
//! divergence shrink to a minimal repro.

use crate::engine::{gen_engine_case, render_engine_repro, run_engine_case};
use crate::harness::{run_mgr_case, run_vm_case, Divergence, Mutation};
use crate::multigpu::{
    gen_multigpu_case, render_multigpu_repro, run_multigpu_case, run_multigpu_system_case,
    MultiGpuCase,
};
use crate::ops::{gen_mgr_case, gen_vm_case, render_mgr_repro, render_vm_repro};
use crate::shrink::shrink;
use std::fmt;

/// Which lockstep suite(s) a fuzz run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Suite {
    /// Page table + TLB vs their oracles.
    Vm,
    /// Memory managers vs the frame ledger.
    Mgr,
    /// The sharded simulation engine vs the sequential engine.
    Engine,
    /// Multi-GPU placement vs the frame-residency oracle.
    MultiGpu,
    /// Every suite, per case index.
    #[default]
    All,
}

/// Parameters of one fuzz run. The same config always produces the same
/// cases, the same verdict, and the same repro.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of cases per suite.
    pub cases: u64,
    /// Master seed; each case forks its own stream from it.
    pub seed: u64,
    /// Upper bound on ops per case.
    pub max_ops: usize,
    /// Suites to run.
    pub suite: Suite,
    /// Driver fault injection (harness self-test).
    pub mutation: Mutation,
    /// Speculation worker count for the engine suite's sharded runs
    /// (clamped to ≥ 2 — at 1 the suite would diff the sequential
    /// engine against itself).
    pub sim_threads: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 256,
            seed: 0xC0FFEE,
            max_ops: 120,
            suite: Suite::All,
            mutation: Mutation::None,
            sim_threads: 4,
        }
    }
}

/// A fuzz run's failure: the divergence plus its minimized repro.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// `"vm"`, `"mgr"`, `"engine"`, or `"multigpu"`.
    pub suite: &'static str,
    /// Index of the failing case (rerun with `--cases 1` after skipping,
    /// or just paste the repro).
    pub case_index: u64,
    /// The original (unshrunk) divergence.
    pub divergence: Divergence,
    /// Ops left after shrinking.
    pub shrunk_ops: usize,
    /// Copy-pasteable Rust test body reproducing the failure.
    pub repro: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} case {} diverged at {} (shrunk to {} ops):",
            self.suite, self.case_index, self.divergence, self.shrunk_ops
        )?;
        write!(f, "{}", self.repro)
    }
}

/// Cases executed by a passing run, per suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// VM-suite cases run.
    pub vm_cases: u64,
    /// Manager-suite cases run.
    pub mgr_cases: u64,
    /// Engine-suite cases run (each is one sequential + one sharded
    /// full-system simulation).
    pub engine_cases: u64,
    /// Multi-GPU-suite cases run (placement schedules vs the residency
    /// oracle; every eighth case adds an audited-vs-plain fleet run).
    pub multigpu_cases: u64,
    /// Total ops replayed.
    pub total_ops: u64,
}

/// Runs the configured fuzz campaign.
///
/// # Errors
///
/// The first [`FuzzFailure`], already shrunk and rendered.
pub fn run_fuzz(config: FuzzConfig) -> Result<FuzzStats, Box<FuzzFailure>> {
    let mut stats = FuzzStats::default();
    for index in 0..config.cases {
        if matches!(config.suite, Suite::Vm | Suite::All) {
            let case = gen_vm_case(config.seed, index, config.max_ops);
            stats.vm_cases += 1;
            stats.total_ops += case.ops.len() as u64;
            if let Err(d) = run_vm_case(case.config, &case.ops, config.mutation) {
                let small = shrink(&case.ops, |ops| {
                    run_vm_case(case.config, ops, config.mutation).is_err()
                });
                let detail = run_vm_case(case.config, &small, config.mutation)
                    .expect_err("shrunk schedule must still fail");
                return Err(Box::new(FuzzFailure {
                    suite: "vm",
                    case_index: index,
                    divergence: d,
                    shrunk_ops: small.len(),
                    repro: render_vm_repro(
                        case.config,
                        &small,
                        config.mutation,
                        &detail.to_string(),
                    ),
                }));
            }
        }
        if matches!(config.suite, Suite::Mgr | Suite::All) {
            let case = gen_mgr_case(config.seed, index, config.max_ops);
            stats.mgr_cases += 1;
            stats.total_ops += case.ops.len() as u64;
            if let Err(d) = run_mgr_case(case.kind, case.frames, &case.ops) {
                let small =
                    shrink(&case.ops, |ops| run_mgr_case(case.kind, case.frames, ops).is_err());
                let detail = run_mgr_case(case.kind, case.frames, &small)
                    .expect_err("shrunk schedule must still fail");
                return Err(Box::new(FuzzFailure {
                    suite: "mgr",
                    case_index: index,
                    divergence: d,
                    shrunk_ops: small.len(),
                    repro: render_mgr_repro(case.kind, case.frames, &small, &detail.to_string()),
                }));
            }
        }
        if matches!(config.suite, Suite::MultiGpu | Suite::All) {
            let case = gen_multigpu_case(config.seed, index, config.max_ops);
            stats.multigpu_cases += 1;
            stats.total_ops += case.ops.len() as u64;
            if let Err(d) = run_multigpu_case(&case) {
                let small = shrink(&case.ops, |ops| {
                    let sub =
                        MultiGpuCase { gpus: case.gpus, policy: case.policy, ops: ops.to_vec() };
                    run_multigpu_case(&sub).is_err()
                });
                let sub = MultiGpuCase { gpus: case.gpus, policy: case.policy, ops: small };
                let detail = run_multigpu_case(&sub).expect_err("shrunk schedule must still fail");
                return Err(Box::new(FuzzFailure {
                    suite: "multigpu",
                    case_index: index,
                    divergence: d,
                    shrunk_ops: sub.ops.len(),
                    repro: render_multigpu_repro(&sub, &sub.ops, &detail.to_string()),
                }));
            }
            // Full-system fleet runs are ~1000× the cost of an op-stream
            // replay, so subsample them: one audited-vs-plain simulation
            // pair every eighth case.
            if index % 8 == 0 {
                if let Err(d) = run_multigpu_system_case(config.seed, index) {
                    return Err(Box::new(FuzzFailure {
                        suite: "multigpu",
                        case_index: index,
                        shrunk_ops: 0,
                        repro: format!(
                            "// Regenerate with run_multigpu_system_case({:#x}, {index})\n\
                             // Divergence: {}\n",
                            config.seed, d.detail
                        ),
                        divergence: d,
                    }));
                }
            }
        }
        if matches!(config.suite, Suite::Engine | Suite::All) {
            let case = gen_engine_case(config.seed, index);
            stats.engine_cases += 1;
            if let Err(d) = run_engine_case(&case, config.sim_threads) {
                // Nothing to shrink: the case is a configuration, not an
                // op schedule, and regenerates from (seed, index).
                let detail = d.detail.clone();
                return Err(Box::new(FuzzFailure {
                    suite: "engine",
                    case_index: index,
                    divergence: d,
                    shrunk_ops: 0,
                    repro: render_engine_repro(
                        config.seed,
                        index,
                        &case,
                        config.sim_threads.max(2),
                        &detail,
                    ),
                }));
            }
        }
    }
    Ok(stats)
}
