//! Op schedules: the stimulus language the fuzzer generates, the harness
//! replays, and the shrinker minimizes.
//!
//! Every op is self-contained (absolute pages, frames, and counts, no
//! implicit cursor state), so *any subsequence* of a schedule is itself a
//! valid schedule — the property the delta-debugging shrinker relies on.
//! The `Debug` rendering of each op is a valid Rust expression body, which
//! is what makes the emitted repros copy-pasteable.

use crate::harness::{MgrKind, VmConfigKind};
use mosaic_sim_core::SimRng;

/// Number of 2 MB regions the VM-suite generator works within.
const VM_REGIONS: u64 = 3;
/// Number of large frames the VM-suite generator maps into.
const VM_FRAMES: u64 = 4;
/// Address spaces exercised by TLB ops.
const VM_ASIDS: u16 = 3;
/// Pages per 2 MB region.
const PAGES: u64 = mosaic_vm::BASE_PAGES_PER_LARGE_PAGE;

/// One step of a VM-suite schedule, driving a page table and a TLB in
/// lockstep with their oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmOp {
    /// Map base page `vpn` to base frame `pfn`.
    Map {
        /// Virtual base page number.
        vpn: u64,
        /// Physical base frame number.
        pfn: u64,
    },
    /// Map all 512 pages of region `lpn` contiguously into frame `lf`
    /// (already-mapped slots are left alone) — the only way random
    /// schedules reach coalescible states.
    MapRegion {
        /// Large page number.
        lpn: u64,
        /// Large frame number.
        lf: u64,
    },
    /// Unmap base page `vpn`.
    Unmap {
        /// Virtual base page number.
        vpn: u64,
    },
    /// Attempt to coalesce region `lpn`.
    Coalesce {
        /// Large page number.
        lpn: u64,
    },
    /// Splinter region `lpn`; a successful splinter flushes the TLB's
    /// large entry, as the real system must.
    Splinter {
        /// Large page number.
        lpn: u64,
    },
    /// Translate page `vpn` and, on success, fill the TLB with the
    /// resulting entry (the walker's fill path).
    Translate {
        /// Virtual base page number.
        vpn: u64,
    },
    /// Probe the TLB (with a side-effect-free peek cross-check first).
    Lookup {
        /// Address space.
        asid: u16,
        /// Virtual base page number probed.
        page: u64,
    },
    /// Fill a TLB entry directly, comparing eviction notifications.
    Fill {
        /// Address space.
        asid: u16,
        /// Virtual base page number filled.
        page: u64,
        /// Fill the large array instead of the base array.
        large: bool,
    },
    /// Invalidate the large entry covering `page`.
    FlushLarge {
        /// Address space.
        asid: u16,
        /// Virtual base page number.
        page: u64,
    },
    /// Invalidate the base entry covering `page`.
    FlushBase {
        /// Address space.
        asid: u16,
        /// Virtual base page number.
        page: u64,
    },
    /// Drop every entry of one address space.
    FlushAsid {
        /// Address space.
        asid: u16,
    },
    /// Drop every entry.
    FlushAll,
    /// Full shootdown of one 2 MB region: invalidate its large entry,
    /// then every one of its 512 base entries. Most of those base slots
    /// hold nothing, so the sweep leans hard on the TLB's per-ASID
    /// occupancy-filter short-circuit for absent entries.
    Shootdown {
        /// Address space.
        asid: u16,
        /// Large page number swept.
        lpn: u64,
    },
}

/// One step of a manager-suite schedule, driving a full memory manager
/// against the frame ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgrOp {
    /// En-masse virtual reservation.
    Reserve {
        /// Address space.
        asid: u16,
        /// First base page.
        start: u64,
        /// Base pages reserved.
        pages: u64,
    },
    /// Demand-touch one page.
    Touch {
        /// Address space.
        asid: u16,
        /// Base page touched.
        vpn: u64,
    },
    /// Demand-touch a contiguous run of pages.
    TouchRange {
        /// Address space.
        asid: u16,
        /// First base page.
        start: u64,
        /// Pages touched in order.
        pages: u64,
    },
    /// Deallocate a contiguous run of pages.
    Dealloc {
        /// Address space.
        asid: u16,
        /// First base page.
        start: u64,
        /// Pages deallocated.
        pages: u64,
    },
    /// Store to one page: marks it recently used and dirty when
    /// resident, and is a no-op otherwise (the fault path is `Touch`'s
    /// job), so any subsequence stays valid.
    Store {
        /// Address space.
        asid: u16,
        /// Base page stored to.
        vpn: u64,
    },
    /// Demand eviction: free at least `bytes` of physical memory,
    /// least-recently-used large frames first, writing dirty pages back.
    Evict {
        /// Bytes of physical memory to free.
        bytes: u64,
    },
}

/// A generated VM-suite case: a TLB geometry plus an op schedule.
#[derive(Debug, Clone)]
pub struct VmCase {
    /// TLB geometry under test.
    pub config: VmConfigKind,
    /// The schedule.
    pub ops: Vec<VmOp>,
}

/// A generated manager-suite case: a manager flavor, a pool size, and an
/// op schedule.
#[derive(Debug, Clone)]
pub struct MgrCase {
    /// Manager flavor under test.
    pub kind: MgrKind,
    /// Physical memory, in 2 MB frames.
    pub frames: u64,
    /// The schedule.
    pub ops: Vec<MgrOp>,
}

fn vm_page(rng: &mut SimRng) -> u64 {
    // Bias toward region boundaries and low slots so coalesce/flush ops
    // interact with the pages Map/MapRegion actually placed.
    let lpn = rng.below(VM_REGIONS);
    let slot = match rng.weighted(&[3, 2, 1]) {
        0 => rng.below(8),
        1 => PAGES - 1 - rng.below(8),
        _ => rng.below(PAGES),
    };
    lpn * PAGES + slot
}

/// Generates one VM-suite op.
fn vm_op(rng: &mut SimRng) -> VmOp {
    let asid = rng.below(u64::from(VM_ASIDS)) as u16;
    match rng.weighted(&[5, 1, 3, 2, 2, 4, 4, 4, 2, 2, 1, 1, 2]) {
        0 => VmOp::Map { vpn: vm_page(rng), pfn: rng.below(VM_FRAMES * PAGES) },
        1 => VmOp::MapRegion { lpn: rng.below(VM_REGIONS), lf: rng.below(VM_FRAMES) },
        2 => VmOp::Unmap { vpn: vm_page(rng) },
        3 => VmOp::Coalesce { lpn: rng.below(VM_REGIONS) },
        4 => VmOp::Splinter { lpn: rng.below(VM_REGIONS) },
        5 => VmOp::Translate { vpn: vm_page(rng) },
        6 => VmOp::Lookup { asid, page: vm_page(rng) },
        7 => VmOp::Fill { asid, page: vm_page(rng), large: rng.chance(0.4) },
        8 => VmOp::FlushLarge { asid, page: vm_page(rng) },
        9 => VmOp::FlushBase { asid, page: vm_page(rng) },
        10 => VmOp::FlushAsid { asid },
        11 => VmOp::FlushAll,
        _ => VmOp::Shootdown { asid, lpn: rng.below(VM_REGIONS) },
    }
}

/// Generates the VM-suite case for `(seed, index)`. Deterministic: the
/// same pair always yields the same case.
pub fn gen_vm_case(seed: u64, index: u64, max_ops: usize) -> VmCase {
    let mut rng = SimRng::from_seed(seed).fork("conformance-vm", index);
    let config = match index % 3 {
        0 => VmConfigKind::Tiny,
        1 => VmConfigKind::PaperL1,
        _ => VmConfigKind::PaperL2,
    };
    let len = rng.below(max_ops.max(1) as u64) as usize + 1;
    VmCase { config, ops: (0..len).map(|_| vm_op(&mut rng)).collect() }
}

/// Number of 2 MB regions per app in the manager-suite universe.
const MGR_REGIONS: u64 = 3;
/// Address spaces exercised by manager ops.
const MGR_ASIDS: u16 = 2;

/// Generates one manager-suite op.
fn mgr_op(rng: &mut SimRng) -> MgrOp {
    let asid = rng.below(u64::from(MGR_ASIDS)) as u16;
    let span = MGR_REGIONS * PAGES;
    match rng.weighted(&[2, 6, 3, 4, 3, 2]) {
        0 => {
            // Half the reservations are chunk-aligned whole regions (the
            // en-masse cudaMalloc pattern CoCoA optimizes), half are
            // arbitrary runs that force the unaligned base-page path.
            if rng.chance(0.5) {
                let lpn = rng.below(MGR_REGIONS);
                MgrOp::Reserve { asid, start: lpn * PAGES, pages: PAGES }
            } else {
                let start = rng.below(span);
                MgrOp::Reserve { asid, start, pages: rng.below(200) + 1 }
            }
        }
        1 => MgrOp::Touch { asid, vpn: rng.below(span) },
        2 => {
            let start = rng.below(span);
            MgrOp::TouchRange { asid, start, pages: rng.below(PAGES) + 1 }
        }
        3 => {
            let start = rng.below(span);
            MgrOp::Dealloc { asid, start, pages: rng.below(PAGES) + 1 }
        }
        4 => MgrOp::Store { asid, vpn: rng.below(span) },
        _ => {
            // From sub-frame requests (rounded up to one frame) to enough
            // pressure to empty most of a small pool.
            MgrOp::Evict { bytes: rng.below(2 * mosaic_vm::LARGE_PAGE_SIZE) + 1 }
        }
    }
}

/// Generates the manager-suite case for `(seed, index)`.
pub fn gen_mgr_case(seed: u64, index: u64, max_ops: usize) -> MgrCase {
    let mut rng = SimRng::from_seed(seed).fork("conformance-mgr", index);
    let kind = *rng.pick(&[
        MgrKind::MosaicDefault,
        MgrKind::MosaicBulk,
        MgrKind::MosaicIdeal,
        MgrKind::MosaicNoCac,
        MgrKind::GpuMmuBase,
        MgrKind::GpuMmuLarge,
        MgrKind::Migrating,
    ]);
    let frames = 2 + rng.below(3) * 2; // 2, 4, or 6 frames: pressure is the point
    let len = rng.below(max_ops.max(1) as u64) as usize + 1;
    MgrCase { kind, frames, ops: (0..len).map(|_| mgr_op(&mut rng)).collect() }
}

/// Renders a minimized VM-suite failure as a copy-pasteable Rust test
/// body.
pub fn render_vm_repro(
    config: VmConfigKind,
    ops: &[VmOp],
    mutation: crate::harness::Mutation,
    detail: &str,
) -> String {
    let mut s = String::new();
    s.push_str("// Minimized repro emitted by the conformance shrinker.\n");
    s.push_str("// Paste into crates/conformance/tests/ and adjust the test name.\n");
    s.push_str("#[test]\nfn shrunken_vm_repro() {\n");
    s.push_str("    use mosaic_conformance::{run_vm_case, Mutation, VmConfigKind, VmOp};\n");
    s.push_str("    let ops = vec![\n");
    for op in ops {
        s.push_str(&format!("        VmOp::{op:?},\n"));
    }
    s.push_str("    ];\n");
    s.push_str(&format!(
        "    run_vm_case(VmConfigKind::{config:?}, &ops, Mutation::{mutation:?}).unwrap();\n"
    ));
    s.push_str("}\n");
    s.push_str(&format!("// Original divergence: {detail}\n"));
    s
}

/// Renders a minimized manager-suite failure as a copy-pasteable Rust
/// test body.
pub fn render_mgr_repro(kind: MgrKind, frames: u64, ops: &[MgrOp], detail: &str) -> String {
    let mut s = String::new();
    s.push_str("// Minimized repro emitted by the conformance shrinker.\n");
    s.push_str("// Paste into crates/conformance/tests/ and adjust the test name.\n");
    s.push_str("#[test]\nfn shrunken_mgr_repro() {\n");
    s.push_str("    use mosaic_conformance::{run_mgr_case, MgrKind, MgrOp};\n");
    s.push_str("    let ops = vec![\n");
    for op in ops {
        s.push_str(&format!("        MgrOp::{op:?},\n"));
    }
    s.push_str("    ];\n");
    s.push_str(&format!("    run_mgr_case(MgrKind::{kind:?}, {frames}, &ops).unwrap();\n"));
    s.push_str("}\n");
    s.push_str(&format!("// Original divergence: {detail}\n"));
    s
}
