//! The engine suite: differential testing of the speculative sharded
//! simulation engine (DESIGN.md §12) against the sequential engine.
//!
//! Unlike the VM and manager suites, the oracle here is not a separate
//! reference model — it is the *sequential engine itself*. The sharded
//! engine's whole contract is bit-identity at any worker count, so every
//! case runs the same workload twice, once at `--sim-threads 1` and once
//! at the campaign's [`FuzzConfig::sim_threads`](crate::FuzzConfig),
//! and any difference in the full [`RunResult`] is a divergence.
//!
//! Cases are full-system configurations (manager flavor, app mix, seed,
//! SM count, paging mode, oversubscription), not op schedules, so there
//! is nothing for the shrinker to minimize: the repro regenerates the
//! case from its `(seed, index)` pair.

use crate::harness::Divergence;
use mosaic_gpusim::{run_workload, set_sim_threads, ManagerKind, RunConfig, RunResult};
use mosaic_sim_core::SimRng;
use mosaic_workloads::{ScaleConfig, Workload};

/// Workload names the engine suite samples mixes from — a spread of
/// TLB-friendly and TLB-hostile access patterns.
const ENGINE_APPS: &[&str] = &["MM", "GUPS", "HS", "CONS", "NN", "MUM", "BFS2", "RED"];

/// A generated engine-suite case: one full-system configuration to run
/// under both engines.
#[derive(Debug, Clone)]
pub struct EngineCase {
    /// App mix (1–3 distinct workloads).
    pub apps: Vec<&'static str>,
    /// Memory manager flavor.
    pub manager: ManagerKind,
    /// Simulation master seed.
    pub seed: u64,
    /// SMs (= speculation lanes).
    pub sm_count: usize,
    /// Kernel phases (>1 forces mid-run commit barriers at phase ends).
    pub phases: u32,
    /// Free preloading instead of demand paging.
    pub preloaded: bool,
    /// Ideal (infinite, zero-latency) TLB reference.
    pub ideal_tlb: bool,
    /// Oversubscription factor in tenths (e.g. `Some(20)` = 2.0×);
    /// `None` = fully subscribed. Mutually exclusive with `preloaded`.
    pub oversub_tenths: Option<u32>,
}

impl EngineCase {
    /// The [`RunConfig`] this case describes, at a scale small enough
    /// that a debug-build campaign stays cheap.
    pub fn run_config(&self) -> RunConfig {
        let mut cfg = RunConfig::new(self.manager).with_scale(ScaleConfig {
            ws_divisor: 64,
            mem_ops_per_warp: 16,
            warps_per_sm: 3,
            phases: self.phases,
        });
        cfg.system.sm_count = self.sm_count;
        cfg.seed = self.seed;
        if self.preloaded {
            cfg = cfg.preloaded();
        }
        if self.ideal_tlb {
            cfg = cfg.ideal_tlb();
        }
        if let Some(t) = self.oversub_tenths {
            cfg = cfg.oversubscribed(f64::from(t) / 10.0);
        }
        cfg
    }
}

/// Generates the engine-suite case for `(seed, index)`. Deterministic:
/// the same pair always yields the same case.
pub fn gen_engine_case(seed: u64, index: u64) -> EngineCase {
    let mut rng = SimRng::from_seed(seed).fork("conformance-engine", index);
    let manager = match rng.below(6) {
        0 => ManagerKind::GpuMmu4K,
        1 => ManagerKind::GpuMmu2M,
        2 => ManagerKind::migrating(),
        // Weighted toward Mosaic: it has the richest management-event
        // surface (coalesce, splinter, shootdown) crossing the barrier.
        _ => ManagerKind::mosaic(),
    };
    let mut apps = ENGINE_APPS.to_vec();
    rng.shuffle(&mut apps);
    apps.truncate(1 + rng.below(3) as usize);
    let preloaded = rng.chance(0.25);
    // 1.2×–2.5× oversubscription on some on-demand cases: eviction and
    // write-back are the paths most entangled with commit ordering.
    let oversub_tenths = (!preloaded && rng.chance(0.3)).then(|| 12 + rng.below(14) as u32);
    EngineCase {
        apps,
        manager,
        seed: rng.below(1 << 16),
        sm_count: 3 + rng.below(5) as usize,
        phases: 1 + rng.below(2) as u32,
        preloaded,
        ideal_tlb: rng.chance(0.2),
        oversub_tenths,
    }
}

/// Summarizes the first field-level difference between two results.
fn diff_results(sequential: &RunResult, sharded: &RunResult) -> String {
    if sequential.apps.len() != sharded.apps.len() {
        return format!(
            "app count: sequential {} sharded {}",
            sequential.apps.len(),
            sharded.apps.len()
        );
    }
    for (i, (a, b)) in sequential.apps.iter().zip(&sharded.apps).enumerate() {
        if a != b {
            return format!("app {i}: sequential {a:?} sharded {b:?}");
        }
    }
    format!("system stats: sequential {sequential:?} sharded {sharded:?}")
}

/// Runs `case` under the sequential engine and under the sharded engine
/// at `sim_threads` workers, demanding a bit-identical [`RunResult`].
///
/// Flips the process-global `set_sim_threads` knob (and restores the
/// default before returning), so concurrent callers must serialize.
///
/// # Errors
///
/// A [`Divergence`] describing the first differing field, if any.
pub fn run_engine_case(case: &EngineCase, sim_threads: usize) -> Result<(), Divergence> {
    let workload = Workload::from_names(&case.apps);
    let cfg = case.run_config();
    set_sim_threads(Some(1));
    let sequential = run_workload(&workload, cfg);
    set_sim_threads(Some(sim_threads.max(2)));
    let sharded = run_workload(&workload, cfg);
    set_sim_threads(None);
    if sequential == sharded {
        Ok(())
    } else {
        Err(Divergence {
            step: 0,
            op: format!("sim_threads {}", sim_threads.max(2)),
            detail: diff_results(&sequential, &sharded),
        })
    }
}

/// Renders an engine-suite failure as a copy-pasteable Rust test body.
/// The case regenerates from `(seed, index)`, so no op dump is needed.
pub fn render_engine_repro(
    seed: u64,
    index: u64,
    case: &EngineCase,
    sim_threads: usize,
    detail: &str,
) -> String {
    let mut s = String::new();
    s.push_str("// Repro emitted by the conformance engine suite.\n");
    s.push_str("// Paste into crates/conformance/tests/ and adjust the test name.\n");
    s.push_str("#[test]\nfn engine_divergence_repro() {\n");
    s.push_str("    use mosaic_conformance::{gen_engine_case, run_engine_case};\n");
    s.push_str(&format!("    let case = gen_engine_case({seed:#x}, {index});\n"));
    s.push_str(&format!("    run_engine_case(&case, {sim_threads}).unwrap();\n"));
    s.push_str("}\n");
    s.push_str(&format!("// Case: {case:?}\n"));
    s.push_str(&format!("// Original divergence: {detail}\n"));
    s
}
