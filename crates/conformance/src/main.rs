//! The `mosaic-conformance` command-line front end.
//!
//! ```text
//! mosaic-conformance fuzz [--cases N] [--seed S] [--max-ops K]
//!                         [--suite vm|mgr|engine|multigpu|all]
//!                         [--mutate MUTATION] [--sim-threads N]
//! ```
//!
//! Exit status: 0 on a clean run, 1 on divergence (minimized repro on
//! stderr), 2 on usage errors. Deterministic: the same arguments always
//! produce the same verdict and the same stderr.

use mosaic_conformance::{run_fuzz, FuzzConfig, Mutation, Suite};

fn usage() -> ! {
    eprintln!(
        "usage: mosaic-conformance fuzz [options]\n\
         \n\
         options:\n\
         \x20 --cases N       cases per suite (default 256)\n\
         \x20 --seed S        master seed, decimal or 0x-hex (default 0xC0FFEE)\n\
         \x20 --max-ops K     upper bound on ops per case (default 120)\n\
         \x20 --suite WHICH   vm | mgr | engine | multigpu | all (default all)\n\
         \x20 --mutate FAULT  inject a driver fault to self-test the harness:\n\
         \x20                 skip-flush-large | fill-ignores-size | lookup-skips-recency\n\
         \x20 --sim-threads N speculation workers for the engine suite's sharded\n\
         \x20                 runs (default 4, clamped to >= 2)\n\
         \n\
         exit status: 0 clean, 1 divergence (minimized repro on stderr), 2 usage"
    );
    std::process::exit(2);
}

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("fuzz") {
        usage();
    }
    let mut config = FuzzConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--cases" => match parse_u64(value) {
                Some(n) => config.cases = n,
                None => usage(),
            },
            "--seed" => match parse_u64(value) {
                Some(s) => config.seed = s,
                None => usage(),
            },
            "--max-ops" => match parse_u64(value) {
                Some(k) if k > 0 => config.max_ops = k as usize,
                _ => usage(),
            },
            "--suite" => {
                config.suite = match value.as_str() {
                    "vm" => Suite::Vm,
                    "mgr" => Suite::Mgr,
                    "engine" => Suite::Engine,
                    "multigpu" => Suite::MultiGpu,
                    "all" => Suite::All,
                    _ => usage(),
                }
            }
            "--sim-threads" => match parse_u64(value) {
                Some(n) if n > 0 => config.sim_threads = n as usize,
                _ => usage(),
            },
            "--mutate" => {
                config.mutation = match value.as_str() {
                    "skip-flush-large" => Mutation::SkipFlushLarge,
                    "fill-ignores-size" => Mutation::FillIgnoresSize,
                    "lookup-skips-recency" => Mutation::LookupSkipsRecency,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    match run_fuzz(config) {
        Ok(stats) => {
            println!(
                "mosaic-conformance: clean — {} vm case(s), {} mgr case(s), {} engine case(s), \
                 {} multigpu case(s), {} ops replayed (seed {:#x})",
                stats.vm_cases,
                stats.mgr_cases,
                stats.engine_cases,
                stats.multigpu_cases,
                stats.total_ops,
                config.seed
            );
        }
        Err(failure) => {
            eprintln!("{failure}");
            std::process::exit(1);
        }
    }
}
