//! Conformance suite: bounded deterministic fuzz smoke, mutation
//! self-tests, and the pinned regressions the shrinker produced for real
//! bugs found (and fixed) by this harness.

use mosaic_conformance::{
    run_fuzz, run_mgr_case, run_vm_case, FuzzConfig, MgrKind, MgrOp, Mutation, Suite, VmConfigKind,
    VmOp,
};

/// A bounded fuzz run over both suites passes and is deterministic: the
/// same config yields the same statistics (and, transitively, the same
/// cases — stats count ops, which depend on every generator draw).
#[test]
fn fuzz_smoke_is_clean_and_deterministic() {
    let config = FuzzConfig { cases: 48, seed: 0xC0FFEE, ..FuzzConfig::default() };
    let first = run_fuzz(config).expect("bounded fuzz run must be clean");
    let second = run_fuzz(config).expect("bounded fuzz run must be clean");
    assert_eq!(first, second);
    assert_eq!(first.vm_cases, 48);
    assert_eq!(first.mgr_cases, 48);
    assert!(first.total_ops > 0);
}

/// A different seed still passes (the oracles hold, not just one stream).
#[test]
fn fuzz_smoke_alternate_seed() {
    let config =
        FuzzConfig { cases: 32, seed: 0xDEAD_BEEF, suite: Suite::All, ..FuzzConfig::default() };
    run_fuzz(config).expect("alternate-seed fuzz run must be clean");
}

/// Injecting a driver fault that skips the TLB flush after a splinter
/// must be caught, and the shrinker must reduce it to a tiny repro.
#[test]
fn mutation_skip_flush_large_is_caught() {
    let config = FuzzConfig {
        suite: Suite::Vm,
        mutation: Mutation::SkipFlushLarge,
        ..FuzzConfig::default()
    };
    let failure = run_fuzz(config).expect_err("stale large TLB entries must diverge");
    assert_eq!(failure.suite, "vm");
    assert!(
        failure.shrunk_ops <= 12,
        "shrunk repro too large: {} ops\n{}",
        failure.shrunk_ops,
        failure.repro
    );
    assert!(failure.repro.contains("run_vm_case"));
}

/// Injecting a fill that ignores the page size must be caught.
#[test]
fn mutation_fill_ignores_size_is_caught() {
    let config = FuzzConfig {
        suite: Suite::Vm,
        mutation: Mutation::FillIgnoresSize,
        ..FuzzConfig::default()
    };
    let failure = run_fuzz(config).expect_err("wrong-array fills must diverge");
    assert!(failure.shrunk_ops <= 12, "shrunk repro too large: {} ops", failure.shrunk_ops);
}

/// Injecting a lookup that fails to update LRU recency must be caught.
#[test]
fn mutation_lookup_skips_recency_is_caught() {
    let config = FuzzConfig {
        suite: Suite::Vm,
        mutation: Mutation::LookupSkipsRecency,
        ..FuzzConfig::default()
    };
    let failure = run_fuzz(config).expect_err("stale recency must change evictions");
    assert!(failure.shrunk_ops <= 12, "shrunk repro too large: {} ops", failure.shrunk_ops);
}

/// Shrunken mutation repros replay to the same failure: the rendered
/// schedule, run under the same mutation, still diverges.
#[test]
fn mutation_repro_replays() {
    let ops = vec![
        VmOp::Fill { asid: 2, page: 1024, large: true },
        VmOp::FlushLarge { asid: 2, page: 1026 },
    ];
    run_vm_case(VmConfigKind::PaperL1, &ops, Mutation::SkipFlushLarge)
        .expect_err("skipping flush_large must leave a stale entry");
    run_vm_case(VmConfigKind::PaperL1, &ops, Mutation::None)
        .expect("the same schedule is clean without the fault");
}

/// The demand-paging ledger end to end, deterministically: touches make
/// pages resident, stores dirty them, eviction unmaps whole frames and
/// writes back exactly the dirty pages, and re-touching an evicted page
/// far-faults it back in. The schedule is replayed against every manager
/// flavor; the ledger re-derives residency, dirty state, write-back
/// bytes, and shootdown coverage after every op.
#[test]
fn eviction_ledger_store_evict_refault_is_clean() {
    let ops = vec![
        MgrOp::Reserve { asid: 0, start: 0, pages: 512 },
        MgrOp::Reserve { asid: 1, start: 512, pages: 512 },
        MgrOp::TouchRange { asid: 0, start: 0, pages: 512 },
        MgrOp::TouchRange { asid: 1, start: 512, pages: 512 },
        MgrOp::Store { asid: 0, vpn: 17 },
        MgrOp::Store { asid: 0, vpn: 211 },
        MgrOp::Store { asid: 1, vpn: 700 },
        MgrOp::Store { asid: 1, vpn: 2000 }, // unreserved: must be a no-op
        MgrOp::Evict { bytes: 2 * 2048 * 1024 },
        MgrOp::TouchRange { asid: 0, start: 0, pages: 64 },
        MgrOp::Store { asid: 0, vpn: 17 },
        MgrOp::Evict { bytes: 1 },
        MgrOp::Evict { bytes: 64 * 2048 * 1024 }, // beyond capacity: drains what it can
    ];
    for kind in [
        MgrKind::MosaicDefault,
        MgrKind::MosaicBulk,
        MgrKind::MosaicIdeal,
        MgrKind::MosaicNoCac,
        MgrKind::GpuMmuBase,
        MgrKind::GpuMmuLarge,
        MgrKind::Migrating,
    ] {
        run_mgr_case(kind, 4, &ops).unwrap_or_else(|d| panic!("{kind:?}: {d}"));
    }
}

// ---------------------------------------------------------------------
// Pinned regressions. Each schedule below is verbatim shrinker output
// from a fuzz run against the buggy code; each now passes because the
// bug is fixed. They are ordinary lockstep cases, so any reintroduction
// of the bug turns them red again.
// ---------------------------------------------------------------------

/// MigratingManager regression: re-touching a hole inside a promoted
/// (coalesced) region went through the interleaved allocator and mapped
/// an arbitrary frame, breaking the page table's contiguity invariant
/// ("coalesced into LargeFrameNum(..) but some PTE is not contiguous").
/// The fix restores the hole's contiguous slot, like gpu_mmu's
/// large-page path. Shrunk from a 100+-op schedule to 4 ops.
#[test]
fn regression_migrating_hole_retouch_after_promotion() {
    let ops = vec![
        MgrOp::Reserve { asid: 0, start: 512, pages: 512 },
        MgrOp::TouchRange { asid: 0, start: 558, pages: 427 },
        MgrOp::Dealloc { asid: 0, start: 332, pages: 462 },
        MgrOp::TouchRange { asid: 0, start: 535, pages: 71 },
    ];
    run_mgr_case(MgrKind::Migrating, 4, &ops).unwrap();
}

/// GpuMmu regression: `touch` inserted the page into the touched set
/// *before* attempting allocation, so a touch that failed with
/// OutOfMemory still inflated `touched_bytes` (real 2809856 vs ledger
/// 2805760 in the original divergence). MigratingManager had the same
/// ordering bug. Shrunk to 10 ops.
#[test]
fn regression_gpu_mmu_failed_touch_inflates_touched_bytes() {
    let ops = vec![
        MgrOp::Reserve { asid: 0, start: 1040, pages: 114 },
        MgrOp::Reserve { asid: 1, start: 512, pages: 512 },
        MgrOp::Reserve { asid: 1, start: 1024, pages: 512 },
        MgrOp::Touch { asid: 1, vpn: 735 },
        MgrOp::TouchRange { asid: 0, start: 825, pages: 421 },
        MgrOp::Touch { asid: 1, vpn: 1046 },
        MgrOp::Reserve { asid: 0, start: 0, pages: 512 },
        MgrOp::Reserve { asid: 0, start: 611, pages: 75 },
        MgrOp::Touch { asid: 0, vpn: 683 },
        MgrOp::Touch { asid: 0, vpn: 315 },
    ];
    run_mgr_case(MgrKind::GpuMmuLarge, 4, &ops).unwrap();
}

/// MosaicManager regression: `stats()` tallied Splintered/Coalesced
/// events only on the deallocate path, so splinters performed by the
/// CAC during a touch-path reclaim incremented nothing ("splinters
/// counter 0 vs 1 events"). `stats()` now reads the CAC's own counters,
/// the single source of truth. Shrunk to 8 ops.
#[test]
fn regression_mosaic_touch_path_splinter_not_counted() {
    let ops = vec![
        MgrOp::Reserve { asid: 0, start: 1024, pages: 512 },
        MgrOp::TouchRange { asid: 0, start: 1132, pages: 502 },
        MgrOp::Reserve { asid: 0, start: 0, pages: 512 },
        MgrOp::Reserve { asid: 1, start: 512, pages: 512 },
        MgrOp::TouchRange { asid: 0, start: 199, pages: 150 },
        MgrOp::TouchRange { asid: 0, start: 934, pages: 234 },
        MgrOp::Dealloc { asid: 0, start: 650, pages: 483 },
        MgrOp::TouchRange { asid: 1, start: 682, pages: 135 },
    ];
    run_mgr_case(MgrKind::MosaicDefault, 2, &ops).unwrap();
}

/// CAC regression: `reclaim` popped a single emergency-list entry and
/// splintered it unconditionally. An entry whose holes had since been
/// re-touched back to full occupancy yielded zero free frames — the
/// splinter destroyed a good large page for nothing, the retry allocation
/// failed, and the Splintered event was dropped on the error path while
/// the counter had already incremented ("splinters counter 1 vs 0
/// events", then a spurious OutOfMemory). `reclaim` now walks the list,
/// skipping full entries, until one actually donates frames. Shrunk to
/// 8 ops.
#[test]
fn regression_cac_reclaim_splinters_refilled_emergency_entry() {
    let ops = vec![
        MgrOp::Reserve { asid: 1, start: 512, pages: 512 },
        MgrOp::TouchRange { asid: 1, start: 740, pages: 439 },
        MgrOp::TouchRange { asid: 1, start: 374, pages: 420 },
        MgrOp::Dealloc { asid: 1, start: 434, pages: 117 },
        MgrOp::Reserve { asid: 1, start: 0, pages: 512 },
        MgrOp::Reserve { asid: 1, start: 1024, pages: 512 },
        MgrOp::TouchRange { asid: 1, start: 319, pages: 258 },
        MgrOp::Touch { asid: 1, vpn: 1283 },
    ];
    run_mgr_case(MgrKind::MosaicDefault, 2, &ops).unwrap();
}
