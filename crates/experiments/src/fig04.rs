//! Figure 4: performance impact of the system I/O bus transfers during
//! demand paging, for base and large pages, as the number of
//! concurrently-executing applications grows.
//!
//! Everything is normalized to 4 KB pages with **no** demand-paging
//! overhead at the same concurrency level. The paper's observations:
//! 4 KB demand paging costs ~40% for one application and worsens with
//! sharing (−82.3% at five applications); 2 MB demand paging is far worse
//! still (−92.5% vs 4 KB paging at one application, −99.8% at five).

use crate::common::{fmt_row, mean, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use std::fmt;

/// One concurrency level's bars.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// Number of concurrently-executing applications.
    pub apps: usize,
    /// 4 KB with demand paging, normalized to 4 KB without.
    pub norm_4k_paging: f64,
    /// 2 MB with demand paging, normalized to 4 KB without.
    pub norm_2m_paging: f64,
}

/// The Figure 4 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig04 {
    /// One row per concurrency level (1–5).
    pub levels: Vec<LevelRow>,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig04 {
    let max_apps = if scope == Scope::Smoke { 3 } else { 5 };
    let level_workloads: Vec<(usize, Vec<mosaic_workloads::Workload>)> =
        (1..=max_apps).map(|n| (n, scope.homogeneous(n))).collect();
    // Three jobs per workload: no-paging reference, 4 KB paging, 2 MB
    // paging.
    let jobs: Vec<_> = level_workloads
        .iter()
        .flat_map(|(_, ws)| ws.iter())
        .flat_map(|w| {
            [
                (w.clone(), scope.config(ManagerKind::GpuMmu4K).preloaded()),
                (w.clone(), scope.config(ManagerKind::GpuMmu4K)),
                (w.clone(), scope.config(ManagerKind::GpuMmu2M)),
            ]
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let mut runs = results.chunks_exact(3);
    let mut levels = Vec::new();
    for (n, ws) in &level_workloads {
        let mut n4 = Vec::new();
        let mut n2 = Vec::new();
        for _ in ws {
            let chunk = runs.next().expect("three runs per workload");
            let no_paging = chunk[0].total_cycles;
            n4.push(no_paging as f64 / chunk[1].total_cycles as f64);
            n2.push(no_paging as f64 / chunk[2].total_cycles as f64);
        }
        levels.push(LevelRow { apps: *n, norm_4k_paging: mean(&n4), norm_2m_paging: mean(&n2) });
    }
    Fig04 { levels }
}

impl fmt::Display for Fig04 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: demand-paging impact (normalized to 4KB, no paging overhead)")?;
        writeln!(f, "{:<24} {:>8} {:>8}", "apps", "4KB+pg", "2MB+pg")?;
        for l in &self.levels {
            writeln!(
                f,
                "{}",
                fmt_row(&format!("{} app(s)", l.apps), &[l.norm_4k_paging, l.norm_2m_paging])
            )?;
        }
        writeln!(
            f,
            "paper: 2MB paging is far worse than 4KB paging and the gap grows with sharing.\n\
             measured 2MB/4KB paging performance ratio: {}",
            self.levels
                .iter()
                .map(|l| format!("{:.2}", l.norm_2m_paging / l.norm_4k_paging))
                .collect::<Vec<_>>()
                .join(" ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_mb_paging_is_worse_than_4kb_paging() {
        let fig = run(Scope::Smoke);
        // 2MB-granularity paging costs real performance...
        let avg_2m = mean(&fig.levels.iter().map(|l| l.norm_2m_paging).collect::<Vec<_>>());
        assert!(avg_2m < 1.0, "2MB paging must cost performance, got {avg_2m:.3}");
        // ...and is worse than 4KB-granularity paging on average (the
        // paper's headline for this figure).
        let avg_4k = mean(&fig.levels.iter().map(|l| l.norm_4k_paging).collect::<Vec<_>>());
        assert!(avg_2m < avg_4k, "2MB {avg_2m:.3} should be worse than 4KB {avg_4k:.3}");
    }
}
