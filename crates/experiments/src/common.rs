//! Shared experiment machinery: sweep scopes, alone-baseline caching, and
//! small statistics helpers.

use mosaic_gpusim::{run_workload, sm_share, ManagerKind, RunConfig, RunResult};
use mosaic_workloads::{heterogeneous_suite, homogeneous_suite, AppProfile, ScaleConfig, Workload};
use std::collections::HashMap;

/// How much of the paper's evaluation a driver sweeps.
///
/// The paper simulates 235 workloads; a full sweep takes a while, so
/// drivers default to representative subsets and can be widened via the
/// `MOSAIC_SCOPE` environment variable (`smoke`, `default`, `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Tiny: a few workloads at reduced scale — for tests and CI.
    Smoke,
    /// Representative subset at the default scale — for benches.
    Default,
    /// The complete suites at the default scale.
    Full,
}

impl Scope {
    /// Reads the scope from `MOSAIC_SCOPE` (default: `Default`).
    pub fn from_env() -> Self {
        match std::env::var("MOSAIC_SCOPE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "smoke" => Scope::Smoke,
            "full" => Scope::Full,
            _ => Scope::Default,
        }
    }

    /// The workload scale this scope runs at.
    pub fn scale(self) -> ScaleConfig {
        match self {
            Scope::Smoke => {
                ScaleConfig { ws_divisor: 16, mem_ops_per_warp: 120, warps_per_sm: 6, phases: 1 }
            }
            _ => ScaleConfig::default(),
        }
    }

    /// A base run configuration at this scope's scale.
    pub fn config(self, manager: ManagerKind) -> RunConfig {
        RunConfig::new(manager).with_scale(self.scale())
    }

    /// Applications per single-application sweep (Figure 3 and friends).
    pub fn apps(self) -> Vec<&'static AppProfile> {
        let take = match self {
            Scope::Smoke => 6,
            Scope::Default => 12,
            Scope::Full => 27,
        };
        // Spread across the TLB-friendly/TLB-sensitive spectrum by taking
        // every k-th application of the (alphabetical) roster.
        let all = mosaic_workloads::ALL_PROFILES.iter().collect::<Vec<_>>();
        let stride = (all.len() / take).max(1);
        all.into_iter().step_by(stride).take(take).collect()
    }

    /// The homogeneous suite (27 workloads in the paper) at this scope.
    pub fn homogeneous(self, copies: usize) -> Vec<Workload> {
        let suite = homogeneous_suite(copies);
        self.subset(suite)
    }

    /// The heterogeneous suite (25 workloads in the paper) at this scope.
    pub fn heterogeneous(self, apps: usize) -> Vec<Workload> {
        let suite = heterogeneous_suite(apps, 7);
        self.subset(suite)
    }

    fn subset(self, suite: Vec<Workload>) -> Vec<Workload> {
        let take = match self {
            Scope::Smoke => 3,
            Scope::Default => 8,
            Scope::Full => suite.len(),
        };
        let stride = (suite.len() / take).max(1);
        suite.into_iter().step_by(stride).take(take).collect()
    }
}

/// Memoized per-application alone baselines.
///
/// The weighted-speedup denominator (`IPC_alone`) depends only on the
/// application and its SM share, so across a suite sweep most lookups are
/// repeats; caching them is what makes full-suite sweeps affordable.
#[derive(Debug, Default)]
pub struct AloneCache {
    cache: HashMap<(String, usize), RunResult>,
}

impl AloneCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// IPC of `profile` running alone on `sms` SMs under the baseline
    /// GPU-MMU configuration derived from `cfg`.
    pub fn alone_ipc(&mut self, profile: &'static AppProfile, sms: usize, cfg: RunConfig) -> f64 {
        let key = (profile.name.to_string(), sms);
        let result = self.cache.entry(key).or_insert_with(|| {
            let mut alone_cfg = cfg;
            alone_cfg.manager = ManagerKind::GpuMmu4K;
            alone_cfg.system.ideal_tlb = false;
            alone_cfg.fragmentation = None;
            alone_cfg.system.sm_count = sms;
            let solo = Workload { name: profile.name.to_string(), apps: vec![profile] };
            run_workload(&solo, alone_cfg)
        });
        result.apps[0].ipc
    }

    /// Weighted speedup of `shared` using cached alone baselines.
    pub fn weighted_speedup(
        &mut self,
        workload: &Workload,
        shared: &RunResult,
        cfg: RunConfig,
    ) -> f64 {
        let n = workload.app_count();
        workload
            .apps
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let alone = self.alone_ipc(p, sm_share(cfg.system.sm_count, n, i), cfg);
                if alone == 0.0 {
                    0.0
                } else {
                    shared.apps[i].ipc / alone
                }
            })
            .sum()
    }

    /// Number of distinct alone runs performed so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no alone run has been performed yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if any element is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Renders one labelled series as a paper-style table row.
pub fn fmt_row(label: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:>8.3}")).collect();
    format!("{label:<24} {}", cells.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_subsets_shrink() {
        assert_eq!(Scope::Full.homogeneous(2).len(), 27);
        assert_eq!(Scope::Default.homogeneous(2).len(), 8);
        assert_eq!(Scope::Smoke.homogeneous(2).len(), 3);
        assert_eq!(Scope::Full.apps().len(), 27);
        assert!(Scope::Smoke.apps().len() >= 5);
    }

    #[test]
    fn alone_cache_memoizes() {
        let mut cache = AloneCache::new();
        let cfg = Scope::Smoke.config(ManagerKind::GpuMmu4K);
        let p = AppProfile::by_name("NN").unwrap();
        let a = cache.alone_ipc(p, 3, cfg);
        let b = cache.alone_ipc(p, 3, cfg);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let _ = cache.alone_ipc(p, 4, cfg);
        assert_eq!(cache.len(), 2, "different SM share is a different baseline");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn fmt_row_aligns() {
        let row = fmt_row("Mosaic", &[1.0, 2.5]);
        assert!(row.starts_with("Mosaic"));
        assert!(row.contains("2.500"));
    }
}
