//! Shared experiment machinery: sweep scopes, alone-baseline caching, and
//! small statistics helpers.

use mosaic_gpusim::{sm_share, ManagerKind, RunConfig, RunResult};
use mosaic_workloads::{heterogeneous_suite, homogeneous_suite, AppProfile, ScaleConfig, Workload};
use std::collections::HashMap;

/// How much of the paper's evaluation a driver sweeps.
///
/// The paper simulates 235 workloads; a full sweep takes a while, so
/// drivers default to representative subsets and can be widened via the
/// `MOSAIC_SCOPE` environment variable (`smoke`, `default`, `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Tiny: a few workloads at reduced scale — for tests and CI.
    Smoke,
    /// Representative subset at the default scale — for benches.
    Default,
    /// The complete suites at the default scale.
    Full,
}

impl Scope {
    /// Reads the scope from `MOSAIC_SCOPE` (default: `Default`).
    pub fn from_env() -> Self {
        match std::env::var("MOSAIC_SCOPE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "smoke" => Scope::Smoke,
            "full" => Scope::Full,
            _ => Scope::Default,
        }
    }

    /// The workload scale this scope runs at.
    pub fn scale(self) -> ScaleConfig {
        match self {
            Scope::Smoke => {
                ScaleConfig { ws_divisor: 16, mem_ops_per_warp: 120, warps_per_sm: 6, phases: 1 }
            }
            _ => ScaleConfig::default(),
        }
    }

    /// A base run configuration at this scope's scale.
    pub fn config(self, manager: ManagerKind) -> RunConfig {
        RunConfig::new(manager).with_scale(self.scale())
    }

    /// Applications per single-application sweep (Figure 3 and friends).
    pub fn apps(self) -> Vec<&'static AppProfile> {
        let take = match self {
            Scope::Smoke => 6,
            Scope::Default => 12,
            Scope::Full => 27,
        };
        // Spread across the TLB-friendly/TLB-sensitive spectrum by
        // sampling the (alphabetical) roster at evenly-spread indices.
        let all = mosaic_workloads::ALL_PROFILES.iter().collect::<Vec<_>>();
        spread_indices(all.len(), take).into_iter().map(|i| all[i]).collect()
    }

    /// The homogeneous suite (27 workloads in the paper) at this scope.
    pub fn homogeneous(self, copies: usize) -> Vec<Workload> {
        let suite = homogeneous_suite(copies);
        self.subset(suite)
    }

    /// The heterogeneous suite (25 workloads in the paper) at this scope.
    pub fn heterogeneous(self, apps: usize) -> Vec<Workload> {
        let suite = heterogeneous_suite(apps, 7);
        self.subset(suite)
    }

    fn subset(self, suite: Vec<Workload>) -> Vec<Workload> {
        let take = match self {
            Scope::Smoke => 3,
            Scope::Default => 8,
            Scope::Full => suite.len(),
        };
        let indices = spread_indices(suite.len(), take);
        let mut picked: Vec<Option<Workload>> = suite.into_iter().map(Some).collect();
        indices
            .into_iter()
            .map(|i| picked[i].take().expect("spread indices are distinct"))
            .collect()
    }
}

/// `take` indices spread evenly over `0..len` as `i * len / take`, so the
/// tail of the roster stays reachable even when `len` is not a multiple of
/// `take` (a plain stride of `len / take` truncates and never samples the
/// last `len % take`-ish elements).
fn spread_indices(len: usize, take: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let take = take.clamp(1, len);
    (0..take).map(|i| i * len / take).collect()
}

/// Memoized per-application alone baselines.
///
/// The weighted-speedup denominator (`IPC_alone`) depends only on the
/// application and the baseline-relevant parts of the run configuration
/// (its SM share, the workload scale, the rest of the system config), so
/// across a suite sweep most lookups are repeats; caching them is what
/// makes full-suite sweeps affordable.
///
/// Entries key on a digest of the *full* baseline configuration — scale
/// plus system minus the fields [`AloneCache::baseline_config`]
/// overrides — not just `(app, sm_count)`: a cache reused across the
/// points of a TLB-size sweep (Figures 14/15 style) must not return a
/// baseline computed under the first point's TLB geometry.
///
/// For parallel sweeps, [`AloneCache::prefetch`] resolves the distinct
/// baseline runs a set of workloads will need through a
/// [`sweep::Executor`] up front; subsequent lookups then serve from the
/// frozen cache.
#[derive(Debug, Default)]
pub struct AloneCache {
    cache: HashMap<(String, String), RunResult>,
}

impl AloneCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The alone-baseline configuration derived from `cfg`: the GPU-MMU
    /// manager on `sms` SMs, with no ideal-TLB idealization and no
    /// pre-fragmentation. Everything else (scale, TLB geometry, paging
    /// mode, seed, ...) is inherited from `cfg` and therefore part of the
    /// cache key.
    fn baseline_config(cfg: RunConfig, sms: usize) -> RunConfig {
        let mut alone_cfg = cfg;
        alone_cfg.manager = ManagerKind::GpuMmu4K;
        alone_cfg.system.ideal_tlb = false;
        alone_cfg.fragmentation = None;
        alone_cfg.system.sm_count = sms;
        alone_cfg
    }

    /// Cache key: application name plus a digest of its baseline config.
    ///
    /// The digest is the `Debug` rendering of the fully-derived
    /// [`RunConfig`], which covers every field that can influence the
    /// baseline run — deterministic, collision-free, and future-proof
    /// against new config fields.
    fn key(profile: &AppProfile, baseline_cfg: &RunConfig) -> (String, String) {
        (profile.name.to_string(), format!("{baseline_cfg:?}"))
    }

    /// IPC of `profile` running alone on `sms` SMs under the baseline
    /// GPU-MMU configuration derived from `cfg`.
    pub fn alone_ipc(&mut self, profile: &'static AppProfile, sms: usize, cfg: RunConfig) -> f64 {
        let alone_cfg = Self::baseline_config(cfg, sms);
        let key = Self::key(profile, &alone_cfg);
        let result = self.cache.entry(key).or_insert_with(|| {
            let solo = Workload { name: profile.name.to_string(), apps: vec![profile] };
            crate::sweep::run_workload_cached(&solo, alone_cfg)
        });
        result.apps[0].ipc
    }

    /// Resolves every alone baseline the given `(workload, config)` pairs
    /// will need, running the missing ones through `exec` in parallel.
    ///
    /// After this returns, [`AloneCache::weighted_speedup`] for any of the
    /// pairs serves purely from the frozen cache — the pattern parallel
    /// drivers use: prefetch the distinct baseline keys, then fold rows
    /// serially with no simulation left on the serial path.
    pub fn prefetch(&mut self, exec: &crate::sweep::Executor, items: &[(&Workload, RunConfig)]) {
        let mut missing: Vec<((String, String), &'static AppProfile, RunConfig)> = Vec::new();
        for &(workload, cfg) in items {
            let n = workload.app_count();
            for (i, profile) in workload.apps.iter().enumerate() {
                let sms = sm_share(cfg.system.sm_count, n, i);
                let alone_cfg = Self::baseline_config(cfg, sms);
                let key = Self::key(profile, &alone_cfg);
                if !self.cache.contains_key(&key) && missing.iter().all(|(k, _, _)| *k != key) {
                    missing.push((key, profile, alone_cfg));
                }
            }
        }
        let jobs = missing
            .iter()
            .map(|&(_, profile, alone_cfg)| {
                let solo = Workload { name: profile.name.to_string(), apps: vec![profile] };
                (solo, alone_cfg)
            })
            .collect();
        let results = crate::sweep::run_workloads(exec, jobs);
        for ((key, _, _), result) in missing.into_iter().zip(results) {
            self.cache.insert(key, result);
        }
    }

    /// Weighted speedup of `shared` using cached alone baselines.
    pub fn weighted_speedup(
        &mut self,
        workload: &Workload,
        shared: &RunResult,
        cfg: RunConfig,
    ) -> f64 {
        let n = workload.app_count();
        workload
            .apps
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let alone = self.alone_ipc(p, sm_share(cfg.system.sm_count, n, i), cfg);
                if alone == 0.0 {
                    0.0
                } else {
                    shared.apps[i].ipc / alone
                }
            })
            .sum()
    }

    /// Number of distinct alone runs performed so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no alone run has been performed yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if any element is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Renders one labelled series as a paper-style table row.
pub fn fmt_row(label: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:>8.3}")).collect();
    format!("{label:<24} {}", cells.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_gpusim::run_workload;

    #[test]
    fn scope_subsets_shrink() {
        assert_eq!(Scope::Full.homogeneous(2).len(), 27);
        assert_eq!(Scope::Default.homogeneous(2).len(), 8);
        assert_eq!(Scope::Smoke.homogeneous(2).len(), 3);
        assert_eq!(Scope::Full.apps().len(), 27);
        assert!(Scope::Smoke.apps().len() >= 5);
    }

    #[test]
    fn spread_indices_sample_the_tail() {
        // 27 apps, take 12: the old `step_by(27 / 12)` stride stopped at
        // index 22, leaving the roster's tail unreachable at every scope
        // below Full. The spread must start at the first element and
        // reach within one stride of the last.
        for (len, take) in [(27, 12), (27, 6), (27, 3), (25, 8), (25, 3), (5, 2)] {
            let idx = spread_indices(len, take);
            assert_eq!(idx.len(), take);
            assert_eq!(idx[0], 0, "({len},{take}): first element reachable");
            assert!(
                *idx.last().unwrap() >= len - len.div_ceil(take),
                "({len},{take}): last pick {} leaves the tail unsampled",
                idx.last().unwrap()
            );
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "({len},{take}): strictly increasing");
            assert!(idx.iter().all(|&i| i < len));
        }
        assert_eq!(spread_indices(27, 12), vec![0, 2, 4, 6, 9, 11, 13, 15, 18, 20, 22, 24]);
        // take == len degenerates to the identity (Full scope).
        assert_eq!(spread_indices(4, 4), vec![0, 1, 2, 3]);
        assert!(spread_indices(0, 3).is_empty());
    }

    #[test]
    fn alone_cache_memoizes() {
        let mut cache = AloneCache::new();
        let cfg = Scope::Smoke.config(ManagerKind::GpuMmu4K);
        let p = AppProfile::by_name("NN").unwrap();
        let a = cache.alone_ipc(p, 3, cfg);
        let b = cache.alone_ipc(p, 3, cfg);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let _ = cache.alone_ipc(p, 4, cfg);
        assert_eq!(cache.len(), 2, "different SM share is a different baseline");
    }

    #[test]
    fn alone_cache_distinguishes_baseline_relevant_configs() {
        // Regression: keying on (app, sm_count) alone let a cache reused
        // across the points of a TLB-size sweep serve every point the
        // baseline computed under the first point's TLB geometry.
        let mut cache = AloneCache::new();
        let p = AppProfile::by_name("NN").unwrap();
        let cfg_a = Scope::Smoke.config(ManagerKind::GpuMmu4K);
        let mut cfg_b = cfg_a;
        cfg_b.system.l1_tlb.base_entries = 8;
        let a = cache.alone_ipc(p, 3, cfg_a);
        let b = cache.alone_ipc(p, 3, cfg_b);
        assert_eq!(cache.len(), 2, "two TLB geometries are two baselines");
        assert_ne!(a, b, "a starved L1 TLB must change the alone baseline");
        // Fields the baseline derivation overrides (manager, ideal TLB,
        // fragmentation) must NOT split the cache.
        let c = cache.alone_ipc(p, 3, cfg_a.ideal_tlb());
        let d = cache.alone_ipc(p, 3, Scope::Smoke.config(ManagerKind::mosaic()));
        assert_eq!(cache.len(), 2, "overridden fields are not part of the key");
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn prefetch_freezes_the_cache() {
        let exec = crate::sweep::Executor::new(4);
        let cfg = Scope::Smoke.config(ManagerKind::GpuMmu4K);
        let w = Workload::from_names(&["NN", "HS"]);
        let mut prefetched = AloneCache::new();
        prefetched.prefetch(&exec, &[(&w, cfg)]);
        assert_eq!(prefetched.len(), 2, "one baseline per application");
        let before = prefetched.len();
        let shared = run_workload(&w, cfg);
        let ws_par = prefetched.weighted_speedup(&w, &shared, cfg);
        assert_eq!(prefetched.len(), before, "lookups served from the frozen cache");
        // And the prefetched baselines match the serially-computed ones.
        let mut serial = AloneCache::new();
        let ws_ser = serial.weighted_speedup(&w, &shared, cfg);
        assert_eq!(ws_par, ws_ser);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn fmt_row_aligns() {
        let row = fmt_row("Mosaic", &[1.0, 2.5]);
        assert!(row.starts_with("Mosaic"));
        assert!(row.contains("2.500"));
    }
}
