//! Figure 10: weighted speedup of 15 selected two-application
//! heterogeneous workloads, split into TLB-friendly and TLB-sensitive
//! classes.
//!
//! TLB-friendly workloads approach the Ideal TLB once Mosaic gives them
//! large pages; TLB-sensitive pairs (e.g. HS–CONS, NW–HISTO in the paper)
//! keep a gap, because one application is highly sensitive to shared L2
//! TLB misses that the other, memory-intensive application keeps
//! inflicting.

use crate::common::{AloneCache, Scope};
use mosaic_gpusim::{run_workload, ManagerKind};
use mosaic_workloads::Workload;
use std::fmt;

/// The 15 pairs, mixing friendly and sensitive classes (HS–CONS and
/// NW–HISTO are the paper's called-out sensitive examples).
pub const PAIRS: [[&str; 2]; 15] = [
    ["MM", "NN"],
    ["HS", "CONS"],
    ["BLK", "JPEG"],
    ["NW", "HISTO"],
    ["CONS", "SCP"],
    ["GUPS", "MM"],
    ["SAD", "SRAD"],
    ["LPS", "3DS"],
    ["RED", "SCAN"],
    ["FFT", "FWT"],
    ["LUD", "MM"],
    ["MUM", "NN"],
    ["SPMV", "BLK"],
    ["QTC", "RAY"],
    ["BFS2", "SC"],
];

/// One pair's weighted speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRow {
    /// Workload name, e.g. `"HS-CONS"`.
    pub name: String,
    /// Whether either application is TLB-sensitive.
    pub tlb_sensitive: bool,
    /// Weighted speedup under GPU-MMU.
    pub gpu_mmu: f64,
    /// Weighted speedup under Mosaic.
    pub mosaic: f64,
    /// Weighted speedup under the Ideal TLB.
    pub ideal: f64,
}

/// The Figure 10 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// One row per selected pair.
    pub rows: Vec<PairRow>,
}

impl Fig10 {
    /// Average Mosaic-to-Ideal ratio over one class.
    pub fn avg_mosaic_to_ideal(&self, sensitive: bool) -> f64 {
        let r: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.tlb_sensitive == sensitive)
            .map(|r| r.mosaic / r.ideal)
            .collect();
        crate::common::mean(&r)
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig10 {
    let pairs: &[[&str; 2]] = if scope == Scope::Smoke { &PAIRS[..6] } else { &PAIRS };
    let mut cache = AloneCache::new();
    let mut rows = Vec::new();
    for pair in pairs {
        let w = Workload::from_names(pair);
        let sensitive = w.apps.iter().any(|p| p.tlb_sensitive());
        let mut ws = [0.0f64; 3];
        let configs = [
            scope.config(ManagerKind::GpuMmu4K),
            scope.config(ManagerKind::mosaic()),
            scope.config(ManagerKind::GpuMmu4K).ideal_tlb(),
        ];
        for (i, cfg) in configs.into_iter().enumerate() {
            let shared = run_workload(&w, cfg);
            ws[i] = cache.weighted_speedup(&w, &shared, cfg);
        }
        rows.push(PairRow {
            name: w.name,
            tlb_sensitive: sensitive,
            gpu_mmu: ws[0],
            mosaic: ws[1],
            ideal: ws[2],
        });
    }
    Fig10 { rows }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: selected two-application workloads (weighted speedup)")?;
        writeln!(
            f,
            "{:<16} {:>10} {:>8} {:>8} {:>8}",
            "workload", "class", "GPU-MMU", "Mosaic", "Ideal"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>10} {:>8.2} {:>8.2} {:>8.2}",
                r.name,
                if r.tlb_sensitive { "sensitive" } else { "friendly" },
                r.gpu_mmu,
                r.mosaic,
                r.ideal
            )?;
        }
        writeln!(
            f,
            "Mosaic reaches {:.0}% of Ideal on TLB-friendly pairs vs {:.0}% on TLB-sensitive ones.",
            self.avg_mosaic_to_ideal(false) * 100.0,
            self.avg_mosaic_to_ideal(true) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_classes_present_and_mosaic_helps() {
        let fig = run(Scope::Smoke);
        assert!(fig.rows.iter().any(|r| r.tlb_sensitive));
        assert!(fig.rows.iter().any(|r| !r.tlb_sensitive));
        // Mosaic improves the average pair.
        let avg_m: f64 =
            crate::common::mean(&fig.rows.iter().map(|r| r.mosaic).collect::<Vec<_>>());
        let avg_g: f64 =
            crate::common::mean(&fig.rows.iter().map(|r| r.gpu_mmu).collect::<Vec<_>>());
        assert!(avg_m > avg_g);
    }
}
