//! Figure 10: weighted speedup of 15 selected two-application
//! heterogeneous workloads, split into TLB-friendly and TLB-sensitive
//! classes.
//!
//! TLB-friendly workloads approach the Ideal TLB once Mosaic gives them
//! large pages; TLB-sensitive pairs (e.g. HS–CONS, NW–HISTO in the paper)
//! keep a gap, because one application is highly sensitive to shared L2
//! TLB misses that the other, memory-intensive application keeps
//! inflicting.

use crate::common::{AloneCache, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::fmt;

/// The 15 pairs, mixing friendly and sensitive classes (HS–CONS and
/// NW–HISTO are the paper's called-out sensitive examples).
pub const PAIRS: [[&str; 2]; 15] = [
    ["MM", "NN"],
    ["HS", "CONS"],
    ["BLK", "JPEG"],
    ["NW", "HISTO"],
    ["CONS", "SCP"],
    ["GUPS", "MM"],
    ["SAD", "SRAD"],
    ["LPS", "3DS"],
    ["RED", "SCAN"],
    ["FFT", "FWT"],
    ["LUD", "MM"],
    ["MUM", "NN"],
    ["SPMV", "BLK"],
    ["QTC", "RAY"],
    ["BFS2", "SC"],
];

/// One pair's weighted speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRow {
    /// Workload name, e.g. `"HS-CONS"`.
    pub name: String,
    /// Whether either application is TLB-sensitive.
    pub tlb_sensitive: bool,
    /// Weighted speedup under GPU-MMU.
    pub gpu_mmu: f64,
    /// Weighted speedup under Mosaic.
    pub mosaic: f64,
    /// Weighted speedup under the Ideal TLB.
    pub ideal: f64,
}

/// The Figure 10 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// One row per selected pair.
    pub rows: Vec<PairRow>,
}

impl Fig10 {
    /// Average Mosaic-to-Ideal ratio over one class.
    pub fn avg_mosaic_to_ideal(&self, sensitive: bool) -> f64 {
        let r: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.tlb_sensitive == sensitive)
            .map(|r| r.mosaic / r.ideal)
            .collect();
        crate::common::mean(&r)
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig10 {
    let pairs: &[[&str; 2]] = if scope == Scope::Smoke { &PAIRS[..6] } else { &PAIRS };
    let exec = Executor::from_env();
    let workloads: Vec<Workload> = pairs.iter().map(|pair| Workload::from_names(pair)).collect();
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| {
            [
                (w.clone(), scope.config(ManagerKind::GpuMmu4K)),
                (w.clone(), scope.config(ManagerKind::mosaic())),
                (w.clone(), scope.config(ManagerKind::GpuMmu4K).ideal_tlb()),
            ]
        })
        .collect();
    let mut cache = AloneCache::new();
    let baseline_items: Vec<_> = jobs.iter().map(|(w, cfg)| (w, *cfg)).collect();
    cache.prefetch(&exec, &baseline_items);
    let results = run_workloads(&exec, jobs.clone());

    let mut rows = Vec::new();
    for (w, chunk) in workloads.iter().zip(jobs.chunks_exact(3).zip(results.chunks_exact(3))) {
        let (job_chunk, result_chunk) = chunk;
        let mut ws = [0.0f64; 3];
        for (i, ((_, cfg), shared)) in job_chunk.iter().zip(result_chunk).enumerate() {
            ws[i] = cache.weighted_speedup(w, shared, *cfg);
        }
        rows.push(PairRow {
            name: w.name.clone(),
            tlb_sensitive: w.apps.iter().any(|p| p.tlb_sensitive()),
            gpu_mmu: ws[0],
            mosaic: ws[1],
            ideal: ws[2],
        });
    }
    Fig10 { rows }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: selected two-application workloads (weighted speedup)")?;
        writeln!(
            f,
            "{:<16} {:>10} {:>8} {:>8} {:>8}",
            "workload", "class", "GPU-MMU", "Mosaic", "Ideal"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>10} {:>8.2} {:>8.2} {:>8.2}",
                r.name,
                if r.tlb_sensitive { "sensitive" } else { "friendly" },
                r.gpu_mmu,
                r.mosaic,
                r.ideal
            )?;
        }
        writeln!(
            f,
            "Mosaic reaches {:.0}% of Ideal on TLB-friendly pairs vs {:.0}% on TLB-sensitive ones.",
            self.avg_mosaic_to_ideal(false) * 100.0,
            self.avg_mosaic_to_ideal(true) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_classes_present_and_mosaic_helps() {
        let fig = run(Scope::Smoke);
        assert!(fig.rows.iter().any(|r| r.tlb_sensitive));
        assert!(fig.rows.iter().any(|r| !r.tlb_sensitive));
        // Mosaic improves the average pair.
        let avg_m: f64 =
            crate::common::mean(&fig.rows.iter().map(|r| r.mosaic).collect::<Vec<_>>());
        let avg_g: f64 =
            crate::common::mean(&fig.rows.iter().map(|r| r.gpu_mmu).collect::<Vec<_>>());
        assert!(avg_m > avg_g);
    }
}
