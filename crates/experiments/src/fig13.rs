//! Figure 13: L1 and L2 TLB hit rates of GPU-MMU vs Mosaic as the number
//! of concurrently-executing applications grows.
//!
//! The paper: Mosaic's coalescing drives both hit rates to ~99% and keeps
//! them there, while GPU-MMU's shared L2 TLB hit rate decays with
//! application count (81% at two applications down to 62% at five) due to
//! inter-application interference. Following the paper, workloads whose
//! GPU-MMU L2 TLB hit rate is ≥98% (no reach problem to solve) are
//! excluded.

use crate::common::{mean, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use std::fmt;

/// Hit rates at one concurrency level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// Concurrently-executing application count.
    pub apps: usize,
    /// GPU-MMU average L1 TLB hit rate.
    pub gpu_mmu_l1: f64,
    /// GPU-MMU average L2 TLB hit rate.
    pub gpu_mmu_l2: f64,
    /// Mosaic average L1 TLB hit rate.
    pub mosaic_l1: f64,
    /// Mosaic average L2 TLB hit rate.
    pub mosaic_l2: f64,
    /// Workloads that passed the limited-reach filter.
    pub workloads: usize,
}

/// The Figure 13 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// One row per concurrency level.
    pub levels: Vec<LevelRow>,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig13 {
    let max = if scope == Scope::Smoke { 3 } else { 5 };
    let exec = Executor::from_env();
    let level_workloads: Vec<(usize, Vec<mosaic_workloads::Workload>)> =
        (1..=max).map(|n| (n, scope.homogeneous(n))).collect();
    // Stage 1: every GPU-MMU baseline (also the limited-reach filter).
    let base_jobs: Vec<_> = level_workloads
        .iter()
        .flat_map(|(_, ws)| ws.iter())
        .map(|w| (w.clone(), scope.config(ManagerKind::GpuMmu4K)))
        .collect();
    let base_results = run_workloads(&exec, base_jobs);
    // Stage 2: Mosaic runs only for the workloads that pass the filter.
    let kept: Vec<bool> =
        base_results.iter().map(|base| base.stats.l2_tlb_hit_rate() < 0.98).collect();
    let mosaic_jobs: Vec<_> = level_workloads
        .iter()
        .flat_map(|(_, ws)| ws.iter())
        .zip(&kept)
        .filter(|(_, &keep)| keep)
        .map(|(w, _)| (w.clone(), scope.config(ManagerKind::mosaic())))
        .collect();
    let mosaic_results = run_workloads(&exec, mosaic_jobs);

    let mut base_iter = base_results.iter().zip(kept);
    let mut mosaic_iter = mosaic_results.iter();
    let mut levels = Vec::new();
    for (n, ws) in &level_workloads {
        let mut g1 = Vec::new();
        let mut g2 = Vec::new();
        let mut m1 = Vec::new();
        let mut m2 = Vec::new();
        for _ in ws {
            let (base, keep) = base_iter.next().expect("one baseline per workload");
            if !keep {
                continue; // no TLB-reach problem: excluded, as in the paper
            }
            let mos = mosaic_iter.next().expect("one Mosaic run per kept workload");
            g1.push(base.stats.l1_tlb_hit_rate());
            g2.push(base.stats.l2_tlb_hit_rate());
            m1.push(mos.stats.l1_tlb_hit_rate());
            m2.push(mos.stats.l2_tlb_hit_rate());
        }
        levels.push(LevelRow {
            apps: *n,
            gpu_mmu_l1: mean(&g1),
            gpu_mmu_l2: mean(&g2),
            mosaic_l1: mean(&m1),
            mosaic_l2: mean(&m2),
            workloads: g1.len(),
        });
    }
    Fig13 { levels }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 13: TLB hit rates (limited-reach workloads only)")?;
        writeln!(
            f,
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>6}",
            "apps", "GPU-MMU L1", "GPU-MMU L2", "Mosaic L1", "Mosaic L2", "n"
        )?;
        for l in &self.levels {
            writeln!(
                f,
                "{:<8} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>6}",
                l.apps,
                l.gpu_mmu_l1 * 100.0,
                l.gpu_mmu_l2 * 100.0,
                l.mosaic_l1 * 100.0,
                l.mosaic_l2 * 100.0,
                l.workloads
            )?;
        }
        writeln!(
            f,
            "paper: Mosaic holds ~99% at both levels; GPU-MMU's L2 hit rate decays with sharing."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_hit_rates_dominate() {
        let fig = run(Scope::Smoke);
        for l in &fig.levels {
            if l.workloads == 0 {
                continue;
            }
            assert!(l.mosaic_l1 > l.gpu_mmu_l1, "{} apps: {l:?}", l.apps);
            assert!(l.mosaic_l1 > 0.7, "{} apps: Mosaic L1 {:.3}", l.apps, l.mosaic_l1);
        }
        assert!(fig.levels.iter().any(|l| l.workloads > 0), "filter must keep some workloads");
    }
}
