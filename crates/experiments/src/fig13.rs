//! Figure 13: L1 and L2 TLB hit rates of GPU-MMU vs Mosaic as the number
//! of concurrently-executing applications grows.
//!
//! The paper: Mosaic's coalescing drives both hit rates to ~99% and keeps
//! them there, while GPU-MMU's shared L2 TLB hit rate decays with
//! application count (81% at two applications down to 62% at five) due to
//! inter-application interference. Following the paper, workloads whose
//! GPU-MMU L2 TLB hit rate is ≥98% (no reach problem to solve) are
//! excluded.

use crate::common::{mean, Scope};
use mosaic_gpusim::{run_workload, ManagerKind};
use std::fmt;

/// Hit rates at one concurrency level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// Concurrently-executing application count.
    pub apps: usize,
    /// GPU-MMU average L1 TLB hit rate.
    pub gpu_mmu_l1: f64,
    /// GPU-MMU average L2 TLB hit rate.
    pub gpu_mmu_l2: f64,
    /// Mosaic average L1 TLB hit rate.
    pub mosaic_l1: f64,
    /// Mosaic average L2 TLB hit rate.
    pub mosaic_l2: f64,
    /// Workloads that passed the limited-reach filter.
    pub workloads: usize,
}

/// The Figure 13 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// One row per concurrency level.
    pub levels: Vec<LevelRow>,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig13 {
    let max = if scope == Scope::Smoke { 3 } else { 5 };
    let mut levels = Vec::new();
    for n in 1..=max {
        let mut g1 = Vec::new();
        let mut g2 = Vec::new();
        let mut m1 = Vec::new();
        let mut m2 = Vec::new();
        for w in scope.homogeneous(n) {
            let base = run_workload(&w, scope.config(ManagerKind::GpuMmu4K));
            if base.stats.l2_tlb_hit_rate() >= 0.98 {
                continue; // no TLB-reach problem: excluded, as in the paper
            }
            let mos = run_workload(&w, scope.config(ManagerKind::mosaic()));
            g1.push(base.stats.l1_tlb_hit_rate());
            g2.push(base.stats.l2_tlb_hit_rate());
            m1.push(mos.stats.l1_tlb_hit_rate());
            m2.push(mos.stats.l2_tlb_hit_rate());
        }
        levels.push(LevelRow {
            apps: n,
            gpu_mmu_l1: mean(&g1),
            gpu_mmu_l2: mean(&g2),
            mosaic_l1: mean(&m1),
            mosaic_l2: mean(&m2),
            workloads: g1.len(),
        });
    }
    Fig13 { levels }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 13: TLB hit rates (limited-reach workloads only)")?;
        writeln!(
            f,
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>6}",
            "apps", "GPU-MMU L1", "GPU-MMU L2", "Mosaic L1", "Mosaic L2", "n"
        )?;
        for l in &self.levels {
            writeln!(
                f,
                "{:<8} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>6}",
                l.apps,
                l.gpu_mmu_l1 * 100.0,
                l.gpu_mmu_l2 * 100.0,
                l.mosaic_l1 * 100.0,
                l.mosaic_l2 * 100.0,
                l.workloads
            )?;
        }
        writeln!(
            f,
            "paper: Mosaic holds ~99% at both levels; GPU-MMU's L2 hit rate decays with sharing."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_hit_rates_dominate() {
        let fig = run(Scope::Smoke);
        for l in &fig.levels {
            if l.workloads == 0 {
                continue;
            }
            assert!(l.mosaic_l1 > l.gpu_mmu_l1, "{} apps: {l:?}", l.apps);
            assert!(l.mosaic_l1 > 0.7, "{} apps: Mosaic L1 {:.3}", l.apps, l.mosaic_l1);
        }
        assert!(fig.levels.iter().any(|l| l.workloads > 0), "filter must keep some workloads");
    }
}
