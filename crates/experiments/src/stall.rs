//! Stall-cycle attribution report.
//!
//! Decomposes each application's warp stall cycles into the exact
//! per-cause buckets the simulator tracks (`StallBreakdown`): TLB hit
//! latency, TLB miss / page walk, far faults, shootdowns, cache, DRAM
//! queueing, DRAM service, compute latency, and synchronization. The
//! report contrasts a TLB-friendly workload (MM, high locality) with a
//! TLB-sensitive one (GUPS, random access) under the GPU-MMU baseline
//! and Mosaic — the latency structure behind the paper's Section 6
//! performance claims.
//!
//! The buckets are measured on the always-on path (no tracing needed)
//! and sum *exactly* to each application's total stall cycles; the run
//! asserts this for every row.

use crate::common::Scope;
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use mosaic_telemetry::{StallBreakdown, StallBucket};
use mosaic_workloads::Workload;
use std::fmt;

/// The workloads the report contrasts: one TLB-friendly, one
/// TLB-sensitive (profile names).
pub const WORKLOADS: [&str; 2] = ["MM", "GUPS"];

/// One application's stall decomposition under one manager.
#[derive(Debug, Clone, PartialEq)]
pub struct StallRow {
    /// Workload name.
    pub workload: String,
    /// Manager label.
    pub manager: String,
    /// Total stall cycles across the application's SMs and phases.
    pub stall_cycles: u64,
    /// Exact per-bucket decomposition (sums to `stall_cycles`).
    pub stall: StallBreakdown,
}

/// The stall-attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// One row per (workload, manager) pair.
    pub rows: Vec<StallRow>,
}

/// Runs the report: each workload alone under GPU-MMU and Mosaic.
pub fn run(scope: Scope) -> StallReport {
    let exec = Executor::from_env();
    let managers = [ManagerKind::GpuMmu4K, ManagerKind::mosaic()];
    let jobs: Vec<_> = WORKLOADS
        .iter()
        .flat_map(|&name| {
            managers.iter().map(move |&mgr| (Workload::from_names(&[name]), scope.config(mgr)))
        })
        .collect();
    let results = run_workloads(&exec, jobs);
    let rows = results
        .iter()
        .map(|r| {
            let mut stall_cycles = 0u64;
            let mut stall = StallBreakdown::default();
            for app in &r.apps {
                stall_cycles += app.stall_cycles;
                stall.merge(&app.stall);
            }
            assert_eq!(
                stall.total(),
                stall_cycles,
                "{} [{}]: stall buckets must sum exactly to stall cycles",
                r.workload,
                r.manager
            );
            StallRow {
                workload: r.workload.clone(),
                manager: r.manager.clone(),
                stall_cycles,
                stall,
            }
        })
        .collect();
    StallReport { rows }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The fleet-only buckets appear only when some row actually
        // charged them, so single-GPU reports render exactly as they did
        // before the multi-GPU work (the golden digests pin this).
        let shown = |bucket: StallBucket| {
            !matches!(bucket, StallBucket::Remote | StallBucket::Migrate)
                || self.rows.iter().any(|r| r.stall.get(bucket) > 0)
        };
        let buckets: Vec<StallBucket> =
            StallBucket::ALL.iter().copied().filter(|&b| shown(b)).collect();
        writeln!(f, "Stall attribution: % of each app's stall cycles, by cause")?;
        write!(f, "{:<6} {:<20} {:>12}", "app", "manager", "stall-cyc")?;
        for &bucket in &buckets {
            write!(f, " {:>9}", bucket.label())?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<6} {:<20} {:>12}", row.workload, row.manager, row.stall_cycles)?;
            for &bucket in &buckets {
                let pct = if row.stall_cycles == 0 {
                    0.0
                } else {
                    row.stall.get(bucket) as f64 * 100.0 / row.stall_cycles as f64
                };
                write!(f, " {:>8.2}%", pct)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "MM is TLB-friendly, GUPS TLB-sensitive; buckets sum exactly to stall cycles.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_sum_exactly_and_walk_dominates_where_expected() {
        let report = run(Scope::Smoke);
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            // `run` already asserts the exact-sum invariant; re-check the
            // rendered rows and that something actually stalled.
            assert_eq!(row.stall.total(), row.stall_cycles, "{row:?}");
            assert!(row.stall_cycles > 0, "{row:?}");
            let other = row.stall.get(StallBucket::Other);
            assert!(other < row.stall_cycles, "attribution must explain most stall: {row:?}");
        }
        // GUPS (random access) spends a larger share of its stall on page
        // walks than MM (high locality) under the same baseline manager.
        let walk_share = |name: &str| {
            let row = report
                .rows
                .iter()
                .find(|r| r.workload == name && r.manager == "GPU-MMU")
                .expect("row present");
            row.stall.get(StallBucket::TlbWalk) as f64 / row.stall_cycles as f64
        };
        assert!(
            walk_share("GUPS") > walk_share("MM"),
            "GUPS {:.4} vs MM {:.4}",
            walk_share("GUPS"),
            walk_share("MM")
        );
    }
}
