//! Deterministic parallel sweep execution.
//!
//! Every experiment driver boils down to a list of independent
//! [`run_workload`] calls whose results are then folded into rows and
//! averages. `run_workload(&Workload, RunConfig) -> RunResult` is a pure
//! function of its inputs, so those calls can run on any number of
//! threads without changing a single bit of any result — the situation
//! the parallel-simulation literature (MGSim, Accel-Sim's parallel
//! sweeps) exploits for near-linear sweep speedups at unchanged fidelity.
//!
//! [`Executor`] is a dependency-free scoped thread pool (std `thread` +
//! `Mutex` only, per DESIGN.md §6). Its determinism contract is *ordered
//! collection*: jobs are submitted as an indexed list and results come
//! back in submission order, whatever order the workers finished in.
//! Downstream folding therefore sees exactly the sequence a serial loop
//! would have produced, which is what makes `--jobs N` output
//! byte-identical to `--jobs 1` (per-job progress goes to stderr only).
//!
//! Worker count resolution, in priority order:
//! 1. the process-wide override set by [`set_jobs`] (the `reproduce`
//!    binary's `--jobs N` flag),
//! 2. the `MOSAIC_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use mosaic_campaign::Store;
use mosaic_gpusim::{run_workload, RunConfig, RunResult};
use mosaic_telemetry::{Eta, Event, TraceSession};
use mosaic_workloads::Workload;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide `--jobs` override; `0` means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide persistent run cache; when set, [`run_workloads`] and
/// [`run_workload_cached`] consult it before simulating and checkpoint
/// every fresh result into it.
static CACHE: Mutex<Option<Arc<Store>>> = Mutex::new(None);

/// Whether [`run_workloads`] wraps each simulation in a [`TraceSession`].
static TRACE_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Global submission counter ordering trace chunks across sweeps.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Trace chunks collected from worker threads, in completion order;
/// [`take_trace`] re-sorts them by submission sequence.
static COLLECTED: Mutex<Vec<TraceChunk>> = Mutex::new(Vec::new());

/// The events of one traced simulation run, tagged with its global
/// submission sequence number so multi-threaded sweeps reassemble into
/// the same order a serial sweep would have produced.
#[derive(Debug, Clone)]
pub struct TraceChunk {
    /// Global submission index (across all sweeps since [`set_trace`]).
    pub seq: u64,
    /// Workload display name.
    pub workload: String,
    /// Manager label.
    pub manager: String,
    /// Captured events in emission order.
    pub events: Vec<Event>,
}

/// Turns sweep-level trace collection on or off. While on, every job run
/// through [`run_workloads`] records its events into a process-global
/// buffer; drain it with [`take_trace`]. Enabling also clears any
/// previously collected chunks and resets the sequence counter.
pub fn set_trace(on: bool) {
    TRACE_REQUESTED.store(on, Ordering::SeqCst);
    if on {
        TRACE_SEQ.store(0, Ordering::SeqCst);
        COLLECTED.lock().expect("trace buffer poisoned").clear();
    }
}

/// Whether sweep-level trace collection is currently on.
pub fn trace_requested() -> bool {
    TRACE_REQUESTED.load(Ordering::SeqCst)
}

/// Drains every collected trace chunk, sorted by submission sequence —
/// the order a `--jobs 1` sweep would have produced them in.
pub fn take_trace() -> Vec<TraceChunk> {
    let mut chunks = std::mem::take(&mut *COLLECTED.lock().expect("trace buffer poisoned"));
    chunks.sort_by_key(|c| c.seq);
    chunks
}

/// Renders trace chunks as JSONL: one `run_begin` line per simulated
/// run, followed by that run's events in emission order. Fixed key
/// order end to end, so equal traces are byte-identical.
pub fn render_trace(chunks: &[TraceChunk]) -> String {
    let mut out = String::new();
    for chunk in chunks {
        out.push_str(&mosaic_telemetry::run_begin_jsonl(&chunk.workload, &chunk.manager));
        out.push('\n');
        for ev in &chunk.events {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
    }
    out
}

/// Installs (or with `None` removes) the process-wide persistent run
/// cache. While installed, every simulation routed through
/// [`run_workloads`] or [`run_workload_cached`] becomes
/// lookup-before-simulate with per-job checkpointing: each fresh result
/// is stored the moment its job finishes, so an interrupted campaign
/// keeps everything it completed.
///
/// Traced sweeps (see [`set_trace`]) bypass the cache in both
/// directions — a cache hit would produce an event-free trace, and an
/// entry inserted by a traced run would be fine, but symmetry keeps the
/// rule simple: tracing means "really simulate".
pub fn set_cache(store: Option<Store>) {
    *CACHE.lock().expect("cache slot poisoned") = store.map(Arc::new);
}

/// The currently installed run cache, if any.
pub fn cache() -> Option<Arc<Store>> {
    CACHE.lock().expect("cache slot poisoned").clone()
}

/// Runs one simulation through the installed cache (straight simulation
/// when no cache is installed or tracing is on). The serial counterpart
/// of [`run_workloads`], for drivers that need a single result inline.
pub fn run_workload_cached(workload: &Workload, cfg: RunConfig) -> RunResult {
    match cache() {
        Some(store) if !trace_requested() => cached_run(&store, workload, cfg),
        _ => run_workload(workload, cfg),
    }
}

/// Lookup-before-simulate with insert-on-miss. The insert happens here,
/// inside the calling job, not after the enclosing sweep — that per-job
/// checkpointing is what makes campaigns resumable.
fn cached_run(store: &Store, workload: &Workload, cfg: RunConfig) -> RunResult {
    let key = store.run_key(workload, &cfg);
    if let Some(hit) = store.lookup(key) {
        return hit.result;
    }
    let t0 = std::time::Instant::now();
    let result = run_workload(workload, cfg);
    store.insert(key, &result, t0.elapsed().as_millis() as u64);
    result
}

/// Sets (or with `None` clears) the process-wide worker-count override.
///
/// Takes precedence over `MOSAIC_JOBS` and the detected parallelism; used
/// by the `reproduce` binary's `--jobs N` flag and by tests that compare
/// serial and parallel sweeps in one process.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// A scoped thread pool that returns job results in submission order.
///
/// # Examples
///
/// ```
/// use mosaic_experiments::sweep::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.run((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// An executor sized by [`set_jobs`], `MOSAIC_JOBS`, or the machine's
    /// available parallelism, in that priority order.
    pub fn from_env() -> Self {
        let overridden = JOBS_OVERRIDE.load(Ordering::Relaxed);
        if overridden > 0 {
            return Executor::new(overridden);
        }
        if let Ok(v) = std::env::var("MOSAIC_JOBS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return Executor::new(n);
                }
            }
            eprintln!("MOSAIC_JOBS={v:?} is not a positive integer; ignoring");
        }
        Executor::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The worker count this executor runs with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task, returning results in submission order.
    ///
    /// Tasks must be independent: each is a pure closure moved to a
    /// worker thread. With one worker (or at most one task) everything
    /// runs inline on the caller's thread — the serial reference the
    /// parallel path must be byte-identical to.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_labeled(tasks.into_iter().map(|t| (String::new(), t)).collect())
    }

    /// Like [`Executor::run`], printing one `[sweep i/n] label (time)`
    /// progress line per completed job on stderr (stdout stays clean for
    /// report text). Jobs with an empty label stay silent.
    pub fn run_labeled<T, F>(&self, tasks: Vec<(String, F)>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let total = tasks.len();
        let progress = Progress::new(total);
        if self.jobs <= 1 || total <= 1 {
            return tasks
                .into_iter()
                .map(|(label, task)| {
                    let t0 = std::time::Instant::now();
                    let out = task();
                    progress.report(&label, t0);
                    out
                })
                .collect();
        }

        // Work queue: a cursor over the task list; each worker takes the
        // next un-started task. Results land in their submission slot, so
        // collection order is independent of completion order.
        let queue = Mutex::new((0usize, tasks.into_iter().map(Some).collect::<Vec<_>>()));
        let results = Mutex::new((0..total).map(|_| None).collect::<Vec<Option<T>>>());
        std::thread::scope(|s| {
            for _ in 0..self.jobs.min(total) {
                s.spawn(|| loop {
                    let (index, label, task) = {
                        let mut q = queue.lock().expect("sweep queue poisoned");
                        let index = q.0;
                        if index >= total {
                            break;
                        }
                        q.0 += 1;
                        let (label, task) = q.1[index].take().expect("task taken twice");
                        (index, label, task)
                    };
                    let t0 = std::time::Instant::now();
                    let out = task();
                    progress.report(&label, t0);
                    results.lock().expect("sweep results poisoned")[index] = Some(out);
                });
            }
        });
        results
            .into_inner()
            .expect("sweep results poisoned")
            .into_iter()
            .map(|slot| slot.expect("every submitted job produces a result"))
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Completion counter behind the per-job stderr progress lines, with an
/// ETA extrapolated from jobs done over batch elapsed time.
#[derive(Debug)]
struct Progress {
    done: AtomicUsize,
    total: usize,
    eta: Eta,
}

impl Progress {
    fn new(total: usize) -> Self {
        Progress { done: AtomicUsize::new(0), total, eta: Eta::start(total) }
    }

    fn report(&self, label: &str, started: std::time::Instant) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !label.is_empty() {
            let eta = if done < self.total {
                format!(" {}", self.eta.render(done))
            } else {
                String::new()
            };
            eprintln!(
                "[sweep {done}/{total}] {label} ({elapsed:.1?}){eta}",
                total = self.total,
                elapsed = started.elapsed()
            );
        }
    }
}

/// Runs a list of `(workload, config)` simulation jobs through `exec`,
/// returning the results in submission order.
///
/// This is the shape every figure driver's inner loop reduces to; the
/// progress label is `workload [manager]`.
pub fn run_workloads(exec: &Executor, jobs: Vec<(Workload, RunConfig)>) -> Vec<RunResult> {
    let tracing = trace_requested();
    let store = if tracing { None } else { cache() };
    let seq_base =
        if tracing { TRACE_SEQ.fetch_add(jobs.len() as u64, Ordering::SeqCst) } else { 0 };
    exec.run_labeled(
        jobs.into_iter()
            .enumerate()
            .map(|(i, (w, cfg))| {
                let manager = cfg.manager.label().to_string();
                let label = format!("{} [{manager}]", w.name);
                let store = store.clone();
                let task = move || {
                    if !tracing {
                        return match &store {
                            Some(store) => cached_run(store, &w, cfg),
                            None => run_workload(&w, cfg),
                        };
                    }
                    // Sequence numbers are assigned at submission, on the
                    // submitting thread, so chunk order is independent of
                    // which worker runs the job and when it finishes.
                    let session = TraceSession::start();
                    let result = run_workload(&w, cfg);
                    let chunk = TraceChunk {
                        seq: seq_base + i as u64,
                        workload: w.name.clone(),
                        manager,
                        events: session.finish(),
                    };
                    COLLECTED.lock().expect("trace buffer poisoned").push(chunk);
                    result
                };
                (label, task)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_submission_order() {
        let exec = Executor::new(4);
        // Jobs finishing in reverse submission order must still collect in
        // submission order.
        let out = exec.run(
            (0..16usize)
                .map(|i| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_millis(
                            (16 - i % 16) as u64 * 2,
                        ));
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let tasks = || (0..10usize).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        assert_eq!(Executor::new(1).run(tasks()), Executor::new(8).run(tasks()));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        COUNT.store(0, Ordering::SeqCst);
        let exec = Executor::new(3);
        let out = exec.run(
            (0..32usize)
                .map(|i| {
                    move || {
                        COUNT.fetch_add(1, Ordering::SeqCst);
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(out.len(), 32);
        assert_eq!(COUNT.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Executor::new(0).jobs(), 1);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<usize> = Executor::new(4).run(Vec::<fn() -> usize>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_override_wins() {
        set_jobs(Some(3));
        assert_eq!(Executor::from_env().jobs(), 3);
        set_jobs(None);
    }
}
