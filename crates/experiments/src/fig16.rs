//! Figure 16: CAC under memory fragmentation (Section 6.4).
//!
//! Stress tests pre-fragment physical memory: a `fragmentation_index`
//! fraction of large frames receive immovable-by-allocation data at a
//! given `occupancy`, removing them from the free frame list. Four
//! compaction designs are compared: no CAC, CAC, CAC with in-DRAM bulk
//! copy (CAC-BC), and an ideal zero-cost CAC.
//!
//! The paper: fragmentation below ~90% barely matters; past it, CAC
//! recovers performance by freeing frames; at 100% CAC loses some of its
//! advantage to compaction traffic, which CAC-BC wins back at low
//! occupancy.
//!
//! Physical memory is sized at ten times the workload footprint so that
//! the free-list knee lands at a high fragmentation index, as in the
//! paper's 3 GB configuration.

use crate::common::{fmt_row, Scope};
use crate::sweep::{run_workload_cached, run_workloads, Executor};
use mosaic_core::cac::CacConfig;
use mosaic_gpusim::{ManagerKind, RunConfig};
use mosaic_workloads::Workload;
use std::fmt;

/// The four compared designs, in report order.
pub const DESIGNS: [(&str, CacConfig); 4] = [
    (
        "no CAC",
        CacConfig { enabled: false, occupancy_threshold: 0.5, bulk_copy: false, ideal: false },
    ),
    ("CAC", CacConfig { enabled: true, occupancy_threshold: 0.5, bulk_copy: false, ideal: false }),
    (
        "CAC-BC",
        CacConfig { enabled: true, occupancy_threshold: 0.5, bulk_copy: true, ideal: false },
    ),
    (
        "Ideal CAC",
        CacConfig { enabled: true, occupancy_threshold: 0.5, bulk_copy: false, ideal: true },
    ),
];

/// One sweep (over fragmentation index or over occupancy).
#[derive(Debug, Clone, PartialEq)]
pub struct FragSweep {
    /// The swept parameter's values.
    pub points: Vec<f64>,
    /// Normalized performance per design: `series[design][point]`,
    /// normalized to unfragmented Mosaic with default CAC.
    pub series: Vec<Vec<f64>>,
}

/// The Figure 16 pair of sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16 {
    /// (a) fragmentation-index sweep at 50% occupancy.
    pub index_sweep: FragSweep,
    /// (b) occupancy sweep at 100% fragmentation index.
    pub occupancy_sweep: FragSweep,
}

/// The stress workload and its memory sizing.
fn stress_setup(scope: Scope) -> (Workload, RunConfig) {
    let w = Workload::from_names(&["HS", "CONS"]);
    // Run 16x longer than the scope default so the one-time compaction
    // burst amortizes the way it does over the paper's much longer runs.
    let mut scale = scope.scale();
    scale.mem_ops_per_warp *= 16;
    let mut cfg = scope.config(ManagerKind::mosaic()).with_scale(scale);
    let ws_total: u64 = w.apps.iter().map(|p| scope.scale().ws_bytes(p)).sum();
    cfg.system.memory_bytes = (ws_total * 10).max(64 * 1024 * 1024);
    (w, cfg)
}

fn sweep(scope: Scope, points: &[f64], fragment: impl Fn(f64) -> (f64, f64)) -> FragSweep {
    let exec = Executor::from_env();
    let (w, base_cfg) = stress_setup(scope);
    // Normalization: default CAC, no fragmentation.
    let baseline = run_workload_cached(&w, base_cfg).total_cycles as f64;
    // One job per (design, point) grid cell.
    let jobs: Vec<_> = DESIGNS
        .iter()
        .flat_map(|&(_, cac)| {
            let (w, fragment) = (&w, &fragment);
            points.iter().map(move |&p| {
                let mut cfg = base_cfg;
                cfg.manager = ManagerKind::Mosaic(cac);
                cfg.fragmentation = Some(fragment(p));
                (w.clone(), cfg)
            })
        })
        .collect();
    let results = run_workloads(&exec, jobs);
    let series = results
        .chunks_exact(points.len())
        .map(|row| row.iter().map(|r| baseline / r.total_cycles as f64).collect())
        .collect();
    FragSweep { points: points.to_vec(), series }
}

/// Runs both sweeps.
pub fn run(scope: Scope) -> Fig16 {
    let (idx_pts, occ_pts): (&[f64], &[f64]) = if scope == Scope::Smoke {
        (&[0.5, 1.0], &[0.25, 0.5])
    } else {
        (&[0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0], &[0.01, 0.10, 0.25, 0.35, 0.50, 0.75])
    };
    Fig16 {
        index_sweep: sweep(scope, idx_pts, |p| (p, 0.5)),
        occupancy_sweep: sweep(scope, occ_pts, |p| (1.0, p)),
    }
}

impl FragSweep {
    fn render(&self, f: &mut fmt::Formatter<'_>, xlabel: &str) -> fmt::Result {
        writeln!(f, "  {xlabel}: {:?}", self.points)?;
        for (i, (name, _)) in DESIGNS.iter().enumerate() {
            writeln!(f, "  {}", fmt_row(name, &self.series[i]))?;
        }
        Ok(())
    }
}

impl fmt::Display for Fig16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 16: CAC under fragmentation (normalized to unfragmented Mosaic)")?;
        writeln!(f, "(a) fragmentation-index sweep at 50% occupancy")?;
        self.index_sweep.render(f, "index")?;
        writeln!(f, "(b) occupancy sweep at 100% fragmentation index")?;
        self.occupancy_sweep.render(f, "occupancy")?;
        writeln!(
            f,
            "paper: index <90% has minimal impact; CAC > no-CAC at high index; CAC-BC helps at low occupancy."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_recovers_performance_under_full_fragmentation() {
        let fig = run(Scope::Smoke);
        let full_idx = fig.index_sweep.points.len() - 1;
        let no_cac = fig.index_sweep.series[0][full_idx];
        let cac = fig.index_sweep.series[1][full_idx];
        let bc = fig.index_sweep.series[2][full_idx];
        let ideal = fig.index_sweep.series[3][full_idx];
        // Compaction with in-DRAM bulk copy clearly beats no compaction
        // (at this reproduction's short runs the narrow-copy variant's
        // one-time migration cost is proportionally inflated, so plain
        // CAC only ties no-CAC here; see EXPERIMENTS.md).
        assert!(bc > no_cac * 1.3, "CAC-BC {bc:.3} should beat no-CAC {no_cac:.3} at index 1.0");
        assert!(ideal >= bc * 0.95, "ideal {ideal:.3} should be at least CAC-BC {bc:.3}");
        assert!(cac > no_cac * 0.7, "CAC {cac:.3} must stay in no-CAC's band {no_cac:.3}");
        // Bulk copy is the cheaper migration path.
        assert!(bc >= cac, "CAC-BC {bc:.3} at least matches CAC {cac:.3}");
    }

    #[test]
    fn moderate_fragmentation_is_benign() {
        let fig = run(Scope::Smoke);
        // At index 0.5 every design stays near the unfragmented baseline.
        for row in &fig.index_sweep.series {
            assert!(row[0] > 0.9, "index 0.5 should be benign, got {:.3}", row[0]);
        }
    }
}
