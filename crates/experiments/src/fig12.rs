//! Figure 12: GPU-MMU and Mosaic *with* demand paging, compared against
//! GPU-MMU *without* demand paging (all data staged to GPU memory before
//! the kernels start).
//!
//! The paper: Mosaic with paging beats even the no-paging GPU-MMU
//! baseline (+58.5% homogeneous, +47.5% heterogeneous), and demand paging
//! itself has little impact on the weighted speedup — the transfer cost
//! exists either way.

use crate::common::{fmt_row, mean, AloneCache, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::{ManagerKind, RunConfig};
use mosaic_workloads::Workload;
use std::fmt;

/// One workload group's bars.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group label ("homogeneous" / "heterogeneous").
    pub group: String,
    /// GPU-MMU with paging, normalized to GPU-MMU without paging.
    pub gpu_mmu_paging: f64,
    /// Mosaic with paging, normalized to GPU-MMU without paging.
    pub mosaic_paging: f64,
}

/// The Figure 12 bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// Homogeneous and heterogeneous rows.
    pub groups: Vec<GroupRow>,
}

fn group(scope: Scope, label: &str, workloads: Vec<(Workload, RunConfig)>) -> GroupRow {
    let exec = Executor::from_env();
    // Three jobs per workload: the no-paging reference, the with-paging
    // baseline, and Mosaic.
    let mosaic_cfg = scope.config(ManagerKind::mosaic());
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|(w, base_cfg)| {
            [(w.clone(), base_cfg.preloaded()), (w.clone(), *base_cfg), (w.clone(), mosaic_cfg)]
        })
        .collect();
    let mut cache = AloneCache::new();
    let baseline_items: Vec<_> =
        workloads.iter().flat_map(|(w, base_cfg)| [(w, *base_cfg), (w, mosaic_cfg)]).collect();
    cache.prefetch(&exec, &baseline_items);
    let results = run_workloads(&exec, jobs);

    let mut g_ratio = Vec::new();
    let mut m_ratio = Vec::new();
    for ((w, base_cfg), chunk) in workloads.iter().zip(results.chunks_exact(3)) {
        let ws_no_paging = cache.weighted_speedup(w, &chunk[0], *base_cfg);
        let ws_paging = cache.weighted_speedup(w, &chunk[1], *base_cfg);
        let ws_mosaic = cache.weighted_speedup(w, &chunk[2], mosaic_cfg);
        g_ratio.push(ws_paging / ws_no_paging);
        m_ratio.push(ws_mosaic / ws_no_paging);
    }
    GroupRow {
        group: label.to_string(),
        gpu_mmu_paging: mean(&g_ratio),
        mosaic_paging: mean(&m_ratio),
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig12 {
    let levels = if scope == Scope::Smoke { 2 } else { 4 };
    let base = scope.config(ManagerKind::GpuMmu4K);
    let homog: Vec<_> =
        (2..=levels).flat_map(|n| scope.homogeneous(n)).map(|w| (w, base)).collect();
    let heter: Vec<_> =
        (2..=levels).flat_map(|n| scope.heterogeneous(n)).map(|w| (w, base)).collect();
    Fig12 { groups: vec![group(scope, "homogeneous", homog), group(scope, "heterogeneous", heter)] }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 12: normalized to GPU-MMU WITHOUT demand paging")?;
        writeln!(f, "{:<24} {:>8} {:>8}", "group", "GPU-MMU", "Mosaic")?;
        for g in &self.groups {
            writeln!(f, "{}", fmt_row(&g.group, &[g.gpu_mmu_paging, g.mosaic_paging]))?;
        }
        writeln!(
            f,
            "paper: Mosaic-with-paging beats no-paging GPU-MMU by 58.5% (homog.) / 47.5% (heterog.);\n\
             demand paging itself costs GPU-MMU little."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_with_paging_beats_gpu_mmu_without() {
        let fig = run(Scope::Smoke);
        assert_eq!(fig.groups.len(), 2);
        for g in &fig.groups {
            assert!(
                g.mosaic_paging > g.gpu_mmu_paging,
                "{}: mosaic {:.2} vs gpu-mmu {:.2}",
                g.group,
                g.mosaic_paging,
                g.gpu_mmu_paging
            );
            assert!(g.mosaic_paging > 1.0, "{}: {:.2}", g.group, g.mosaic_paging);
        }
    }
}
