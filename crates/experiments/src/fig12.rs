//! Figure 12: GPU-MMU and Mosaic *with* demand paging, compared against
//! GPU-MMU *without* demand paging (all data staged to GPU memory before
//! the kernels start).
//!
//! The paper: Mosaic with paging beats even the no-paging GPU-MMU
//! baseline (+58.5% homogeneous, +47.5% heterogeneous), and demand paging
//! itself has little impact on the weighted speedup — the transfer cost
//! exists either way.

use crate::common::{fmt_row, mean, AloneCache, Scope};
use mosaic_gpusim::{run_workload, ManagerKind, RunConfig};
use mosaic_workloads::Workload;
use std::fmt;

/// One workload group's bars.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group label ("homogeneous" / "heterogeneous").
    pub group: String,
    /// GPU-MMU with paging, normalized to GPU-MMU without paging.
    pub gpu_mmu_paging: f64,
    /// Mosaic with paging, normalized to GPU-MMU without paging.
    pub mosaic_paging: f64,
}

/// The Figure 12 bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// Homogeneous and heterogeneous rows.
    pub groups: Vec<GroupRow>,
}

fn group(scope: Scope, label: &str, workloads: Vec<(Workload, RunConfig)>) -> GroupRow {
    let mut cache = AloneCache::new();
    let mut g_ratio = Vec::new();
    let mut m_ratio = Vec::new();
    for (w, base_cfg) in workloads {
        let no_paging_cfg = base_cfg.preloaded();
        let no_paging = run_workload(&w, no_paging_cfg);
        let ws_no_paging = cache.weighted_speedup(&w, &no_paging, base_cfg);
        let with_paging = run_workload(&w, base_cfg);
        let ws_paging = cache.weighted_speedup(&w, &with_paging, base_cfg);
        let mosaic_cfg = scope.config(ManagerKind::mosaic());
        let mosaic = run_workload(&w, mosaic_cfg);
        let ws_mosaic = cache.weighted_speedup(&w, &mosaic, mosaic_cfg);
        g_ratio.push(ws_paging / ws_no_paging);
        m_ratio.push(ws_mosaic / ws_no_paging);
    }
    GroupRow {
        group: label.to_string(),
        gpu_mmu_paging: mean(&g_ratio),
        mosaic_paging: mean(&m_ratio),
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig12 {
    let levels = if scope == Scope::Smoke { 2 } else { 4 };
    let base = scope.config(ManagerKind::GpuMmu4K);
    let homog: Vec<_> =
        (2..=levels).flat_map(|n| scope.homogeneous(n)).map(|w| (w, base)).collect();
    let heter: Vec<_> =
        (2..=levels).flat_map(|n| scope.heterogeneous(n)).map(|w| (w, base)).collect();
    Fig12 { groups: vec![group(scope, "homogeneous", homog), group(scope, "heterogeneous", heter)] }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 12: normalized to GPU-MMU WITHOUT demand paging")?;
        writeln!(f, "{:<24} {:>8} {:>8}", "group", "GPU-MMU", "Mosaic")?;
        for g in &self.groups {
            writeln!(f, "{}", fmt_row(&g.group, &[g.gpu_mmu_paging, g.mosaic_paging]))?;
        }
        writeln!(
            f,
            "paper: Mosaic-with-paging beats no-paging GPU-MMU by 58.5% (homog.) / 47.5% (heterog.);\n\
             demand paging itself costs GPU-MMU little."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_with_paging_beats_gpu_mmu_without() {
        let fig = run(Scope::Smoke);
        assert_eq!(fig.groups.len(), 2);
        for g in &fig.groups {
            assert!(
                g.mosaic_paging > g.gpu_mmu_paging,
                "{}: mosaic {:.2} vs gpu-mmu {:.2}",
                g.group,
                g.mosaic_paging,
                g.gpu_mmu_paging
            );
            assert!(g.mosaic_paging > 1.0, "{}: {:.2}", g.group, g.mosaic_paging);
        }
    }
}
