//! Figure 8: weighted speedup of homogeneous multi-application workloads
//! under GPU-MMU, Mosaic, and the Ideal TLB, for 1–5 concurrent copies.
//!
//! The paper's headline: Mosaic improves homogeneous workloads by 55.5%
//! on average over GPU-MMU and comes within 6.8% of the Ideal TLB.

use crate::common::{fmt_row, mean, AloneCache, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use std::fmt;

/// Weighted speedups at one concurrency level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// Concurrently-executing application count.
    pub apps: usize,
    /// Average weighted speedup under GPU-MMU.
    pub gpu_mmu: f64,
    /// Average weighted speedup under Mosaic.
    pub mosaic: f64,
    /// Average weighted speedup under the Ideal TLB.
    pub ideal: f64,
}

impl LevelRow {
    /// Mosaic's improvement over GPU-MMU, as a fraction.
    pub fn mosaic_improvement(&self) -> f64 {
        self.mosaic / self.gpu_mmu - 1.0
    }

    /// How far Mosaic falls short of the Ideal TLB, as a fraction.
    pub fn gap_to_ideal(&self) -> f64 {
        1.0 - self.mosaic / self.ideal
    }
}

/// The Figure 8 (or 9) series.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupFigure {
    /// Figure label.
    pub title: String,
    /// One row per concurrency level.
    pub levels: Vec<LevelRow>,
}

impl SpeedupFigure {
    /// Average Mosaic-over-GPU-MMU improvement across levels.
    pub fn avg_improvement(&self) -> f64 {
        mean(&self.levels.iter().map(LevelRow::mosaic_improvement).collect::<Vec<_>>())
    }

    /// Average gap to the Ideal TLB across levels.
    pub fn avg_gap_to_ideal(&self) -> f64 {
        mean(&self.levels.iter().map(LevelRow::gap_to_ideal).collect::<Vec<_>>())
    }
}

/// Shared sweep used by Figures 8 and 9.
pub(crate) fn sweep(
    scope: Scope,
    title: &str,
    levels: impl Iterator<Item = usize>,
    workloads_for: impl Fn(usize) -> Vec<mosaic_workloads::Workload>,
) -> SpeedupFigure {
    let exec = Executor::from_env();
    // One job per (level, workload, manager): the whole figure is a flat
    // list of independent simulations.
    let per_level: Vec<(usize, Vec<mosaic_workloads::Workload>)> =
        levels.map(|n| (n, workloads_for(n))).collect();
    let configs = |scope: Scope| {
        [
            scope.config(ManagerKind::GpuMmu4K),
            scope.config(ManagerKind::mosaic()),
            scope.config(ManagerKind::GpuMmu4K).ideal_tlb(),
        ]
    };
    let jobs: Vec<_> = per_level
        .iter()
        .flat_map(|(_, ws)| ws.iter())
        .flat_map(|w| configs(scope).into_iter().map(move |cfg| (w.clone(), cfg)))
        .collect();
    // Pre-resolve every alone baseline through the pool, then serve the
    // weighted-speedup folds below from the frozen cache.
    let mut cache = AloneCache::new();
    let baseline_items: Vec<_> = jobs.iter().map(|(w, cfg)| (w, *cfg)).collect();
    cache.prefetch(&exec, &baseline_items);
    let results = run_workloads(&exec, jobs.clone());

    let mut rows = Vec::new();
    let mut shared = jobs.iter().zip(results.iter());
    for (n, ws) in &per_level {
        let mut per_mgr = [Vec::new(), Vec::new(), Vec::new()];
        for _ in ws {
            for series in &mut per_mgr {
                let ((w, cfg), result) = shared.next().expect("one result per job");
                series.push(cache.weighted_speedup(w, result, *cfg));
            }
        }
        rows.push(LevelRow {
            apps: *n,
            gpu_mmu: mean(&per_mgr[0]),
            mosaic: mean(&per_mgr[1]),
            ideal: mean(&per_mgr[2]),
        });
    }
    SpeedupFigure { title: title.to_string(), levels: rows }
}

/// Runs the Figure 8 sweep.
pub fn run(scope: Scope) -> SpeedupFigure {
    let max = if scope == Scope::Smoke { 3 } else { 5 };
    sweep(scope, "Figure 8: homogeneous workloads", 1..=max, |n| scope.homogeneous(n))
}

impl fmt::Display for SpeedupFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (weighted speedup)", self.title)?;
        writeln!(
            f,
            "{:<24} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "apps", "GPU-MMU", "Mosaic", "Ideal", "mosaic+%", "gap%"
        )?;
        for l in &self.levels {
            writeln!(
                f,
                "{} {:>8.1} {:>8.1}",
                fmt_row(&format!("{} app(s)", l.apps), &[l.gpu_mmu, l.mosaic, l.ideal]),
                l.mosaic_improvement() * 100.0,
                l.gap_to_ideal() * 100.0
            )?;
        }
        writeln!(
            f,
            "average: Mosaic +{:.1}% over GPU-MMU, {:.1}% short of Ideal TLB",
            self.avg_improvement() * 100.0,
            self.avg_gap_to_ideal() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_beats_gpu_mmu_and_trails_ideal() {
        let fig = run(Scope::Smoke);
        assert_eq!(fig.levels.len(), 3);
        for l in &fig.levels {
            assert!(l.mosaic > l.gpu_mmu, "{} apps: {l:?}", l.apps);
            assert!(l.ideal >= l.mosaic * 0.95, "{} apps: {l:?}", l.apps);
        }
        assert!(fig.avg_improvement() > 0.10, "improvement {:.3}", fig.avg_improvement());
    }
}
