//! Figure 15: sensitivity of GPU-MMU and Mosaic to the number of
//! **large-page** TLB entries, at L1 (per SM) and L2 (shared).
//!
//! The paper: Mosaic responds to large-page capacity (its coalesced
//! translations live there), though less sharply than to L2 base capacity
//! because each large entry covers 512x more memory; GPU-MMU cannot
//! coalesce, never fills a large entry, and is flat.

use crate::common::Scope;
use crate::fig14::{sweep_tlb, SweepParam, TlbSensitivity};

/// Runs the Figure 15 sweeps (large-page entries).
pub fn run(scope: Scope) -> TlbSensitivity {
    let (l1, l2): (&[usize], &[usize]) = if scope == Scope::Smoke {
        (&[4, 16], &[32, 256])
    } else {
        (&[4, 8, 16, 32, 64], &[32, 64, 128, 256, 512])
    };
    sweep_tlb(
        scope,
        "Figure 15: large-page TLB entry sensitivity",
        &[(SweepParam::L1Large, l1), (SweepParam::L2Large, l2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig14::TlbSweep;

    #[test]
    fn gpu_mmu_is_flat_in_large_entries() {
        let fig = run(Scope::Smoke);
        for s in &fig.sweeps {
            // GPU-MMU never uses large entries: its curve is essentially
            // flat across the sweep.
            assert!(
                TlbSweep::swing(&s.gpu_mmu) < 0.05,
                "{:?}: GPU-MMU swing {:.3}",
                s.param,
                TlbSweep::swing(&s.gpu_mmu)
            );
            // Mosaic dominates GPU-MMU at every point.
            for (m, g) in s.mosaic.iter().zip(&s.gpu_mmu) {
                assert!(m > g);
            }
        }
    }
}
