//! Command-line driver: regenerate any (or every) table/figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run --release -p mosaic-experiments --bin reproduce -- all
//! cargo run --release -p mosaic-experiments --bin reproduce -- fig08 fig13
//! cargo run --release -p mosaic-experiments --bin reproduce -- --jobs 4 fig08
//! MOSAIC_SCOPE=full cargo run --release -p mosaic-experiments --bin reproduce -- fig08
//! MOSAIC_JSON=out.json cargo run ... -- fig03
//! ```
//!
//! `--jobs N` (or `MOSAIC_JOBS=N`) sets the worker-thread count of the
//! sweep executor; the default is the machine's available parallelism.
//! Output is byte-identical for every job count.
//!
//! `--sim-threads N` (or `MOSAIC_SIM_THREADS=N`) sets the speculation
//! worker count *inside* each simulation (DESIGN.md §12). Where `--jobs`
//! parallelises across sweep points, `--sim-threads` parallelises a
//! single run; the two compose, and output stays byte-identical for
//! every combination. The default is 1 (the serial engine).
//!
//! `--trace FILE` records every simulated event of every sweep run to
//! `FILE` as JSONL (one `run_begin` line per run, then its events);
//! validate or convert it with the `mosaic-trace` binary. `--stall-report`
//! appends the stall-cycle attribution report to the requested
//! experiments. Both are deterministic: byte-identical at any `--jobs`.
//!
//! `--digest` appends one `digest NAME XXXXXXXXXXXXXXXX` line per
//! experiment (FNV-1a 64-bit over the rendered report) after all
//! reports — the same digest the golden determinism tests pin, so shell
//! gates can compare a run against a pinned value with `grep`.
//!
//! `--cache-dir DIR` (or `MOSAIC_CACHE_DIR=DIR`) installs the persistent
//! content-addressed run cache (DESIGN.md §13): completed simulations are
//! checkpointed to disk and served on re-runs, with byte-identical
//! output. `--no-cache` forces straight simulation. Figure drivers cache
//! only when a directory is given; the `campaign` subcommand defaults to
//! `target/mosaic-cache`:
//!
//! ```text
//! reproduce campaign run    FILE   # simulate a scenario matrix (resumable)
//! reproduce campaign expand FILE   # list the points a matrix expands to
//! reproduce campaign status FILE   # cached/pending per point + ETA
//! ```

use mosaic_campaign::{render_expand, render_results, render_status, Spec, Store};
use mosaic_experiments as exp;
use mosaic_experiments::Scope;

const ALL: [&str; 17] = [
    "fig03",
    "fig04",
    "bloat",
    "fig06",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table2",
    "ablations",
    "oversub",
    "multigpu",
];

fn emit<T: std::fmt::Display>(name: &str, value: T, sink: &mut Vec<(String, String)>) {
    println!("{:=<66}", format!("== {name} "));
    println!("{value}");
    sink.push((name.to_string(), value.to_string()));
}

/// FNV-1a (64-bit) over a rendered report — the same function the golden
/// determinism tests use, so `--digest` output is directly comparable to
/// the pinned constants in `tests/parallel_determinism.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes `s` for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the collected results as a JSON object mapping each
/// experiment name to its rendered report text.
fn to_json(results: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, text)) in results.iter().enumerate() {
        out.push_str(&format!("  \"{}\": \"{}\"", json_escape(name), json_escape(text)));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// Strips `--jobs N` / `--jobs=N` out of `args` and returns the parsed
/// worker count, exiting with a usage error on a malformed value.
fn take_jobs_flag(args: &mut Vec<String>) -> Option<usize> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--jobs" {
            if i + 1 >= args.len() {
                eprintln!("--jobs requires a worker count");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_string();
            args.remove(i);
            v
        } else {
            i += 1;
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => jobs = Some(n),
            _ => {
                eprintln!("--jobs expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    jobs
}

/// Strips `--sim-threads N` / `--sim-threads=N` out of `args` and returns
/// the parsed intra-run worker count, exiting with a usage error on a
/// malformed value.
fn take_sim_threads_flag(args: &mut Vec<String>) -> Option<usize> {
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--sim-threads" {
            if i + 1 >= args.len() {
                eprintln!("--sim-threads requires a worker count");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(v) = args[i].strip_prefix("--sim-threads=") {
            let v = v.to_string();
            args.remove(i);
            v
        } else {
            i += 1;
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => threads = Some(n),
            _ => {
                eprintln!("--sim-threads expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    threads
}

/// Strips `--trace FILE` / `--trace=FILE` out of `args` and returns the
/// output path, exiting with a usage error on a missing value.
fn take_trace_flag(args: &mut Vec<String>) -> Option<String> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("--trace requires an output path");
                std::process::exit(2);
            }
            path = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(v) = args[i].strip_prefix("--trace=") {
            path = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    path
}

/// Strips `--cache-dir DIR` / `--cache-dir=DIR` out of `args` and returns
/// the store directory, exiting with a usage error on a missing value.
fn take_cache_dir_flag(args: &mut Vec<String>) -> Option<String> {
    let mut dir = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--cache-dir" {
            if i + 1 >= args.len() {
                eprintln!("--cache-dir requires a directory");
                std::process::exit(2);
            }
            dir = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(v) = args[i].strip_prefix("--cache-dir=") {
            dir = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    dir
}

/// Where the run cache lives: `--cache-dir`, then `MOSAIC_CACHE_DIR`,
/// then (only if `default` is set) the campaign default directory.
/// `--no-cache` wins over everything.
fn resolve_cache_dir(
    flag: Option<String>,
    no_cache: bool,
    default: Option<&str>,
) -> Option<String> {
    if no_cache {
        return None;
    }
    flag.or_else(|| std::env::var("MOSAIC_CACHE_DIR").ok().filter(|s| !s.is_empty()))
        .or_else(|| default.map(str::to_string))
}

/// Opens the store, exiting on failure (an unreadable cache directory is
/// a configuration error, not something to silently run without).
fn open_store(dir: &str) -> Store {
    Store::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache directory {dir}: {e}");
        std::process::exit(1);
    })
}

/// Prints the cache accounting line for whatever ran, if a cache was
/// installed.
fn report_cache_stats() {
    if let Some(store) = exp::sweep::cache() {
        let st = store.stats();
        eprintln!(
            "[cache] {} hits, {} misses, {} stored, {} failures; {} of simulation served from {}",
            st.hits,
            st.misses,
            st.stores,
            st.failures,
            mosaic_telemetry::progress::fmt_duration(std::time::Duration::from_millis(st.saved_ms)),
            store.root().display(),
        );
    }
}

/// The `campaign run|expand|status FILE` subcommand.
fn run_campaign(sub: &[String], cache_dir: Option<String>, no_cache: bool) {
    let (action, file) = match sub {
        [action, file] if matches!(action.as_str(), "run" | "expand" | "status") => {
            (action.as_str(), file.as_str())
        }
        _ => {
            eprintln!(
                "usage: reproduce campaign run|expand|status FILE [--cache-dir DIR] [--no-cache]"
            );
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read campaign file {file}: {e}");
        std::process::exit(1);
    });
    let spec = Spec::parse(&text).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        std::process::exit(2);
    });
    let campaign = spec.expand();
    match action {
        "expand" => print!("{}", render_expand(&campaign)),
        "status" => {
            let Some(dir) = resolve_cache_dir(cache_dir, no_cache, Some(DEFAULT_CACHE_DIR)) else {
                eprintln!("campaign status needs a cache (drop --no-cache)");
                std::process::exit(2);
            };
            print!("{}", render_status(&campaign, &open_store(&dir)));
        }
        "run" => {
            if let Some(dir) = resolve_cache_dir(cache_dir, no_cache, Some(DEFAULT_CACHE_DIR)) {
                exp::sweep::set_cache(Some(open_store(&dir)));
            } else {
                eprintln!("[campaign] cache disabled (--no-cache)");
            }
            let exec = exp::Executor::from_env();
            eprintln!(
                "[campaign] {:?}: {} points ({} skipped), {} workers",
                campaign.name,
                campaign.points.len(),
                campaign.skipped.len(),
                exec.jobs()
            );
            let jobs: Vec<_> =
                campaign.points.iter().map(|p| (p.workload.clone(), p.cfg)).collect();
            let t0 = std::time::Instant::now();
            let results = exp::sweep::run_workloads(&exec, jobs);
            print!("{}", render_results(&campaign, &results));
            report_cache_stats();
            eprintln!("[campaign] finished in {:.1?}", t0.elapsed());
        }
        _ => unreachable!("validated above"),
    }
}

/// Default store location for the `campaign` subcommand (figure drivers
/// only cache when a directory is given explicitly).
const DEFAULT_CACHE_DIR: &str = "target/mosaic-cache";

fn main() {
    let scope = Scope::from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    exp::sweep::set_jobs(take_jobs_flag(&mut args));
    mosaic_gpusim::set_sim_threads(take_sim_threads_flag(&mut args));
    let cache_dir = take_cache_dir_flag(&mut args);
    let no_cache = {
        let before = args.len();
        args.retain(|a| a != "--no-cache");
        args.len() != before
    };
    let trace_path = take_trace_flag(&mut args);
    if args.first().map(String::as_str) == Some("campaign") {
        if trace_path.is_some() {
            exp::sweep::set_trace(true);
        }
        run_campaign(&args[1..], cache_dir, no_cache);
        if let Some(path) = trace_path {
            let chunks = exp::sweep::take_trace();
            let events: usize = chunks.iter().map(|c| c.events.len()).sum();
            std::fs::write(&path, exp::sweep::render_trace(&chunks))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {events} events from {} runs to {path}", chunks.len());
        }
        return;
    }
    if let Some(dir) = resolve_cache_dir(cache_dir, no_cache, None) {
        exp::sweep::set_cache(Some(open_store(&dir)));
    }
    let stall_report = {
        let before = args.len();
        args.retain(|a| a != "--stall-report");
        args.len() != before
    };
    let digest = {
        let before = args.len();
        args.retain(|a| a != "--digest");
        args.len() != before
    };
    if trace_path.is_some() {
        exp::sweep::set_trace(true);
    }
    // `--stall-report` alone runs just the stall report; alongside
    // experiment names (or `all`) it rides along as an extra section.
    let mut wanted: Vec<&str> =
        if args.iter().any(|a| a == "all") || (args.is_empty() && !stall_report) {
            ALL.to_vec()
        } else {
            args.iter().map(String::as_str).collect()
        };
    if stall_report && !wanted.contains(&"stall") {
        wanted.push("stall");
    }
    eprintln!("scope: {scope:?} (set MOSAIC_SCOPE=smoke|default|full)");
    eprintln!(
        "jobs: {} (set with --jobs N or MOSAIC_JOBS=N; output is identical at any count)",
        exp::Executor::from_env().jobs()
    );
    eprintln!(
        "sim-threads: {} (set with --sim-threads N or MOSAIC_SIM_THREADS=N; \
         intra-run speculation workers, output is identical at any count)",
        mosaic_gpusim::sim_threads()
    );

    let mut results = Vec::new();
    for name in wanted {
        let t0 = std::time::Instant::now();
        match name {
            "fig03" => emit(name, exp::fig03::run(scope), &mut results),
            "fig04" => emit(name, exp::fig04::run(scope), &mut results),
            "bloat" => emit(name, exp::bloat::run(scope), &mut results),
            "fig06" => emit(name, exp::fig06::run(scope), &mut results),
            "fig08" => emit(name, exp::fig08::run(scope), &mut results),
            "fig09" => emit(name, exp::fig09::run(scope), &mut results),
            "fig10" => emit(name, exp::fig10::run(scope), &mut results),
            "fig11" => emit(name, exp::fig11::run(scope), &mut results),
            "fig12" => emit(name, exp::fig12::run(scope), &mut results),
            "fig13" => emit(name, exp::fig13::run(scope), &mut results),
            "fig14" => emit(name, exp::fig14::run(scope), &mut results),
            "fig15" => emit(name, exp::fig15::run(scope), &mut results),
            "fig16" => emit(name, exp::fig16::run(scope), &mut results),
            "table2" => emit(name, exp::table2::run(scope), &mut results),
            "oversub" => emit(name, exp::oversub::run(scope), &mut results),
            "multigpu" => emit(name, exp::multigpu::run(scope), &mut results),
            "stall" => emit(name, exp::stall::run(scope), &mut results),
            "ablations" => {
                emit("ablation_pwc", exp::ablations::pwc_vs_l2tlb(scope), &mut results);
                emit("ablation_walker", exp::ablations::walker_threads(scope), &mut results);
                emit("ablation_cac_threshold", exp::ablations::cac_threshold(scope), &mut results);
                emit(
                    "ablation_coalescers",
                    exp::ablations::migrating_coalescer(scope),
                    &mut results,
                );
                emit("ablation_multikernel", exp::ablations::multi_kernel(scope), &mut results);
            }
            other => {
                eprintln!("unknown experiment {other}; available: {ALL:?}");
                std::process::exit(2);
            }
        }
        eprintln!("[{name} done in {:.1?}]", t0.elapsed());
    }

    if digest {
        for (name, text) in &results {
            println!("digest {name} {:016x}", fnv1a(text.as_bytes()));
        }
    }

    if let Some(path) = trace_path {
        let chunks = exp::sweep::take_trace();
        let events: usize = chunks.iter().map(|c| c.events.len()).sum();
        std::fs::write(&path, exp::sweep::render_trace(&chunks))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {events} events from {} runs to {path}", chunks.len());
    }
    report_cache_stats();

    if let Ok(path) = std::env::var("MOSAIC_JSON") {
        std::fs::write(&path, to_json(&results))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote machine-readable results to {path}");
    }
}
