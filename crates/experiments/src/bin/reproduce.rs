//! Command-line driver: regenerate any (or every) table/figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run --release -p mosaic-experiments --bin reproduce -- all
//! cargo run --release -p mosaic-experiments --bin reproduce -- fig08 fig13
//! cargo run --release -p mosaic-experiments --bin reproduce -- --jobs 4 fig08
//! MOSAIC_SCOPE=full cargo run --release -p mosaic-experiments --bin reproduce -- fig08
//! MOSAIC_JSON=out.json cargo run ... -- fig03
//! ```
//!
//! `--jobs N` (or `MOSAIC_JOBS=N`) sets the worker-thread count of the
//! sweep executor; the default is the machine's available parallelism.
//! Output is byte-identical for every job count.
//!
//! `--sim-threads N` (or `MOSAIC_SIM_THREADS=N`) sets the speculation
//! worker count *inside* each simulation (DESIGN.md §12). Where `--jobs`
//! parallelises across sweep points, `--sim-threads` parallelises a
//! single run; the two compose, and output stays byte-identical for
//! every combination. The default is 1 (the serial engine).
//!
//! `--trace FILE` records every simulated event of every sweep run to
//! `FILE` as JSONL (one `run_begin` line per run, then its events);
//! validate or convert it with the `mosaic-trace` binary. `--stall-report`
//! appends the stall-cycle attribution report to the requested
//! experiments. Both are deterministic: byte-identical at any `--jobs`.

use mosaic_experiments as exp;
use mosaic_experiments::Scope;

const ALL: [&str; 16] = [
    "fig03",
    "fig04",
    "bloat",
    "fig06",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table2",
    "ablations",
    "oversub",
];

fn emit<T: std::fmt::Display>(name: &str, value: T, sink: &mut Vec<(String, String)>) {
    println!("{:=<66}", format!("== {name} "));
    println!("{value}");
    sink.push((name.to_string(), value.to_string()));
}

/// Escapes `s` for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the collected results as a JSON object mapping each
/// experiment name to its rendered report text.
fn to_json(results: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, text)) in results.iter().enumerate() {
        out.push_str(&format!("  \"{}\": \"{}\"", json_escape(name), json_escape(text)));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// Strips `--jobs N` / `--jobs=N` out of `args` and returns the parsed
/// worker count, exiting with a usage error on a malformed value.
fn take_jobs_flag(args: &mut Vec<String>) -> Option<usize> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--jobs" {
            if i + 1 >= args.len() {
                eprintln!("--jobs requires a worker count");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_string();
            args.remove(i);
            v
        } else {
            i += 1;
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => jobs = Some(n),
            _ => {
                eprintln!("--jobs expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    jobs
}

/// Strips `--sim-threads N` / `--sim-threads=N` out of `args` and returns
/// the parsed intra-run worker count, exiting with a usage error on a
/// malformed value.
fn take_sim_threads_flag(args: &mut Vec<String>) -> Option<usize> {
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--sim-threads" {
            if i + 1 >= args.len() {
                eprintln!("--sim-threads requires a worker count");
                std::process::exit(2);
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(v) = args[i].strip_prefix("--sim-threads=") {
            let v = v.to_string();
            args.remove(i);
            v
        } else {
            i += 1;
            continue;
        };
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => threads = Some(n),
            _ => {
                eprintln!("--sim-threads expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    threads
}

/// Strips `--trace FILE` / `--trace=FILE` out of `args` and returns the
/// output path, exiting with a usage error on a missing value.
fn take_trace_flag(args: &mut Vec<String>) -> Option<String> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("--trace requires an output path");
                std::process::exit(2);
            }
            path = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(v) = args[i].strip_prefix("--trace=") {
            path = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    path
}

fn main() {
    let scope = Scope::from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    exp::sweep::set_jobs(take_jobs_flag(&mut args));
    mosaic_gpusim::set_sim_threads(take_sim_threads_flag(&mut args));
    let trace_path = take_trace_flag(&mut args);
    let stall_report = {
        let before = args.len();
        args.retain(|a| a != "--stall-report");
        args.len() != before
    };
    if trace_path.is_some() {
        exp::sweep::set_trace(true);
    }
    // `--stall-report` alone runs just the stall report; alongside
    // experiment names (or `all`) it rides along as an extra section.
    let mut wanted: Vec<&str> =
        if args.iter().any(|a| a == "all") || (args.is_empty() && !stall_report) {
            ALL.to_vec()
        } else {
            args.iter().map(String::as_str).collect()
        };
    if stall_report && !wanted.contains(&"stall") {
        wanted.push("stall");
    }
    eprintln!("scope: {scope:?} (set MOSAIC_SCOPE=smoke|default|full)");
    eprintln!(
        "jobs: {} (set with --jobs N or MOSAIC_JOBS=N; output is identical at any count)",
        exp::Executor::from_env().jobs()
    );
    eprintln!(
        "sim-threads: {} (set with --sim-threads N or MOSAIC_SIM_THREADS=N; \
         intra-run speculation workers, output is identical at any count)",
        mosaic_gpusim::sim_threads()
    );

    let mut results = Vec::new();
    for name in wanted {
        let t0 = std::time::Instant::now();
        match name {
            "fig03" => emit(name, exp::fig03::run(scope), &mut results),
            "fig04" => emit(name, exp::fig04::run(scope), &mut results),
            "bloat" => emit(name, exp::bloat::run(scope), &mut results),
            "fig06" => emit(name, exp::fig06::run(scope), &mut results),
            "fig08" => emit(name, exp::fig08::run(scope), &mut results),
            "fig09" => emit(name, exp::fig09::run(scope), &mut results),
            "fig10" => emit(name, exp::fig10::run(scope), &mut results),
            "fig11" => emit(name, exp::fig11::run(scope), &mut results),
            "fig12" => emit(name, exp::fig12::run(scope), &mut results),
            "fig13" => emit(name, exp::fig13::run(scope), &mut results),
            "fig14" => emit(name, exp::fig14::run(scope), &mut results),
            "fig15" => emit(name, exp::fig15::run(scope), &mut results),
            "fig16" => emit(name, exp::fig16::run(scope), &mut results),
            "table2" => emit(name, exp::table2::run(scope), &mut results),
            "oversub" => emit(name, exp::oversub::run(scope), &mut results),
            "stall" => emit(name, exp::stall::run(scope), &mut results),
            "ablations" => {
                emit("ablation_pwc", exp::ablations::pwc_vs_l2tlb(scope), &mut results);
                emit("ablation_walker", exp::ablations::walker_threads(scope), &mut results);
                emit("ablation_cac_threshold", exp::ablations::cac_threshold(scope), &mut results);
                emit(
                    "ablation_coalescers",
                    exp::ablations::migrating_coalescer(scope),
                    &mut results,
                );
                emit("ablation_multikernel", exp::ablations::multi_kernel(scope), &mut results);
            }
            other => {
                eprintln!("unknown experiment {other}; available: {ALL:?}");
                std::process::exit(2);
            }
        }
        eprintln!("[{name} done in {:.1?}]", t0.elapsed());
    }

    if let Some(path) = trace_path {
        let chunks = exp::sweep::take_trace();
        let events: usize = chunks.iter().map(|c| c.events.len()).sum();
        std::fs::write(&path, exp::sweep::render_trace(&chunks))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {events} events from {} runs to {path}", chunks.len());
    }

    if let Ok(path) = std::env::var("MOSAIC_JSON") {
        std::fs::write(&path, to_json(&results))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote machine-readable results to {path}");
    }
}
