//! Multi-GPU scale-out: Mosaic vs GPU-MMU on an indexed fleet.
//!
//! MGMark-style workload pairings run at fleet sizes 1/2/4 under both
//! managers. The fleet weak-scales the machine (`g ×` the SMs and the
//! memory), applications stripe round-robin across every device's SMs,
//! and 2MB regions land on whichever device first touches them — so a
//! share of each device's accesses resolve remotely and cross the
//! interconnect. Reported values are system IPC, scaling efficiency
//! against the same manager's single-GPU run (1.0 = perfect weak
//! scaling), and the remote share of warp transactions.
//!
//! A second block probes the page-placement policies at the largest
//! fleet: first-touch vs replicate-read-only vs migrate-on-threshold,
//! under Mosaic on the first pairing.

use crate::common::Scope;
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::{ManagerKind, PlacementPolicy, RunResult, Topology};
use mosaic_workloads::Workload;
use std::fmt;

/// The fixed pairings probed at every scope: a streaming/random mix and
/// a cache-friendly/irregular mix.
const PAIRINGS: [[&str; 2]; 2] = [["MM", "GUPS"], ["HS", "CONS"]];

/// Migration threshold for the placement-policy probe.
const MIGRATE_THRESHOLD: u32 = 8;

/// One pairing at one fleet size, both managers.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiGpuRow {
    /// Workload pairing name.
    pub name: String,
    /// Fleet size (number of GPUs).
    pub gpus: usize,
    /// GPU-MMU system IPC (instructions retired ÷ total cycles).
    pub ipc_gpu_mmu: f64,
    /// Mosaic system IPC.
    pub ipc_mosaic: f64,
    /// GPU-MMU weak-scaling efficiency vs its own single-GPU run.
    pub eff_gpu_mmu: f64,
    /// Mosaic weak-scaling efficiency vs its own single-GPU run.
    pub eff_mosaic: f64,
    /// Share of Mosaic's warp transactions serviced remotely.
    pub remote_frac: f64,
    /// Bytes Mosaic moved over the interconnect, in MB.
    pub interconnect_mb: f64,
}

impl MultiGpuRow {
    /// Mosaic's IPC advantage over GPU-MMU at this fleet size.
    pub fn mosaic_vs_gpu_mmu(&self) -> f64 {
        if self.ipc_gpu_mmu == 0.0 {
            0.0
        } else {
            self.ipc_mosaic / self.ipc_gpu_mmu
        }
    }
}

/// One placement policy at the probe fleet size (Mosaic, first pairing).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRow {
    /// Policy label.
    pub policy: String,
    /// System IPC under this policy.
    pub ipc: f64,
    /// Remote accesses under this policy.
    pub remote_accesses: u64,
    /// Inter-GPU migrations performed.
    pub migrations: u64,
    /// Read-only replications performed.
    pub replications: u64,
}

/// The multi-GPU scale-out figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigMultiGpu {
    /// One row per (pairing, fleet size), pairing-major.
    pub rows: Vec<MultiGpuRow>,
    /// Placement-policy probe at the largest fleet.
    pub placement: Vec<PlacementRow>,
}

/// Fleet sizes this scope sweeps.
fn fleets(_scope: Scope) -> &'static [usize] {
    &[1, 2, 4]
}

/// Instructions retired across all applications ÷ total cycles.
fn sys_ipc(r: &RunResult) -> f64 {
    let instr: u64 = r.apps.iter().map(|a| a.instructions).sum();
    if r.total_cycles == 0 {
        0.0
    } else {
        instr as f64 / r.total_cycles as f64
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> FigMultiGpu {
    let fleets = fleets(scope);
    let probe = fleets.iter().copied().max().unwrap_or(1);
    // Pairing-major: both managers at each fleet size, then the two
    // non-default placement policies at the probe fleet.
    let mut jobs = Vec::new();
    for pairing in &PAIRINGS {
        let w = Workload::from_names(pairing);
        for &g in fleets {
            let fleet = |m: ManagerKind| scope.config(m).multi_gpu(g, Topology::FullyConnected);
            jobs.push((w.clone(), fleet(ManagerKind::GpuMmu4K)));
            jobs.push((w.clone(), fleet(ManagerKind::mosaic())));
        }
    }
    let w0 = Workload::from_names(&PAIRINGS[0]);
    let probe_cfg = |p: PlacementPolicy| {
        scope
            .config(ManagerKind::mosaic())
            .multi_gpu(probe, Topology::FullyConnected)
            .with_placement(p)
    };
    jobs.push((w0.clone(), probe_cfg(PlacementPolicy::ReplicateReadOnly)));
    jobs.push((
        w0,
        probe_cfg(PlacementPolicy::MigrateOnThreshold { threshold: MIGRATE_THRESHOLD }),
    ));
    let results = run_workloads(&Executor::from_env(), jobs);

    let per_pairing = 2 * fleets.len();
    let mut rows = Vec::with_capacity(PAIRINGS.len() * fleets.len());
    for (pairing, chunk) in PAIRINGS.iter().zip(results.chunks_exact(per_pairing)) {
        let (base_gpu_mmu, base_mosaic) = (sys_ipc(&chunk[0]), sys_ipc(&chunk[1]));
        for (gi, &g) in fleets.iter().enumerate() {
            let (gpu_mmu, mosaic) = (&chunk[2 * gi], &chunk[2 * gi + 1]);
            let (ipc_g, ipc_m) = (sys_ipc(gpu_mmu), sys_ipc(mosaic));
            let eff = |ipc: f64, base: f64| {
                if base == 0.0 {
                    0.0
                } else {
                    ipc / (g as f64 * base)
                }
            };
            let transactions = mosaic.stats.l1_tlb_total.max(1);
            rows.push(MultiGpuRow {
                name: pairing.join("+"),
                gpus: g,
                ipc_gpu_mmu: ipc_g,
                ipc_mosaic: ipc_m,
                eff_gpu_mmu: eff(ipc_g, base_gpu_mmu),
                eff_mosaic: eff(ipc_m, base_mosaic),
                remote_frac: mosaic.stats.remote_accesses as f64 / transactions as f64,
                interconnect_mb: mosaic.stats.interconnect_bytes as f64 / (1024.0 * 1024.0),
            });
        }
    }

    // Placement probe: first-touch is the probe-fleet Mosaic run already
    // in the scaling block; the two policy overrides follow it.
    let probe_idx = 2 * (fleets.len() - 1) + 1;
    let first_touch = &results[probe_idx];
    let tail = &results[results.len() - 2..];
    let placement =
        [("first-touch", first_touch), ("replicate-ro", &tail[0]), ("migrate", &tail[1])]
            .into_iter()
            .map(|(policy, r)| PlacementRow {
                policy: policy.to_string(),
                ipc: sys_ipc(r),
                remote_accesses: r.stats.remote_accesses,
                migrations: r.stats.fleet_migrations,
                replications: r.stats.fleet_replications,
            })
            .collect();
    FigMultiGpu { rows, placement }
}

impl fmt::Display for FigMultiGpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Multi-GPU scale-out: weak scaling at 1/2/4 GPUs (first-touch placement)")?;
        writeln!(
            f,
            "{:<10} {:>5} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8} {:>8}",
            "workload",
            "gpus",
            "GPU-MMU",
            "Mosaic",
            "ratio",
            "eff-MMU",
            "eff-Mos",
            "remote%",
            "icn-MB"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>5} {:>9.3} {:>9.3} {:>7.3} {:>8.3} {:>8.3} {:>7.1}% {:>8.1}",
                r.name,
                r.gpus,
                r.ipc_gpu_mmu,
                r.ipc_mosaic,
                r.mosaic_vs_gpu_mmu(),
                r.eff_gpu_mmu,
                r.eff_mosaic,
                100.0 * r.remote_frac,
                r.interconnect_mb
            )?;
        }
        writeln!(
            f,
            "placement policies ({} at {} GPUs, Mosaic, migrate threshold {}):",
            self.rows.first().map(|r| r.name.as_str()).unwrap_or("?"),
            self.rows.iter().map(|r| r.gpus).max().unwrap_or(1),
            MIGRATE_THRESHOLD
        )?;
        writeln!(
            f,
            "{:<14} {:>9} {:>9} {:>10} {:>12}",
            "policy", "IPC", "remote", "migrations", "replications"
        )?;
        for p in &self.placement {
            writeln!(
                f,
                "{:<14} {:>9.3} {:>9} {:>10} {:>12}",
                p.policy, p.ipc, p.remote_accesses, p.migrations, p.replications
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sweep_scales_and_goes_remote() {
        let fig = run(Scope::Smoke);
        assert_eq!(fig.rows.len(), PAIRINGS.len() * fleets(Scope::Smoke).len());
        assert_eq!(fig.placement.len(), 3);
        for r in &fig.rows {
            assert!(r.ipc_gpu_mmu > 0.0 && r.ipc_mosaic > 0.0, "{}@{} completes", r.name, r.gpus);
            if r.gpus == 1 {
                assert!((r.eff_gpu_mmu - 1.0).abs() < 1e-12, "N=1 is its own baseline");
                assert!(r.remote_frac == 0.0 && r.interconnect_mb == 0.0);
            } else {
                assert!(r.remote_frac > 0.0, "{}@{} crosses the interconnect", r.name, r.gpus);
                // Remote penalties mean weak scaling stays below ideal.
                assert!(r.eff_mosaic < 1.05, "{}@{}: {}", r.name, r.gpus, r.eff_mosaic);
            }
        }
        let text = fig.to_string();
        assert!(text.contains("MM+GUPS"));
        assert!(text.contains("first-touch"));
    }

    #[test]
    fn placement_probe_exercises_every_policy() {
        let fig = run(Scope::Smoke);
        let by_name = |n: &str| fig.placement.iter().find(|p| p.policy == n).unwrap();
        assert_eq!(by_name("first-touch").migrations, 0);
        assert_eq!(by_name("first-touch").replications, 0);
        assert!(by_name("replicate-ro").replications > 0);
        assert!(by_name("migrate").migrations > 0);
        // Localizing policies cut remote traffic relative to first-touch.
        assert!(by_name("replicate-ro").remote_accesses < by_name("first-touch").remote_accesses);
    }
}
