//! Figure 6: the cost of one coalescing operation — the state-of-the-art
//! baseline vs Mosaic's In-Place Coalescer.
//!
//! The baseline must (1) migrate the chosen base pages into a free large
//! frame over the DRAM channel, (2) update the PTEs, and (3) issue a full
//! TLB shootdown during which the SMs stall. Mosaic's coalesce is a
//! page-table-bit update: no data movement, no flush, no SM stalls.
//!
//! This driver reconstructs both timelines on the DRAM model and reports
//! DRAM-channel busy time and SM stall time for coalescing one 2 MB
//! region (512 base pages).

use crate::common::Scope;
use mosaic_mem::{Dram, DramConfig};
use mosaic_sim_core::Cycle;
use mosaic_vm::BASE_PAGES_PER_LARGE_PAGE;
use std::fmt;

/// Cycles a full-TLB shootdown stalls the GPU in the baseline timeline
/// (matches the simulator's baseline-coalescing model).
pub const TLB_FLUSH_STALL: u64 = 1_000;

/// Cost of one coalescing operation under one design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceCost {
    /// Cycles the DRAM channel is kept busy.
    pub dram_busy_cycles: u64,
    /// Cycles the SMs are stalled.
    pub sm_stall_cycles: u64,
    /// Page-table entries written.
    pub pte_updates: u64,
}

/// The Figure 6 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig06 {
    /// The migrating baseline (Figure 6a).
    pub baseline: CoalesceCost,
    /// Mosaic's In-Place Coalescer (Figure 6b).
    pub mosaic: CoalesceCost,
}

/// Runs the microbenchmark.
pub fn run(_scope: Scope) -> Fig06 {
    // Baseline: migrate 512 base pages into a large frame over one DRAM
    // channel (narrow 64-bit copies), then write 512 L4 + 1 L3 PTEs, then
    // flush the TLBs while the SMs stall.
    let mut dram = Dram::new(DramConfig::paper());
    let mut t = Cycle::ZERO;
    for _ in 0..BASE_PAGES_PER_LARGE_PAGE {
        t = dram.narrow_page_copy(t, 0);
    }
    let migration = t.as_u64();
    // PTE updates: one line-sized access per 16 PTEs (128 B lines).
    let pte_updates = BASE_PAGES_PER_LARGE_PAGE + 1;
    let mut pte_t = t;
    for i in 0..pte_updates.div_ceil(16) {
        pte_t = dram.access(pte_t, 0x40_0000 + i * 128);
    }
    let baseline = CoalesceCost {
        dram_busy_cycles: pte_t.as_u64(),
        sm_stall_cycles: migration + TLB_FLUSH_STALL,
        pte_updates,
    };

    // Mosaic: the same PTE updates, nothing else; no flush, no stalls.
    let mut dram2 = Dram::new(DramConfig::paper());
    let mut t2 = Cycle::ZERO;
    for i in 0..pte_updates.div_ceil(16) {
        t2 = dram2.access(t2, 0x40_0000 + i * 128);
    }
    let mosaic = CoalesceCost { dram_busy_cycles: t2.as_u64(), sm_stall_cycles: 0, pte_updates };
    Fig06 { baseline, mosaic }
}

impl fmt::Display for Fig06 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6: cost of coalescing one 2MB region (512 base pages)")?;
        writeln!(
            f,
            "{:<12} {:>14} {:>14} {:>12}",
            "design", "DRAM busy cy", "SM stall cy", "PTE writes"
        )?;
        writeln!(
            f,
            "{:<12} {:>14} {:>14} {:>12}",
            "baseline",
            self.baseline.dram_busy_cycles,
            self.baseline.sm_stall_cycles,
            self.baseline.pte_updates
        )?;
        writeln!(
            f,
            "{:<12} {:>14} {:>14} {:>12}",
            "Mosaic",
            self.mosaic.dram_busy_cycles,
            self.mosaic.sm_stall_cycles,
            self.mosaic.pte_updates
        )?;
        writeln!(
            f,
            "paper: Mosaic coalesces with PTE updates only — no data movement, no TLB flush,\n\
             no SM stalls. measured DRAM-busy ratio: {:.0}x",
            self.baseline.dram_busy_cycles as f64 / self.mosaic.dram_busy_cycles.max(1) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_coalesce_is_orders_of_magnitude_cheaper() {
        let fig = run(Scope::Smoke);
        assert!(fig.baseline.dram_busy_cycles > 50 * fig.mosaic.dram_busy_cycles);
        assert_eq!(fig.mosaic.sm_stall_cycles, 0, "no flush, no stalls");
        assert!(fig.baseline.sm_stall_cycles > 0);
        assert_eq!(fig.baseline.pte_updates, fig.mosaic.pte_updates);
    }
}
