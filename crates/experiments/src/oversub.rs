//! Oversubscription: Mosaic vs GPU-MMU when the working set exceeds GPU
//! memory and the demand-paging engine must evict, write back, and
//! prefetch (Section 2.2's far-fault machinery under real pressure).
//!
//! Each workload runs fully resident once per manager (the normalization
//! baseline), then at each oversubscription factor: GPU memory is shrunk
//! to `reservation ÷ factor`, so every factor above 1 forces LRU frame
//! eviction with dirty-page write-back over the I/O bus. Reported values
//! are oversubscribed performance normalized to the fully-resident run
//! of the same manager (≤ 1; lower is worse), plus the Mosaic-to-GPU-MMU
//! ratio at each point.

use crate::common::Scope;
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::fmt;

/// The fixed pair probed at every scope: MM streams sequentially
/// (prefetch-friendly), GUPS scatters randomly (eviction-hostile).
const WORKLOADS: [&str; 2] = ["MM", "GUPS"];

/// One workload at one oversubscription factor.
#[derive(Debug, Clone, PartialEq)]
pub struct OversubRow {
    /// Workload name.
    pub name: String,
    /// Oversubscription factor (working set ÷ GPU memory).
    pub factor: f64,
    /// GPU-MMU performance normalized to its fully-resident run.
    pub norm_gpu_mmu: f64,
    /// Mosaic performance normalized to its fully-resident run.
    pub norm_mosaic: f64,
    /// Pages evicted across the two oversubscribed runs of this row.
    pub evictions: u64,
    /// Bytes written back across the two oversubscribed runs.
    pub writeback_bytes: u64,
}

impl OversubRow {
    /// Mosaic's normalized performance relative to GPU-MMU's at this
    /// point (> 1 when Mosaic degrades more gracefully).
    pub fn mosaic_vs_gpu_mmu(&self) -> f64 {
        if self.norm_gpu_mmu == 0.0 {
            0.0
        } else {
            self.norm_mosaic / self.norm_gpu_mmu
        }
    }
}

/// The oversubscription series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigOversub {
    /// One row per (workload, factor), workload-major.
    pub rows: Vec<OversubRow>,
}

impl FigOversub {
    /// Total pages evicted across every oversubscribed run.
    pub fn total_evictions(&self) -> u64 {
        self.rows.iter().map(|r| r.evictions).sum()
    }

    /// Total bytes written back across every oversubscribed run.
    pub fn total_writeback_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.writeback_bytes).sum()
    }
}

/// The factors this scope sweeps.
fn factors(scope: Scope) -> &'static [f64] {
    match scope {
        Scope::Smoke => &[1.5, 2.0],
        _ => &[1.5, 2.0, 3.0, 4.0],
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> FigOversub {
    let factors = factors(scope);
    // Per workload: one fully-resident baseline per manager, then both
    // managers at each factor — `2 + 2 * factors` jobs, workload-major.
    let jobs: Vec<_> = WORKLOADS
        .iter()
        .flat_map(|name| {
            let w = Workload::from_names(&[name]);
            let mut jobs = vec![
                (w.clone(), scope.config(ManagerKind::GpuMmu4K)),
                (w.clone(), scope.config(ManagerKind::mosaic())),
            ];
            for &f in factors {
                jobs.push((w.clone(), scope.config(ManagerKind::GpuMmu4K).oversubscribed(f)));
                jobs.push((w.clone(), scope.config(ManagerKind::mosaic()).oversubscribed(f)));
            }
            jobs
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let per_workload = 2 + 2 * factors.len();
    let mut rows = Vec::with_capacity(WORKLOADS.len() * factors.len());
    for (name, chunk) in WORKLOADS.iter().zip(results.chunks_exact(per_workload)) {
        let (base_gpu_mmu, base_mosaic) = (&chunk[0], &chunk[1]);
        for (fi, &factor) in factors.iter().enumerate() {
            let (over_gpu_mmu, over_mosaic) = (&chunk[2 + 2 * fi], &chunk[3 + 2 * fi]);
            rows.push(OversubRow {
                name: name.to_string(),
                factor,
                norm_gpu_mmu: base_gpu_mmu.total_cycles as f64 / over_gpu_mmu.total_cycles as f64,
                norm_mosaic: base_mosaic.total_cycles as f64 / over_mosaic.total_cycles as f64,
                evictions: over_gpu_mmu.stats.manager.evictions
                    + over_mosaic.stats.manager.evictions,
                writeback_bytes: over_gpu_mmu.stats.manager.writeback_bytes
                    + over_mosaic.stats.manager.writeback_bytes,
            });
        }
    }
    FigOversub { rows }
}

impl fmt::Display for FigOversub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Oversubscription: performance normalized to fully-resident, per manager")?;
        writeln!(
            f,
            "{:<10} {:>6} {:>9} {:>9} {:>9} {:>10} {:>9}",
            "workload", "ws/mem", "GPU-MMU", "Mosaic", "ratio", "evictions", "wb-MB"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>5.1}x {:>9.3} {:>9.3} {:>9.3} {:>10} {:>9.1}",
                r.name,
                r.factor,
                r.norm_gpu_mmu,
                r.norm_mosaic,
                r.mosaic_vs_gpu_mmu(),
                r.evictions,
                r.writeback_bytes as f64 / (1024.0 * 1024.0)
            )?;
        }
        writeln!(
            f,
            "eviction engine: {} pages evicted, {:.1} MB written back across the sweep.",
            self.total_evictions(),
            self.total_writeback_bytes() as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversubscribed_sweep_evicts_and_completes() {
        let fig = run(Scope::Smoke);
        assert_eq!(fig.rows.len(), WORKLOADS.len() * factors(Scope::Smoke).len());
        assert!(fig.total_evictions() > 0, "pressure must trigger eviction somewhere");
        assert!(fig.total_writeback_bytes() > 0, "dirty pages must write back somewhere");
        for r in &fig.rows {
            assert!(r.norm_gpu_mmu > 0.0 && r.norm_mosaic > 0.0, "{} completes", r.name);
            // Paging under pressure can only cost (within rounding noise
            // from the large-frame memory granularity).
            assert!(r.norm_gpu_mmu < 1.1, "{}@{}x: {}", r.name, r.factor, r.norm_gpu_mmu);
            assert!(r.norm_mosaic < 1.1, "{}@{}x: {}", r.name, r.factor, r.norm_mosaic);
        }
        let text = fig.to_string();
        assert!(text.contains("GUPS"));
        assert!(text.contains("evicted"));
    }

    #[test]
    fn deeper_oversubscription_never_helps_gups() {
        let fig = run(Scope::Smoke);
        let gups: Vec<&OversubRow> = fig.rows.iter().filter(|r| r.name == "GUPS").collect();
        assert!(gups.len() >= 2);
        // GUPS's random scatter has no reuse to spare: more pressure means
        // at least as much paging traffic.
        let first = &gups[0];
        let last = gups.last().unwrap();
        assert!(last.evictions >= first.evictions, "pressure scales eviction volume");
    }
}
