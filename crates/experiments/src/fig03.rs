//! Figure 3: performance of GPU-MMU with 4 KB base pages vs 2 MB large
//! pages, with **no demand-paging overhead**, normalized to an ideal TLB.
//!
//! The paper's observations: the 4 KB configuration loses 48.1% on
//! average against the ideal TLB, while the 2 MB configuration comes
//! within ~2% of it — the motivation for wanting large pages for address
//! translation.

use crate::common::{fmt_row, mean, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::fmt;

/// One application's normalized performance under the two page sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRow {
    /// Application name.
    pub name: String,
    /// 4 KB performance normalized to ideal TLB (≤ ~1).
    pub norm_4k: f64,
    /// 2 MB performance normalized to ideal TLB (≈ 1).
    pub norm_2m: f64,
}

/// The Figure 3 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03 {
    /// Per-application rows.
    pub rows: Vec<AppRow>,
    /// Average normalized performance with 4 KB pages.
    pub avg_4k: f64,
    /// Average normalized performance with 2 MB pages.
    pub avg_2m: f64,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig03 {
    let apps = scope.apps();
    // Three jobs per application: ideal-TLB, 4 KB, and 2 MB runs, all
    // with "no demand paging overhead" (everything resident up front).
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|profile| {
            let w = Workload { name: profile.name.to_string(), apps: vec![profile] };
            [
                (w.clone(), scope.config(ManagerKind::GpuMmu4K).preloaded().ideal_tlb()),
                (w.clone(), scope.config(ManagerKind::GpuMmu4K).preloaded()),
                (w, scope.config(ManagerKind::GpuMmu2M).preloaded()),
            ]
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let rows: Vec<AppRow> = apps
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(profile, runs)| AppRow {
            name: profile.name.to_string(),
            norm_4k: runs[0].total_cycles as f64 / runs[1].total_cycles as f64,
            norm_2m: runs[0].total_cycles as f64 / runs[2].total_cycles as f64,
        })
        .collect();
    let avg_4k = mean(&rows.iter().map(|r| r.norm_4k).collect::<Vec<_>>());
    let avg_2m = mean(&rows.iter().map(|r| r.norm_2m).collect::<Vec<_>>());
    Fig03 { rows, avg_4k, avg_2m }
}

impl fmt::Display for Fig03 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: page size vs ideal TLB (no demand paging overhead)")?;
        writeln!(f, "{:<24} {:>8} {:>8}", "application", "4KB", "2MB")?;
        for r in &self.rows {
            writeln!(f, "{}", fmt_row(&r.name, &[r.norm_4k, r.norm_2m]))?;
        }
        writeln!(f, "{}", fmt_row("AVERAGE", &[self.avg_4k, self.avg_2m]))?;
        writeln!(
            f,
            "paper: 4KB loses 48.1% on average vs ideal; 2MB comes within ~2%.\n\
             measured: 4KB loses {:.1}%; 2MB loses {:.1}%.",
            (1.0 - self.avg_4k) * 100.0,
            (1.0 - self.avg_2m) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run(Scope::Smoke);
        assert!(fig.rows.len() >= 5);
        // 2MB pages must essentially close the translation gap...
        assert!(fig.avg_2m > 0.9, "2MB avg {:.3}", fig.avg_2m);
        // ...while 4KB pages leave a substantial gap.
        assert!(fig.avg_4k < 0.8, "4KB avg {:.3}", fig.avg_4k);
        assert!(fig.avg_2m > fig.avg_4k);
        // Display renders every application plus the average row.
        let text = fig.to_string();
        assert!(text.contains("AVERAGE"));
    }
}
