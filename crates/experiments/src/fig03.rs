//! Figure 3: performance of GPU-MMU with 4 KB base pages vs 2 MB large
//! pages, with **no demand-paging overhead**, normalized to an ideal TLB.
//!
//! The paper's observations: the 4 KB configuration loses 48.1% on
//! average against the ideal TLB, while the 2 MB configuration comes
//! within ~2% of it — the motivation for wanting large pages for address
//! translation.

use crate::common::{fmt_row, mean, Scope};
use mosaic_gpusim::{run_workload, ManagerKind};
use mosaic_workloads::Workload;
use std::fmt;

/// One application's normalized performance under the two page sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRow {
    /// Application name.
    pub name: String,
    /// 4 KB performance normalized to ideal TLB (≤ ~1).
    pub norm_4k: f64,
    /// 2 MB performance normalized to ideal TLB (≈ 1).
    pub norm_2m: f64,
}

/// The Figure 3 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03 {
    /// Per-application rows.
    pub rows: Vec<AppRow>,
    /// Average normalized performance with 4 KB pages.
    pub avg_4k: f64,
    /// Average normalized performance with 2 MB pages.
    pub avg_2m: f64,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig03 {
    let mut rows = Vec::new();
    for profile in scope.apps() {
        let w = Workload { name: profile.name.to_string(), apps: vec![profile] };
        // "No demand paging overhead": everything resident up front.
        let ideal = run_workload(&w, scope.config(ManagerKind::GpuMmu4K).preloaded().ideal_tlb());
        let base = run_workload(&w, scope.config(ManagerKind::GpuMmu4K).preloaded());
        let large = run_workload(&w, scope.config(ManagerKind::GpuMmu2M).preloaded());
        rows.push(AppRow {
            name: profile.name.to_string(),
            norm_4k: ideal.total_cycles as f64 / base.total_cycles as f64,
            norm_2m: ideal.total_cycles as f64 / large.total_cycles as f64,
        });
    }
    let avg_4k = mean(&rows.iter().map(|r| r.norm_4k).collect::<Vec<_>>());
    let avg_2m = mean(&rows.iter().map(|r| r.norm_2m).collect::<Vec<_>>());
    Fig03 { rows, avg_4k, avg_2m }
}

impl fmt::Display for Fig03 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: page size vs ideal TLB (no demand paging overhead)")?;
        writeln!(f, "{:<24} {:>8} {:>8}", "application", "4KB", "2MB")?;
        for r in &self.rows {
            writeln!(f, "{}", fmt_row(&r.name, &[r.norm_4k, r.norm_2m]))?;
        }
        writeln!(f, "{}", fmt_row("AVERAGE", &[self.avg_4k, self.avg_2m]))?;
        writeln!(
            f,
            "paper: 4KB loses 48.1% on average vs ideal; 2MB comes within ~2%.\n\
             measured: 4KB loses {:.1}%; 2MB loses {:.1}%.",
            (1.0 - self.avg_4k) * 100.0,
            (1.0 - self.avg_2m) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run(Scope::Smoke);
        assert!(fig.rows.len() >= 5);
        // 2MB pages must essentially close the translation gap...
        assert!(fig.avg_2m > 0.9, "2MB avg {:.3}", fig.avg_2m);
        // ...while 4KB pages leave a substantial gap.
        assert!(fig.avg_4k < 0.8, "4KB avg {:.3}", fig.avg_4k);
        assert!(fig.avg_2m > fig.avg_4k);
        // Display renders every application plus the average row.
        let text = fig.to_string();
        assert!(text.contains("AVERAGE"));
    }
}
