//! Ablations of the design choices DESIGN.md calls out.
//!
//! * [`pwc_vs_l2tlb`] — Section 3.1: the paper replaces Power et al.'s
//!   page-walk cache with a 512-entry shared L2 TLB, for an average gain
//!   of ~14%.
//! * [`walker_threads`] — how much walk concurrency the baseline needs
//!   (Table 1 uses 64 threads).
//! * [`cac_threshold`] — CAC's splinter threshold under fragmentation.
//! * [`migrating_coalescer`] — Mosaic vs a CPU-style utilization-based
//!   migrating coalescer (Ingens/Navarro-like, Section 7.1): what
//!   coalescing costs when it has to move data and flush TLBs.

use crate::common::{fmt_row, mean, AloneCache, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_core::cac::CacConfig;
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::fmt;

/// Result of the page-walk-cache ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PwcAblation {
    /// Per-application speedup of the shared-L2-TLB design over the
    /// page-walk-cache design.
    pub speedups: Vec<(String, f64)>,
    /// Average speedup (the paper reports ~1.14).
    pub avg_speedup: f64,
}

/// Runs the Section 3.1 ablation.
pub fn pwc_vs_l2tlb(scope: Scope) -> PwcAblation {
    // The L2 TLB's advantage is hit filtering, so it shows on workloads
    // with page-level locality; gather/chase applications miss either
    // structure and only see the extra probe (they drag the paper-style
    // average below the locality-bearing majority's behaviour).
    let profiles: Vec<_> = scope.apps().into_iter().filter(|p| !p.tlb_sensitive()).collect();
    let jobs: Vec<_> = profiles
        .iter()
        .flat_map(|profile| {
            let w = Workload { name: profile.name.to_string(), apps: vec![profile] };
            // A: Power et al.'s original — page-walk cache, no shared L2 TLB.
            let mut pwc_cfg = scope.config(ManagerKind::GpuMmu4K).preloaded();
            pwc_cfg.system.walk_cache_entries = 512;
            pwc_cfg.system.l2_tlb.base_entries = 0;
            pwc_cfg.system.l2_tlb.large_entries = 0;
            // B: the paper's baseline — shared L2 TLB, no page-walk cache.
            let l2_cfg = scope.config(ManagerKind::GpuMmu4K).preloaded();
            [(w.clone(), pwc_cfg), (w, l2_cfg)]
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let speedups: Vec<(String, f64)> = profiles
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(profile, pair)| {
            (profile.name.to_string(), pair[0].total_cycles as f64 / pair[1].total_cycles as f64)
        })
        .collect();
    let avg_speedup = mean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    PwcAblation { speedups, avg_speedup }
}

impl fmt::Display for PwcAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation (Section 3.1): shared L2 TLB vs page-walk cache")?;
        for (name, s) in &self.speedups {
            writeln!(f, "  {name:<8} {s:>6.3}x")?;
        }
        writeln!(
            f,
            "average speedup of the L2-TLB design: {:.1}% (paper: ~14%; see EXPERIMENTS.md for\n\
             why this reproduction's synthetic streams under-reward the shared L2 TLB)",
            (self.avg_speedup - 1.0) * 100.0
        )
    }
}

/// Result of the walker-concurrency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerSweep {
    /// Walker thread counts.
    pub threads: Vec<usize>,
    /// GPU-MMU performance normalized to the 64-thread configuration.
    pub normalized: Vec<f64>,
}

/// Sweeps the shared walker's concurrency on a TLB-hostile workload.
pub fn walker_threads(scope: Scope) -> WalkerSweep {
    let threads: &[usize] = if scope == Scope::Smoke { &[8, 64] } else { &[8, 16, 32, 64, 128] };
    let w = Workload::from_names(&["GUPS"]);
    // First job: the 64-thread normalization baseline; then one job per
    // swept thread count.
    let jobs: Vec<_> = std::iter::once(scope.config(ManagerKind::GpuMmu4K).preloaded())
        .chain(threads.iter().map(|&t| {
            let mut cfg = scope.config(ManagerKind::GpuMmu4K).preloaded();
            cfg.system.walker_threads = t;
            cfg
        }))
        .map(|cfg| (w.clone(), cfg))
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let base = results[0].total_cycles as f64;
    let normalized = results[1..].iter().map(|r| base / r.total_cycles as f64).collect();
    WalkerSweep { threads: threads.to_vec(), normalized }
}

impl fmt::Display for WalkerSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: page-table walker concurrency (GUPS, normalized to 64 threads)")?;
        writeln!(f, "  threads: {:?}", self.threads)?;
        writeln!(f, "  {}", fmt_row("GPU-MMU", &self.normalized))
    }
}

/// Result of the CAC splinter-threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSweep {
    /// Occupancy thresholds.
    pub thresholds: Vec<f64>,
    /// Performance normalized to the default (0.5) threshold.
    pub normalized: Vec<f64>,
}

/// Sweeps CAC's splinter threshold under heavy fragmentation.
pub fn cac_threshold(scope: Scope) -> ThresholdSweep {
    let thresholds: &[f64] = if scope == Scope::Smoke { &[0.25, 0.5] } else { &[0.25, 0.5, 0.75] };
    let w = Workload::from_names(&["HS", "CONS"]);
    let ws_total: u64 = w.apps.iter().map(|p| scope.scale().ws_bytes(p)).sum();
    let cfg_with = |threshold: f64| {
        let mut cfg = scope.config(ManagerKind::Mosaic(CacConfig {
            occupancy_threshold: threshold,
            ..CacConfig::default()
        }));
        cfg.system.memory_bytes = (ws_total * 10).max(64 * 1024 * 1024);
        cfg.fragmentation = Some((1.0, 0.5));
        cfg
    };
    // First job: the 0.5-threshold normalization baseline; then the sweep.
    let jobs: Vec<_> = std::iter::once(cfg_with(0.5))
        .chain(thresholds.iter().map(|&t| cfg_with(t)))
        .map(|cfg| (w.clone(), cfg))
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let base = results[0].total_cycles as f64;
    let normalized = results[1..].iter().map(|r| base / r.total_cycles as f64).collect();
    ThresholdSweep { thresholds: thresholds.to_vec(), normalized }
}

impl fmt::Display for ThresholdSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: CAC splinter threshold (fragmented memory, normalized to 0.5)")?;
        writeln!(f, "  thresholds: {:?}", self.thresholds)?;
        writeln!(f, "  {}", fmt_row("Mosaic", &self.normalized))
    }
}

/// Result of the multi-kernel sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiKernel {
    /// Kernel phases per application.
    pub phases: Vec<u32>,
    /// Mosaic weighted speedup per phase count.
    pub mosaic: Vec<f64>,
    /// GPU-MMU weighted speedup per phase count.
    pub gpu_mmu: Vec<f64>,
    /// CAC splinters observed in the Mosaic runs.
    pub splinters: Vec<u64>,
}

/// Multi-kernel applications: each kernel deallocates its scratch on
/// completion and the next re-allocates it — the between-kernels
/// deallocation stream that drives CAC (Section 4.4). Mosaic's advantage
/// must survive the churn.
pub fn multi_kernel(scope: Scope) -> MultiKernel {
    let phases: &[u32] = if scope == Scope::Smoke { &[1, 2] } else { &[1, 2, 4] };
    let w = Workload::from_names(&["HS", "CONS"]);
    let exec = Executor::from_env();
    let mut cache = AloneCache::new();
    // Two jobs per phase count: Mosaic then GPU-MMU.
    let jobs: Vec<_> = phases
        .iter()
        .flat_map(|&p| {
            let mut mos_cfg = scope.config(ManagerKind::mosaic());
            mos_cfg.scale.phases = p;
            let mut mmu_cfg = scope.config(ManagerKind::GpuMmu4K);
            mmu_cfg.scale.phases = p;
            [(w.clone(), mos_cfg), (w.clone(), mmu_cfg)]
        })
        .collect();
    let baseline_items: Vec<_> = jobs.iter().map(|(w, cfg)| (w, *cfg)).collect();
    cache.prefetch(&exec, &baseline_items);
    let results = run_workloads(&exec, jobs.clone());

    let mut mosaic = Vec::new();
    let mut gpu_mmu = Vec::new();
    let mut splinters = Vec::new();
    for (pair_jobs, pair) in jobs.chunks_exact(2).zip(results.chunks_exact(2)) {
        splinters.push(pair[0].stats.manager.splinters);
        mosaic.push(cache.weighted_speedup(&w, &pair[0], pair_jobs[0].1));
        gpu_mmu.push(cache.weighted_speedup(&w, &pair[1], pair_jobs[1].1));
    }
    MultiKernel { phases: phases.to_vec(), mosaic, gpu_mmu, splinters }
}

impl fmt::Display for MultiKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: multi-kernel churn (HS-CONS, weighted speedup)")?;
        writeln!(f, "  kernels/app: {:?}", self.phases)?;
        writeln!(f, "  {}", fmt_row("GPU-MMU", &self.gpu_mmu))?;
        writeln!(f, "  {}", fmt_row("Mosaic", &self.mosaic))?;
        writeln!(f, "  CAC splinters per run: {:?}", self.splinters)?;
        writeln!(f, "Mosaic's gains survive between-kernel dealloc/realloc churn.")
    }
}

/// Result of the coalescing-design comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalescerComparison {
    /// Per-workload weighted speedups: `(name, gpu_mmu, migrating, mosaic)`.
    pub rows: Vec<(String, f64, f64, f64)>,
    /// Averages in the same order.
    pub avg: (f64, f64, f64),
    /// Base pages the migrating design moved (Mosaic moves none to
    /// coalesce).
    pub migrating_migrations: u64,
    /// Region shootdowns the migrating design issued.
    pub migrating_coalesces: u64,
    /// Average memory bloat of the migrating design (zero-filled
    /// promotion tails).
    pub migrating_bloat: f64,
    /// Average memory bloat of Mosaic on the same workloads.
    pub mosaic_bloat: f64,
}

/// Compares no coalescing (GPU-MMU), migrating promotion (the CPU-style
/// design of Section 7.1), and Mosaic's in-place coalescing, on
/// two-application workloads.
pub fn migrating_coalescer(scope: Scope) -> CoalescerComparison {
    let exec = Executor::from_env();
    let mut cache = AloneCache::new();
    let workloads = scope.homogeneous(2);
    let configs = |scope: Scope| {
        [
            scope.config(ManagerKind::GpuMmu4K),
            scope.config(ManagerKind::migrating()),
            scope.config(ManagerKind::mosaic()),
        ]
    };
    // Three jobs per workload, in report-column order.
    let jobs: Vec<_> =
        workloads.iter().flat_map(|w| configs(scope).map(|cfg| (w.clone(), cfg))).collect();
    let baseline_items: Vec<_> = jobs.iter().map(|(w, cfg)| (w, *cfg)).collect();
    cache.prefetch(&exec, &baseline_items);
    let results = run_workloads(&exec, jobs);

    let mut rows = Vec::new();
    let mut migrations = 0;
    let mut shootdowns = 0;
    let mut mig_bloat = Vec::new();
    let mut mos_bloat = Vec::new();
    for (w, shared_runs) in workloads.iter().zip(results.chunks_exact(3)) {
        let mut ws = [0.0f64; 3];
        for (i, (cfg, shared)) in configs(scope).iter().zip(shared_runs).enumerate() {
            ws[i] = cache.weighted_speedup(w, shared, *cfg);
            if i == 1 {
                migrations += shared.stats.manager.migrations;
                shootdowns += shared.stats.manager.coalesces;
                mig_bloat.push(shared.stats.memory_bloat);
            }
            if i == 2 {
                mos_bloat.push(shared.stats.memory_bloat);
            }
        }
        rows.push((w.name.clone(), ws[0], ws[1], ws[2]));
    }
    let avg = (
        mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>()),
    );
    CoalescerComparison {
        rows,
        avg,
        migrating_migrations: migrations,
        migrating_coalesces: shootdowns,
        migrating_bloat: mean(&mig_bloat),
        mosaic_bloat: mean(&mos_bloat),
    }
}

impl fmt::Display for CoalescerComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation (Section 7.1): coalescing designs (weighted speedup, 2 apps)")?;
        writeln!(f, "{:<24} {:>8} {:>10} {:>8}", "workload", "GPU-MMU", "Migrating", "Mosaic")?;
        for (name, g, mig, mos) in &self.rows {
            writeln!(f, "{name:<24} {g:>8.2} {mig:>10.2} {mos:>8.2}")?;
        }
        writeln!(
            f,
            "{:<24} {:>8.2} {:>10.2} {:>8.2}",
            "AVERAGE", self.avg.0, self.avg.1, self.avg.2
        )?;
        writeln!(
            f,
            "migrating design paid {} page migrations + {} region shootdowns and bloats \
             memory {:.1}% (Mosaic: zero migrations, {:.1}% bloat).",
            self.migrating_migrations,
            self.migrating_coalesces,
            self.migrating_bloat * 100.0,
            self.mosaic_bloat * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_survives_multi_kernel_churn() {
        let m = multi_kernel(Scope::Smoke);
        // Mosaic beats GPU-MMU at every kernel count, including with the
        // between-kernel deallocation churn active.
        for (i, &p) in m.phases.iter().enumerate() {
            assert!(
                m.mosaic[i] > m.gpu_mmu[i],
                "phases {p}: mosaic {:.2} vs gpu-mmu {:.2}",
                m.mosaic[i],
                m.gpu_mmu[i]
            );
        }
    }

    #[test]
    fn in_place_coalescing_avoids_the_migrating_design_costs() {
        let c = migrating_coalescer(Scope::Smoke);
        assert!(!c.rows.is_empty());
        // Both coalescing designs beat the no-coalescing baseline on
        // average (large pages are worth having)...
        assert!(c.avg.1 > c.avg.0, "migrating {:.2} vs gpu-mmu {:.2}", c.avg.1, c.avg.0);
        assert!(c.avg.2 > c.avg.0, "mosaic {:.2} vs gpu-mmu {:.2}", c.avg.2, c.avg.0);
        // ...but only the migrating design pays for them with data
        // movement, shootdowns, and zero-fill memory bloat.
        assert!(c.migrating_migrations > 0);
        assert!(c.migrating_coalesces > 0);
        assert!(
            c.migrating_bloat > c.mosaic_bloat + 0.05,
            "promotion zero-fill must bloat: migrating {:.3} vs mosaic {:.3}",
            c.migrating_bloat,
            c.mosaic_bloat
        );
    }

    #[test]
    fn pwc_ablation_reports_finite_comparisons() {
        // The paper measures +14% for the shared L2 TLB over the
        // page-walk cache. In this reproduction the synthetic address
        // streams lack the long-timescale page re-reference that feeds
        // the L2 TLB (see EXPERIMENTS.md), so the sign of the comparison
        // is workload-dependent here; the ablation's job is to expose
        // both configurations faithfully.
        let a = pwc_vs_l2tlb(Scope::Smoke);
        assert!(!a.speedups.is_empty());
        assert!(a.avg_speedup.is_finite() && a.avg_speedup > 0.1);
        for (name, s) in &a.speedups {
            assert!(s.is_finite() && *s > 0.0, "{name}: {s}");
        }
    }

    #[test]
    fn more_walker_threads_never_hurt() {
        let s = walker_threads(Scope::Smoke);
        // 64 threads at least match 8 threads.
        assert!(
            s.normalized.last().unwrap() >= s.normalized.first().unwrap(),
            "{:?}",
            s.normalized
        );
    }

    #[test]
    fn threshold_sweep_is_normalized() {
        let s = cac_threshold(Scope::Smoke);
        let at_half = s.thresholds.iter().position(|&t| t == 0.5).unwrap();
        assert!((s.normalized[at_half] - 1.0).abs() < 1e-9);
    }
}
