//! Figure 14: sensitivity of GPU-MMU and Mosaic to the number of
//! **base-page** TLB entries, at L1 (per SM) and L2 (shared).
//!
//! The paper: GPU-MMU's performance moves with base-page capacity at both
//! levels; Mosaic barely notices L1 base capacity (its translations live
//! in large-page entries) but still gains from L2 base capacity, which
//! spares page walks for the pages that stay uncoalesced.

use crate::common::{fmt_row, mean, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::{ManagerKind, RunConfig};
use std::fmt;

/// Which TLB parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Per-SM L1 base-page entries.
    L1Base,
    /// Shared L2 base-page entries.
    L2Base,
    /// Per-SM L1 large-page entries.
    L1Large,
    /// Shared L2 large-page entries.
    L2Large,
}

impl SweepParam {
    fn apply(self, cfg: &mut RunConfig, value: usize) {
        match self {
            SweepParam::L1Base => cfg.system.l1_tlb.base_entries = value,
            SweepParam::L2Base => {
                cfg.system.l2_tlb.base_entries = value;
                // Keep the geometry legal: associativity at most the entry
                // count and dividing it evenly.
                if cfg.system.l2_tlb.base_assoc > value
                    || !value.is_multiple_of(cfg.system.l2_tlb.base_assoc.max(1))
                {
                    cfg.system.l2_tlb.base_assoc = 0;
                }
            }
            SweepParam::L1Large => cfg.system.l1_tlb.large_entries = value,
            SweepParam::L2Large => cfg.system.l2_tlb.large_entries = value,
        }
    }
}

/// One sweep: performance of both managers across the parameter range,
/// normalized to GPU-MMU at the paper's default value.
#[derive(Debug, Clone, PartialEq)]
pub struct TlbSweep {
    /// The varied parameter.
    pub param: SweepParam,
    /// Parameter values.
    pub values: Vec<usize>,
    /// GPU-MMU normalized performance per value.
    pub gpu_mmu: Vec<f64>,
    /// Mosaic normalized performance per value.
    pub mosaic: Vec<f64>,
}

impl TlbSweep {
    /// Relative swing (max/min − 1) of one series — the sensitivity.
    pub fn swing(series: &[f64]) -> f64 {
        let mn = series.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = series.iter().copied().fold(0.0, f64::max);
        if mn > 0.0 {
            mx / mn - 1.0
        } else {
            0.0
        }
    }
}

/// The Figure 14 (or 15) sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct TlbSensitivity {
    /// Figure label.
    pub title: String,
    /// The two sweeps (L1 and L2).
    pub sweeps: Vec<TlbSweep>,
}

/// Workloads used for TLB sweeps: a few heterogeneous 3-app mixes.
fn sweep_workloads(scope: Scope) -> Vec<mosaic_workloads::Workload> {
    let take = if scope == Scope::Smoke { 2 } else { 4 };
    scope.heterogeneous(3).into_iter().take(take).collect()
}

pub(crate) fn sweep_tlb(
    scope: Scope,
    title: &str,
    sweeps: &[(SweepParam, &[usize])],
) -> TlbSensitivity {
    let exec = Executor::from_env();
    let workloads = sweep_workloads(scope);
    // Normalization baseline: GPU-MMU at paper defaults.
    let base_jobs: Vec<_> =
        workloads.iter().map(|w| (w.clone(), scope.config(ManagerKind::GpuMmu4K))).collect();
    let base_cycles: Vec<f64> =
        run_workloads(&exec, base_jobs).iter().map(|r| r.total_cycles as f64).collect();
    // The full grid: two jobs (GPU-MMU and Mosaic) per (param, value,
    // workload) point.
    let grid_jobs: Vec<_> = sweeps
        .iter()
        .flat_map(|&(param, values)| values.iter().map(move |&v| (param, v)))
        .flat_map(|(param, v)| {
            workloads.iter().flat_map(move |w| {
                let mut g_cfg = scope.config(ManagerKind::GpuMmu4K);
                param.apply(&mut g_cfg, v);
                let mut m_cfg = scope.config(ManagerKind::mosaic());
                param.apply(&mut m_cfg, v);
                [(w.clone(), g_cfg), (w.clone(), m_cfg)]
            })
        })
        .collect();
    let grid = run_workloads(&exec, grid_jobs);

    let mut pairs = grid.chunks_exact(2);
    let mut out = Vec::new();
    for &(param, values) in sweeps {
        let mut gm = Vec::new();
        let mut mo = Vec::new();
        for _ in values {
            let mut per_wl_g = Vec::new();
            let mut per_wl_m = Vec::new();
            for base in &base_cycles {
                let pair = pairs.next().expect("one GPU-MMU/Mosaic pair per grid point");
                per_wl_g.push(base / pair[0].total_cycles as f64);
                per_wl_m.push(base / pair[1].total_cycles as f64);
            }
            gm.push(mean(&per_wl_g));
            mo.push(mean(&per_wl_m));
        }
        out.push(TlbSweep { param, values: values.to_vec(), gpu_mmu: gm, mosaic: mo });
    }
    TlbSensitivity { title: title.to_string(), sweeps: out }
}

/// Runs the Figure 14 sweeps (base-page entries).
pub fn run(scope: Scope) -> TlbSensitivity {
    let (l1, l2): (&[usize], &[usize]) = if scope == Scope::Smoke {
        (&[8, 128], &[64, 512])
    } else {
        (&[8, 16, 32, 64, 128, 256], &[64, 128, 256, 512, 1024, 4096])
    };
    sweep_tlb(
        scope,
        "Figure 14: base-page TLB entry sensitivity",
        &[(SweepParam::L1Base, l1), (SweepParam::L2Base, l2)],
    )
}

impl fmt::Display for TlbSensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (normalized to GPU-MMU at paper defaults)", self.title)?;
        for s in &self.sweeps {
            writeln!(f, "  {:?}: {:?}", s.param, s.values)?;
            writeln!(f, "  {}", fmt_row("GPU-MMU", &s.gpu_mmu))?;
            writeln!(f, "  {}", fmt_row("Mosaic", &s.mosaic))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_is_insensitive_to_l1_base_entries() {
        let fig = run(Scope::Smoke);
        let l1 = &fig.sweeps[0];
        // GPU-MMU cares about base entries more than Mosaic does (the
        // paper's key claim for this figure).
        assert!(
            TlbSweep::swing(&l1.mosaic) < TlbSweep::swing(&l1.gpu_mmu) + 0.05,
            "mosaic swing {:.3} vs gpu-mmu swing {:.3}",
            TlbSweep::swing(&l1.mosaic),
            TlbSweep::swing(&l1.gpu_mmu)
        );
        // Mosaic outperforms GPU-MMU everywhere in the sweep.
        for (m, g) in l1.mosaic.iter().zip(&l1.gpu_mmu) {
            assert!(m > g);
        }
    }
}
