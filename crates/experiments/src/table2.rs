//! Table 2: memory bloat of Mosaic under full fragmentation, as a
//! function of the pre-fragmented frames' occupancy.
//!
//! With every large frame pre-fragmented (index 100%), Mosaic must place
//! application data into the holes of fragmented frames; CAC's compaction
//! keeps the resulting footprint close to what a 4 KB-only manager would
//! allocate. The paper reports bloat shrinking from 10.66% at 1%
//! occupancy to 2.22% at 75%.

use crate::common::Scope;
use crate::sweep::{run_workloads, Executor};
use mosaic_core::cac::CacConfig;
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::fmt;

/// One occupancy point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloatPoint {
    /// Large-frame occupancy of the pre-fragmented data.
    pub occupancy: f64,
    /// Mosaic's memory bloat relative to the 4 KB-only footprint
    /// (`app_footprint / touched − 1`).
    pub bloat: f64,
}

/// The Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// One point per occupancy level.
    pub points: Vec<BloatPoint>,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Table2 {
    let occupancies: &[f64] =
        if scope == Scope::Smoke { &[0.10, 0.50] } else { &[0.01, 0.10, 0.25, 0.35, 0.50, 0.75] };
    let w = Workload::from_names(&["HS", "CONS"]);
    let ws_total: u64 = w.apps.iter().map(|p| scope.scale().ws_bytes(p)).sum();
    let jobs: Vec<_> = occupancies
        .iter()
        .map(|&occ| {
            let mut cfg = scope.config(ManagerKind::Mosaic(CacConfig::default()));
            // Memory must fit the applications beside the fragmented data.
            cfg.system.memory_bytes =
                ((ws_total as f64 * (2.0 + 10.0 * occ)) as u64).max(64 * 1024 * 1024);
            cfg.fragmentation = Some((1.0, occ));
            (w.clone(), cfg)
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let points = occupancies
        .iter()
        .zip(&results)
        .map(|(&occ, r)| {
            let touched = r.stats.touched_bytes.max(1);
            let bloat = r.stats.app_footprint_bytes as f64 / touched as f64 - 1.0;
            BloatPoint { occupancy: occ, bloat }
        })
        .collect();
    Table2 { points }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: Mosaic memory bloat at 100% fragmentation index")?;
        write!(f, "occupancy: ")?;
        for p in &self.points {
            write!(f, "{:>8.0}%", p.occupancy * 100.0)?;
        }
        writeln!(f)?;
        write!(f, "bloat:     ")?;
        for p in &self.points {
            write!(f, "{:>8.2}%", p.bloat * 100.0)?;
        }
        writeln!(f)?;
        writeln!(f, "paper:        10.66%    7.56%    7.20%    5.22%    3.37%    2.22%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloat_is_bounded_and_reported() {
        let t = run(Scope::Smoke);
        assert_eq!(t.points.len(), 2);
        for p in &t.points {
            assert!(p.bloat >= -0.01, "bloat cannot be negative: {:.3}", p.bloat);
            assert!(p.bloat < 2.0, "bloat should stay bounded with CAC: {:.3}", p.bloat);
        }
    }
}
