//! Figure 11: sorted per-application IPC of Mosaic and the Ideal TLB,
//! normalized to the same application's IPC under GPU-MMU, across all
//! applications of the heterogeneous workloads.
//!
//! The paper: Mosaic improves 93.6% of the 350 individual applications,
//! with per-application outcomes ranging from 0.66x to 8.6x.

use crate::common::{mean, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use std::fmt;

/// One concurrency level's sorted curves.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCurves {
    /// Applications per workload.
    pub apps: usize,
    /// Per-application Mosaic IPC normalized to GPU-MMU, ascending.
    pub mosaic: Vec<f64>,
    /// Per-application Ideal-TLB IPC normalized to GPU-MMU, ascending.
    pub ideal: Vec<f64>,
}

/// The Figure 11 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// One curve set per concurrency level (2–5 in the paper).
    pub levels: Vec<LevelCurves>,
}

impl Fig11 {
    /// Fraction of all applications that Mosaic improves (ratio > 1).
    pub fn fraction_improved(&self) -> f64 {
        let all: Vec<f64> = self.levels.iter().flat_map(|l| l.mosaic.iter().copied()).collect();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().filter(|&&x| x > 1.0).count() as f64 / all.len() as f64
    }

    /// Mean per-application Mosaic ratio.
    pub fn mean_ratio(&self) -> f64 {
        let all: Vec<f64> = self.levels.iter().flat_map(|l| l.mosaic.iter().copied()).collect();
        mean(&all)
    }
}

/// Runs the experiment.
pub fn run(scope: Scope) -> Fig11 {
    let max = if scope == Scope::Smoke { 3 } else { 5 };
    let level_workloads: Vec<(usize, Vec<mosaic_workloads::Workload>)> =
        (2..=max).map(|n| (n, scope.heterogeneous(n))).collect();
    let jobs: Vec<_> = level_workloads
        .iter()
        .flat_map(|(_, ws)| ws.iter())
        .flat_map(|w| {
            [
                (w.clone(), scope.config(ManagerKind::GpuMmu4K)),
                (w.clone(), scope.config(ManagerKind::mosaic())),
                (w.clone(), scope.config(ManagerKind::GpuMmu4K).ideal_tlb()),
            ]
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let mut runs = results.chunks_exact(3);
    let mut levels = Vec::new();
    for (n, ws) in &level_workloads {
        let mut mosaic = Vec::new();
        let mut ideal = Vec::new();
        for w in ws {
            let chunk = runs.next().expect("three runs per workload");
            let (base, mos, idl) = (&chunk[0], &chunk[1], &chunk[2]);
            for i in 0..w.app_count() {
                let b = base.apps[i].ipc.max(1e-12);
                mosaic.push(mos.apps[i].ipc / b);
                ideal.push(idl.apps[i].ipc / b);
            }
        }
        mosaic.sort_by(f64::total_cmp);
        ideal.sort_by(f64::total_cmp);
        levels.push(LevelCurves { apps: *n, mosaic, ideal });
    }
    Fig11 { levels }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 11: sorted per-application IPC, normalized to GPU-MMU")?;
        for l in &self.levels {
            let quartiles = |xs: &[f64]| -> (f64, f64, f64, f64, f64) {
                let q = |p: f64| xs[((xs.len() - 1) as f64 * p) as usize];
                (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
            };
            let (mn, q1, md, q3, mx) = quartiles(&l.mosaic);
            writeln!(
                f,
                "{} apps: Mosaic/GPU-MMU min={mn:.2} q1={q1:.2} med={md:.2} q3={q3:.2} max={mx:.2}  (n={})",
                l.apps,
                l.mosaic.len()
            )?;
        }
        writeln!(
            f,
            "Mosaic improves {:.1}% of individual applications (paper: 93.6%), mean ratio {:.2} (paper: 1.33).",
            self.fraction_improved() * 100.0,
            self.mean_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_applications_improve() {
        let fig = run(Scope::Smoke);
        assert!(!fig.levels.is_empty());
        for l in &fig.levels {
            // Curves are sorted ascending.
            assert!(l.mosaic.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(l.mosaic.len(), l.ideal.len());
        }
        assert!(fig.fraction_improved() > 0.5, "improved {:.2}", fig.fraction_improved());
        assert!(fig.mean_ratio() > 1.0);
    }
}
