//! Experiment drivers that regenerate every table and figure of the
//! Mosaic paper's evaluation.
//!
//! Each module reproduces one figure or table (see `DESIGN.md` at the
//! workspace root for the full index):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig03`] | Figure 3 — 4 KB vs 2 MB pages, no paging overhead, vs ideal TLB |
//! | [`fig04`] | Figure 4 — demand-paging impact of page size, 1–5 apps |
//! | [`bloat`] | Section 3.2 — memory bloat of 2 MB-only management |
//! | [`fig06`] | Figure 6 — coalescing cost: baseline vs Mosaic |
//! | [`fig08`] | Figure 8 — homogeneous weighted speedup |
//! | [`fig09`] | Figure 9 — heterogeneous weighted speedup |
//! | [`fig10`] | Figure 10 — selected 2-app workloads |
//! | [`fig11`] | Figure 11 — sorted per-application normalized IPC |
//! | [`fig12`] | Figure 12 — with vs without demand paging |
//! | [`fig13`] | Figure 13 — L1/L2 TLB hit rates |
//! | [`fig14`] | Figure 14 — base-page TLB entry sensitivity |
//! | [`fig15`] | Figure 15 — large-page TLB entry sensitivity |
//! | [`fig16`] | Figure 16 — CAC under fragmentation |
//! | [`table2`] | Table 2 — memory bloat vs frame occupancy |
//! | [`ablations`] | §3.1 page-walk-cache ablation + walker/threshold sweeps |
//! | [`stall`] | stall-cycle attribution by cause (`--stall-report`) |
//! | [`oversub`] | memory oversubscription — Mosaic vs GPU-MMU at 1.5–4× pressure |
//! | [`multigpu`] | multi-GPU scale-out — fleet weak scaling + placement policies |
//!
//! Every driver takes a [`Scope`] that bounds how much of the paper's
//! 235-workload evaluation it sweeps (`Smoke` for CI, `Default` for
//! benches, `Full` for the complete suites) and returns a serializable
//! result whose `Display` impl prints the same rows/series the paper
//! reports.
//!
//! Drivers run their per-workload simulation loops through the
//! [`sweep::Executor`] — a deterministic parallel sweep executor whose
//! ordered-collection contract makes multi-threaded output byte-identical
//! to serial output. Worker count comes from `--jobs`/`MOSAIC_JOBS`
//! (default: all available cores); see the [`sweep`] module docs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod bloat;
pub mod common;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod multigpu;
pub mod oversub;
pub mod stall;
pub mod sweep;
pub mod table2;

pub use common::{geomean, mean, AloneCache, Scope};
pub use sweep::Executor;
