//! Section 3.2: memory bloat of 2 MB-only memory management.
//!
//! The paper measures each application in isolation under 4 KB-only and
//! 2 MB-only management and reports how much the allocated physical
//! memory inflates with large pages: 40.2% on average, up to 367% in the
//! worst case. Bloat is internal fragmentation: a 2 MB frame is committed
//! even when the application touches only part of it.

use crate::common::{fmt_row, mean, Scope};
use crate::sweep::{run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::fmt;

/// One application's footprints.
#[derive(Debug, Clone, PartialEq)]
pub struct AppBloat {
    /// Application name.
    pub name: String,
    /// Physical bytes committed under 4 KB-only management.
    pub footprint_4k: u64,
    /// Physical bytes committed under 2 MB-only management.
    pub footprint_2m: u64,
    /// Inflation: `footprint_2m / footprint_4k − 1`.
    pub inflation: f64,
}

/// The Section 3.2 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BloatReport {
    /// Per-application rows.
    pub rows: Vec<AppBloat>,
    /// Average inflation across applications.
    pub avg_inflation: f64,
    /// Worst-case inflation.
    pub max_inflation: f64,
}

/// Runs the experiment.
pub fn run(scope: Scope) -> BloatReport {
    let profiles = scope.apps();
    // Two jobs per application: 4KB-only then 2MB-only.
    let jobs: Vec<_> = profiles
        .iter()
        .flat_map(|profile| {
            let w = Workload { name: profile.name.to_string(), apps: vec![profile] };
            [
                (w.clone(), scope.config(ManagerKind::GpuMmu4K)),
                (w, scope.config(ManagerKind::GpuMmu2M)),
            ]
        })
        .collect();
    let results = run_workloads(&Executor::from_env(), jobs);
    let mut rows = Vec::new();
    for (profile, pair) in profiles.iter().zip(results.chunks_exact(2)) {
        // 4KB-only management commits exactly the touched pages; compare
        // the bytes each configuration actually committed.
        let f4 = pair[0].stats.touched_bytes.max(1);
        let f2 = pair[1].stats.footprint_bytes;
        rows.push(AppBloat {
            name: profile.name.to_string(),
            footprint_4k: f4,
            footprint_2m: f2,
            inflation: f2 as f64 / f4 as f64 - 1.0,
        });
    }
    let inflations: Vec<f64> = rows.iter().map(|r| r.inflation).collect();
    BloatReport {
        avg_inflation: mean(&inflations),
        max_inflation: inflations.iter().copied().fold(0.0, f64::max),
        rows,
    }
}

impl fmt::Display for BloatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 3.2: memory bloat of 2MB-only management")?;
        writeln!(f, "{:<24} {:>10} {:>10} {:>8}", "application", "4KB MB", "2MB MB", "bloat%")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:>10.1} {:>10.1} {:>7.1}%",
                r.name,
                r.footprint_4k as f64 / (1024.0 * 1024.0),
                r.footprint_2m as f64 / (1024.0 * 1024.0),
                r.inflation * 100.0
            )?;
        }
        writeln!(f, "{}", fmt_row("AVG / MAX bloat", &[self.avg_inflation, self.max_inflation]))?;
        writeln!(f, "paper: +40.2% on average, up to +367% worst case.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_pages_inflate_memory() {
        let report = run(Scope::Smoke);
        assert!(report.avg_inflation > 0.0, "2MB-only must commit more than touched");
        assert!(report.max_inflation >= report.avg_inflation);
        for r in &report.rows {
            assert!(r.footprint_2m >= r.footprint_4k, "{}", r.name);
        }
        assert!(report.to_string().contains("bloat"));
    }
}
