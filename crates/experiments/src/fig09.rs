//! Figure 9: weighted speedup of heterogeneous multi-application
//! workloads (2–5 randomly-mixed applications) under GPU-MMU, Mosaic,
//! and the Ideal TLB.
//!
//! The paper: Mosaic improves heterogeneous workloads by 29.7% on average
//! and comes within 15.4% of the Ideal TLB (the gap is larger than for
//! homogeneous workloads because TLB-sensitive applications suffer
//! conflict misses that large pages alone cannot remove).

use crate::common::Scope;
use crate::fig08::{sweep, SpeedupFigure};

/// Runs the Figure 9 sweep.
pub fn run(scope: Scope) -> SpeedupFigure {
    let max = if scope == Scope::Smoke { 3 } else { 5 };
    sweep(scope, "Figure 9: heterogeneous workloads", 2..=max, |n| scope.heterogeneous(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosaic_improves_heterogeneous_workloads() {
        let fig = run(Scope::Smoke);
        assert_eq!(fig.levels.len(), 2);
        for l in &fig.levels {
            assert!(l.apps >= 2);
            assert!(l.mosaic > l.gpu_mmu, "{} apps: {l:?}", l.apps);
        }
        assert!(fig.avg_improvement() > 0.05);
        assert!(fig.to_string().contains("heterogeneous"));
    }
}
