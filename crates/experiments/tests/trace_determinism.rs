//! The determinism contract of the trace pipeline: the JSONL trace a
//! sweep records is byte-identical at any worker count, and pinned to a
//! golden digest.
//!
//! Trace collection is process-global state (`sweep::set_trace` /
//! `sweep::take_trace`), and the test binary runs tests on parallel
//! threads, so every test here serializes on one lock and leaves
//! tracing disabled on exit.

use mosaic_experiments::common::Scope;
use mosaic_experiments::sweep::{self, run_workloads, Executor};
use mosaic_gpusim::ManagerKind;
use mosaic_workloads::Workload;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Golden digest of the smoke-scope MM+GUPS trace below, pinned when
/// the telemetry pipeline landed. Update ONLY for a change that
/// intentionally alters simulated behavior or the event schema.
const GOLDEN_TRACE_SMOKE_DIGEST: &str = "1018f6b5fd858109";

/// Runs a 4-job sweep (MM and GUPS under GPU-MMU and Mosaic) with trace
/// collection on and returns the rendered JSONL.
fn traced_sweep(jobs: usize) -> String {
    sweep::set_trace(true);
    let exec = Executor::new(jobs);
    let sweep_jobs = ["MM", "GUPS"]
        .iter()
        .flat_map(|&name| {
            [ManagerKind::GpuMmu4K, ManagerKind::mosaic()]
                .map(|mgr| (Workload::from_names(&[name]), Scope::Smoke.config(mgr)))
        })
        .collect();
    let results = run_workloads(&exec, sweep_jobs);
    assert_eq!(results.len(), 4);
    sweep::set_trace(false);
    sweep::render_trace(&sweep::take_trace())
}

#[test]
fn traces_are_byte_identical_across_job_counts_and_match_golden() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = traced_sweep(1);
    let parallel = traced_sweep(8);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "trace must be byte-identical at any --jobs count");
    // Sanity on shape: one run_begin per job, and real simulated events.
    assert_eq!(serial.matches("\"type\":\"run_begin\"").count(), 4);
    for tag in ["warp_mem", "tlb_lookup", "page_walk", "dram_access", "epoch"] {
        assert!(
            serial.contains(&format!("\"type\":\"{tag}\"")),
            "trace should contain {tag} events"
        );
    }
    let digest = format!("{:016x}", fnv1a(serial.as_bytes()));
    assert_eq!(digest, GOLDEN_TRACE_SMOKE_DIGEST, "trace drifted from the golden digest");
}

#[test]
fn untraced_sweeps_collect_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sweep::set_trace(false);
    let exec = Executor::new(2);
    let jobs = vec![(Workload::from_names(&["MM"]), Scope::Smoke.config(ManagerKind::GpuMmu4K))];
    let _ = run_workloads(&exec, jobs);
    assert!(sweep::take_trace().is_empty(), "tracing off must record nothing");
}
