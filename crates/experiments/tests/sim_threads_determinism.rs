//! The determinism tier for intra-run parallelism (DESIGN.md §12): the
//! speculative sharded engine behind `--sim-threads N` must reproduce
//! every golden report of the sequential engine byte for byte, at every
//! worker count, composed with every sweep-executor job count.
//!
//! Two layers:
//!
//! * **Golden matrix** — the pre-existing golden digests (fig08, fig03,
//!   fig11, walker ablation, stall attribution, oversubscription) are
//!   re-verified with the sharded engine. fig08 and oversub — the two
//!   reports that exercise the widest slice of the memory/VM stack — run
//!   the full `--sim-threads {1,2,4,8} × --jobs {1,4}` matrix; the rest
//!   run a reduced `--sim-threads {2,8}` pass (their jobs-axis coverage
//!   lives in `parallel_determinism.rs`, and the sim-threads axis is
//!   independent of it by construction).
//! * **Seed smoke** — eight seeds diffing the sequential engine against
//!   the sharded engine at the `run_workload` level, pinning equality of
//!   the full `RunResult` (not just the rendered report).
//!
//! The golden constants are deliberately duplicated from
//! `parallel_determinism.rs` rather than shared through a helper crate:
//! if either tier's pin moves, both files must be touched, which is
//! exactly the friction the update policy wants.

use mosaic_experiments::common::Scope;
use mosaic_experiments::{ablations, fig03, fig08, fig11, oversub, stall, sweep};
use mosaic_gpusim::{set_sim_threads, ManagerKind, RunConfig};
use mosaic_workloads::{ScaleConfig, Workload};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests: both `sweep::set_jobs` and `set_sim_threads` are
/// process-global knobs, so tests claiming specific counts must not
/// overlap.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a (64-bit), matching `parallel_determinism.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Golden smoke-scope digests, pinned by `parallel_determinism.rs` (see
// the update policy there). The sharded engine must hit the *same*
// digests — a new engine does not get new goldens.
const GOLDEN_FIG08_SMOKE_DIGEST: &str = "ad0fedc459c0afa6";
const GOLDEN_FIG03_SMOKE_DIGEST: &str = "d3a367a2c8a59907";
const GOLDEN_FIG11_SMOKE_DIGEST: &str = "f0bc1943ac8bc2e5";
const GOLDEN_ABLATION_WALKER_SMOKE_DIGEST: &str = "3e03ad211b0a0142";
const GOLDEN_STALL_SMOKE_DIGEST: &str = "174dce1f1c6193c9";
const GOLDEN_OVERSUB_SMOKE_DIGEST: &str = "34029bf26e3a411f";

/// Renders `run` under each `(sim_threads, jobs)` pair and asserts the
/// golden digest every time.
fn golden_matrix(name: &str, golden: &str, matrix: &[(usize, usize)], run: impl Fn() -> String) {
    let _guard = lock();
    for &(threads, jobs) in matrix {
        set_sim_threads(Some(threads));
        sweep::set_jobs(Some(jobs));
        let report = run();
        set_sim_threads(None);
        sweep::set_jobs(None);
        assert!(!report.is_empty());
        let digest = format!("{:016x}", fnv1a(report.as_bytes()));
        assert_eq!(
            digest, golden,
            "{name} drifted from the golden digest at --sim-threads {threads} \
             --jobs {jobs}; report was:\n{report}"
        );
    }
}

/// Full matrix for the two widest-coverage reports.
const FULL: &[(usize, usize)] = &[(1, 1), (2, 1), (4, 1), (8, 1), (1, 4), (2, 4), (4, 4), (8, 4)];

/// Reduced pass for the rest: the sharded engine at low and high worker
/// counts, single job (the jobs axis is covered by the full matrix and
/// by `parallel_determinism.rs`).
const REDUCED: &[(usize, usize)] = &[(2, 1), (8, 1)];

#[test]
fn fig08_matches_golden_digest_across_sim_threads_and_jobs() {
    golden_matrix("fig08", GOLDEN_FIG08_SMOKE_DIGEST, FULL, || {
        fig08::run(Scope::Smoke).to_string()
    });
}

#[test]
fn oversub_matches_golden_digest_across_sim_threads_and_jobs() {
    golden_matrix("oversub", GOLDEN_OVERSUB_SMOKE_DIGEST, FULL, || {
        oversub::run(Scope::Smoke).to_string()
    });
}

#[test]
fn fig03_matches_golden_digest_under_sharded_engine() {
    golden_matrix("fig03", GOLDEN_FIG03_SMOKE_DIGEST, REDUCED, || {
        fig03::run(Scope::Smoke).to_string()
    });
}

#[test]
fn fig11_matches_golden_digest_under_sharded_engine() {
    golden_matrix("fig11", GOLDEN_FIG11_SMOKE_DIGEST, REDUCED, || {
        fig11::run(Scope::Smoke).to_string()
    });
}

#[test]
fn walker_ablation_matches_golden_digest_under_sharded_engine() {
    golden_matrix("ablation_walker", GOLDEN_ABLATION_WALKER_SMOKE_DIGEST, REDUCED, || {
        ablations::walker_threads(Scope::Smoke).to_string()
    });
}

#[test]
fn stall_report_matches_golden_digest_under_sharded_engine() {
    golden_matrix("stall", GOLDEN_STALL_SMOKE_DIGEST, REDUCED, || {
        stall::run(Scope::Smoke).to_string()
    });
}

#[test]
fn eight_seed_smoke_diffs_sequential_vs_sharded_engine() {
    let _guard = lock();
    let w = Workload::from_names(&["MM", "GUPS", "HS"]);
    for seed in 0..8u64 {
        let mut cfg = RunConfig::new(ManagerKind::mosaic()).with_scale(ScaleConfig {
            ws_divisor: 64,
            mem_ops_per_warp: 24,
            warps_per_sm: 4,
            phases: 1,
        });
        cfg.system.sm_count = 6;
        cfg.seed = seed;
        set_sim_threads(None);
        let sequential = mosaic_gpusim::run_workload(&w, cfg);
        set_sim_threads(Some(4));
        let sharded = mosaic_gpusim::run_workload(&w, cfg);
        set_sim_threads(None);
        assert_eq!(
            sequential, sharded,
            "seed {seed}: sharded engine diverged from the sequential engine"
        );
    }
}
