//! The cache transparency contract: every figure driver's rendered
//! output is byte-identical with the persistent run cache disabled,
//! cold, and warm — pinned against the same golden digests as the
//! parallel-determinism tier, so a cache bug can't silently move the
//! reproduced figures.
//!
//! Everything runs inside one `#[test]`: the cache is process-global
//! (`sweep::set_cache`), so phases must not interleave with each other
//! or with other tests in this binary.

use mosaic_campaign::{CampaignScope, Store};
use mosaic_experiments::common::Scope;
use mosaic_experiments::{ablations, fig03, fig08, fig11, oversub, stall, sweep};
use mosaic_gpusim::{ManagerKind, RunConfig};
use mosaic_workloads::Workload;

/// FNV-1a (64-bit) over a rendered report, as in `parallel_determinism`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The golden smoke digests pinned by `parallel_determinism.rs` — one
/// contract, asserted from both tiers. Update policy as documented
/// there: only for intentional behavior/formatting changes.
const GOLDEN: [(&str, &str); 6] = [
    ("fig08", "ad0fedc459c0afa6"),
    ("fig03", "d3a367a2c8a59907"),
    ("fig11", "f0bc1943ac8bc2e5"),
    ("ablation_walker", "3e03ad211b0a0142"),
    ("oversub", "34029bf26e3a411f"),
    ("stall", "174dce1f1c6193c9"),
];

fn render_all() -> Vec<(&'static str, String)> {
    vec![
        ("fig08", fig08::run(Scope::Smoke).to_string()),
        ("fig03", fig03::run(Scope::Smoke).to_string()),
        ("fig11", fig11::run(Scope::Smoke).to_string()),
        ("ablation_walker", ablations::walker_threads(Scope::Smoke).to_string()),
        ("oversub", oversub::run(Scope::Smoke).to_string()),
        ("stall", stall::run(Scope::Smoke).to_string()),
    ]
}

#[test]
fn reports_are_identical_with_cache_disabled_cold_and_warm() {
    let dir = std::env::temp_dir().join(format!("mosaic-cache-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: no cache — the reference, checked against the goldens.
    sweep::set_cache(None);
    let disabled = render_all();
    for ((name, report), (gname, golden)) in disabled.iter().zip(GOLDEN) {
        assert_eq!(*name, gname);
        let digest = format!("{:016x}", fnv1a(report.as_bytes()));
        assert_eq!(
            digest, golden,
            "{name} smoke report drifted from the golden digest; report was:\n{report}"
        );
    }

    // Phase 2: cold cache — every run misses, simulates, checkpoints.
    sweep::set_cache(Some(Store::open(&dir).expect("create store")));
    let cold = render_all();
    let cold_stats = sweep::cache().expect("installed").stats();
    assert_eq!(disabled, cold, "cold cache must not change any report");
    assert!(cold_stats.stores > 0, "cold phase checkpoints results: {cold_stats:?}");
    assert_eq!(cold_stats.failures, 0, "{cold_stats:?}");

    // Phase 3: warm cache — a fresh Store on the same directory (fresh
    // counters, same entries): every lookup must hit.
    sweep::set_cache(Some(Store::open(&dir).expect("reopen store")));
    let warm = render_all();
    let warm_stats = sweep::cache().expect("installed").stats();
    sweep::set_cache(None);
    assert_eq!(disabled, warm, "warm cache must not change any report");
    assert!(warm_stats.hits > 0, "warm phase serves from the store: {warm_stats:?}");
    assert_eq!(warm_stats.misses, 0, "every point of an identical re-run must hit: {warm_stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The campaign DSL's scale tiers must stay in lockstep with the
/// experiment crate's `Scope`, or campaign entries and figure-driver
/// entries for "the same" smoke run would live under different cache
/// keys. Compared through the run-key digest, which is exactly the
/// equivalence the store uses.
#[test]
fn campaign_scope_scales_match_experiment_scopes() {
    let w = Workload::from_names(&["MM"]);
    for (campaign, experiment) in [
        (CampaignScope::Smoke, Scope::Smoke),
        (CampaignScope::Default, Scope::Default),
        (CampaignScope::Full, Scope::Full),
    ] {
        assert_eq!(campaign.scale(), experiment.scale());
        let via_campaign = RunConfig::new(ManagerKind::mosaic()).with_scale(campaign.scale());
        let via_experiment = experiment.config(ManagerKind::mosaic());
        let code = mosaic_campaign::built_code_digest();
        assert_eq!(
            mosaic_campaign::run_key(&w, &via_campaign, code),
            mosaic_campaign::run_key(&w, &via_experiment, code),
            "{campaign:?} and {experiment:?} must share cache entries"
        );
    }
}
