//! The determinism contract of the sweep executor: a figure driver's
//! rendered output is byte-identical at any worker count.
//!
//! This drives a real figure (fig08, which exercises the job-list
//! refactor, the `AloneCache` prefetch path, and the ordered-collection
//! API together) once serially and once with four workers, and compares
//! the rendered reports byte for byte.

use mosaic_experiments::common::Scope;
use mosaic_experiments::{fig08, sweep};

#[test]
fn serial_vs_parallel_sweeps_are_bit_identical() {
    sweep::set_jobs(Some(1));
    let serial = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(Some(4));
    let parallel = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(None);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "parallel output must match serial byte-for-byte");
}
