//! The determinism contract of the sweep executor: a figure driver's
//! rendered output is byte-identical at any worker count.
//!
//! Each test compares a figure rendered with multiple workers against a
//! shared serial fixture and pins the serial report to a golden FNV-1a
//! digest. The serial renderings are computed exactly once per process
//! (in [`fixture`]) — previously every test re-ran its full workload
//! serially, roughly doubling the tier's wall-clock for no extra
//! coverage. The golden tier covers fig08 (job-list refactor +
//! `AloneCache` prefetch + ordered collection), fig03 (single-app
//! sweeps), fig11 (per-app normalized IPC sort), the walker-threads
//! ablation, and the stall-attribution report (exact bucket
//! decomposition on the always-on path).

use mosaic_experiments::common::Scope;
use mosaic_experiments::{ablations, fig03, fig08, fig11, multigpu, oversub, stall, sweep};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests: `sweep::set_jobs` is process-global, and these
/// tests each claim a specific worker count, so they must not overlap.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serial (jobs = 1) renderings of every report in the golden tier,
/// computed once and shared by all tests in this binary.
struct Fixture {
    fig08: String,
    fig03: String,
    fig11: String,
    walker: String,
    oversub: String,
    stall: String,
    multigpu: String,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        // Takes JOBS_LOCK itself — callers must not hold it across this
        // call (std Mutex is not reentrant).
        let _guard = lock();
        sweep::set_jobs(Some(1));
        let f = Fixture {
            fig08: fig08::run(Scope::Smoke).to_string(),
            fig03: fig03::run(Scope::Smoke).to_string(),
            fig11: fig11::run(Scope::Smoke).to_string(),
            walker: ablations::walker_threads(Scope::Smoke).to_string(),
            oversub: oversub::run(Scope::Smoke).to_string(),
            stall: stall::run(Scope::Smoke).to_string(),
            multigpu: multigpu::run(Scope::Smoke).to_string(),
        };
        sweep::set_jobs(None);
        f
    })
}

/// FNV-1a (64-bit) over the rendered report. Small and dependency-free;
/// collision resistance is irrelevant here — any accidental change to
/// the rendered output flips the digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of fig08's smoke-scope report, pinned when the flat-structure
/// hot-path rework landed. This is the cross-structure determinism
/// contract: the BTreeMap→flat-vector page table, the TLB last-hit
/// cache, the monomorphized SM loop, and the indexed frame pool must
/// all render byte-for-byte the same report as the originals. Update
/// this constant ONLY for a change that intentionally alters simulated
/// behavior or report formatting — never for a performance refactor.
const GOLDEN_FIG08_SMOKE_DIGEST: &str = "ad0fedc459c0afa6";

/// Golden smoke-scope digests for the rest of the tier, pinned when the
/// telemetry/stall-attribution instrumentation landed (which had to be
/// output-isomorphic — `GOLDEN_FIG08_SMOKE_DIGEST` predates it and did
/// not move). Same update policy as above.
const GOLDEN_FIG03_SMOKE_DIGEST: &str = "d3a367a2c8a59907";
const GOLDEN_FIG11_SMOKE_DIGEST: &str = "f0bc1943ac8bc2e5";
const GOLDEN_ABLATION_WALKER_SMOKE_DIGEST: &str = "3e03ad211b0a0142";
// Re-pinned when the stall table grew `evict`/`writeback` columns for
// the oversubscription work (the simulated behavior of fully-subscribed
// runs did not move — every pre-existing percentage is unchanged).
const GOLDEN_STALL_SMOKE_DIGEST: &str = "174dce1f1c6193c9";

/// Pinned when the oversubscription figure landed. This one exercises
/// the demand-paging engine end to end — LRU eviction, dirty write-back
/// over the I/O bus, and sequential prefetch — so it is the determinism
/// contract for the whole paging path, not just the report formatting.
const GOLDEN_OVERSUB_SMOKE_DIGEST: &str = "34029bf26e3a411f";

/// Pinned when the multi-GPU fleet landed. The figure sweeps 1/2/4-GPU
/// fleets under both managers plus every placement policy, so this is
/// the determinism contract for the whole scale-out path: placement
/// decisions, interconnect queueing, migration/replication payloads, and
/// the remote/migrate stall attribution.
const GOLDEN_MULTIGPU_SMOKE_DIGEST: &str = "eea524f5b009c7d8";

/// Renders `run` at eight workers, asserts byte-identity against the
/// shared serial fixture rendering, and checks it against `golden`.
fn golden_check(name: &str, golden: &str, serial: &str, run: impl Fn() -> String) {
    let parallel = {
        let _guard = lock();
        sweep::set_jobs(Some(8));
        let p = run();
        sweep::set_jobs(None);
        p
    };
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "{name}: parallel output must match serial byte-for-byte");
    let digest = format!("{:016x}", fnv1a(serial.as_bytes()));
    assert_eq!(
        digest, golden,
        "{name} smoke report drifted from the golden digest; report was:\n{serial}"
    );
}

#[test]
fn smoke_report_matches_golden_digest() {
    let serial = &fixture().fig08;
    let _guard = lock();
    sweep::set_jobs(Some(2));
    let report = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(None);
    assert!(!report.is_empty());
    assert_eq!(serial, &report, "two-worker output must match serial byte-for-byte");
    let digest = format!("{:016x}", fnv1a(report.as_bytes()));
    assert_eq!(
        digest, GOLDEN_FIG08_SMOKE_DIGEST,
        "fig08 smoke report drifted from the golden digest; report was:\n{report}"
    );
}

#[test]
fn serial_vs_parallel_sweeps_are_bit_identical() {
    let serial = &fixture().fig08;
    let _guard = lock();
    sweep::set_jobs(Some(4));
    let parallel = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(None);
    assert!(!serial.is_empty());
    assert_eq!(serial, &parallel, "parallel output must match serial byte-for-byte");
}

#[test]
fn fig03_matches_golden_digest_at_any_jobs() {
    golden_check("fig03", GOLDEN_FIG03_SMOKE_DIGEST, &fixture().fig03, || {
        fig03::run(Scope::Smoke).to_string()
    });
}

#[test]
fn fig11_matches_golden_digest_at_any_jobs() {
    golden_check("fig11", GOLDEN_FIG11_SMOKE_DIGEST, &fixture().fig11, || {
        fig11::run(Scope::Smoke).to_string()
    });
}

#[test]
fn walker_ablation_matches_golden_digest_at_any_jobs() {
    golden_check("ablation_walker", GOLDEN_ABLATION_WALKER_SMOKE_DIGEST, &fixture().walker, || {
        ablations::walker_threads(Scope::Smoke).to_string()
    });
}

#[test]
fn oversubscribed_sweep_matches_golden_digest_at_any_jobs() {
    let report = &fixture().oversub;
    golden_check("oversub", GOLDEN_OVERSUB_SMOKE_DIGEST, report, || {
        oversub::run(Scope::Smoke).to_string()
    });
    // The golden run must actually exercise the eviction engine, or the
    // digest pins nothing interesting.
    assert!(!report.contains("0 pages evicted"), "eviction engine engaged:\n{report}");
}

#[test]
fn stall_report_matches_golden_digest_at_any_jobs() {
    let report = &fixture().stall;
    golden_check("stall", GOLDEN_STALL_SMOKE_DIGEST, report, || {
        stall::run(Scope::Smoke).to_string()
    });
    // The report must cover both ends of the TLB-sensitivity spectrum.
    assert!(report.contains("MM "), "TLB-friendly workload present:\n{report}");
    assert!(report.contains("GUPS "), "TLB-sensitive workload present:\n{report}");
}

#[test]
fn multigpu_matches_golden_digest_at_any_jobs() {
    let report = &fixture().multigpu;
    golden_check("multigpu", GOLDEN_MULTIGPU_SMOKE_DIGEST, report, || {
        multigpu::run(Scope::Smoke).to_string()
    });
    // The golden run must actually cross the interconnect, or the digest
    // pins nothing beyond the single-GPU engine.
    assert!(report.contains("4 GPUs"), "placement probe present:\n{report}");
}

#[test]
fn multigpu_is_identical_across_the_jobs_and_sim_threads_matrix() {
    // The two parallelism axes compose: `--jobs` fans sweep points out
    // across workers, `--sim-threads` speculates inside each fleet run.
    // Every combination must render the serial fixture byte-for-byte.
    let serial = &fixture().multigpu;
    let _guard = lock();
    for jobs in [1, 4] {
        for sim_threads in [1, 4] {
            sweep::set_jobs(Some(jobs));
            mosaic_gpusim::set_sim_threads(Some(sim_threads));
            let report = multigpu::run(Scope::Smoke).to_string();
            sweep::set_jobs(None);
            mosaic_gpusim::set_sim_threads(None);
            assert_eq!(
                serial, &report,
                "multigpu drifted at --jobs {jobs} --sim-threads {sim_threads}"
            );
        }
    }
}
