//! The determinism contract of the sweep executor: a figure driver's
//! rendered output is byte-identical at any worker count.
//!
//! This drives a real figure (fig08, which exercises the job-list
//! refactor, the `AloneCache` prefetch path, and the ordered-collection
//! API together) once serially and once with four workers, and compares
//! the rendered reports byte for byte.

use mosaic_experiments::common::Scope;
use mosaic_experiments::{fig08, sweep};

/// FNV-1a (64-bit) over the rendered report. Small and dependency-free;
/// collision resistance is irrelevant here — any accidental change to
/// the rendered output flips the digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of fig08's smoke-scope report, pinned when the flat-structure
/// hot-path rework landed. This is the cross-structure determinism
/// contract: the BTreeMap→flat-vector page table, the TLB last-hit
/// cache, the monomorphized SM loop, and the indexed frame pool must
/// all render byte-for-byte the same report as the originals. Update
/// this constant ONLY for a change that intentionally alters simulated
/// behavior or report formatting — never for a performance refactor.
const GOLDEN_FIG08_SMOKE_DIGEST: &str = "ad0fedc459c0afa6";

#[test]
fn smoke_report_matches_golden_digest() {
    sweep::set_jobs(Some(2));
    let report = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(None);
    assert!(!report.is_empty());
    let digest = format!("{:016x}", fnv1a(report.as_bytes()));
    assert_eq!(
        digest, GOLDEN_FIG08_SMOKE_DIGEST,
        "fig08 smoke report drifted from the golden digest; report was:\n{report}"
    );
}

#[test]
fn serial_vs_parallel_sweeps_are_bit_identical() {
    sweep::set_jobs(Some(1));
    let serial = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(Some(4));
    let parallel = fig08::run(Scope::Smoke).to_string();
    sweep::set_jobs(None);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "parallel output must match serial byte-for-byte");
}
