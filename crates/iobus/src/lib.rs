//! System I/O (PCIe) bus model for GPU demand paging.
//!
//! When a GPU thread touches a page that is not resident in GPU memory,
//! the resulting *far-fault* transfers the page from CPU memory over the
//! system I/O bus (Section 2.2). The paper calibrates this path against a
//! real GTX 1080: a 4 KB base-page fault has a **55 µs** load-to-use
//! latency and a 2 MB large-page fault **318 µs** (Section 3.2) — the six-
//! fold gap that makes large-page demand paging untenable and motivates
//! Mosaic's "transfer at base-page granularity" design.
//!
//! The model is a serialized latency + bandwidth queue fitted through those
//! two measured points: completion = start + `base_latency` + `bytes`/`bandwidth`,
//! where consecutive transfers pipeline at the bandwidth term but share the
//! single bus. An optional zero-overhead mode supports the paper's
//! "no demand paging overhead" experiments (Figures 3 and 4's baselines).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mosaic_sim_core::{ClockDomain, Counter, Cycle, Histogram, Nanos, ThroughputPort};

/// I/O bus parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoBusConfig {
    /// Fixed per-fault latency (fault handling, round trip), in ns.
    pub base_latency: Nanos,
    /// Sustained transfer bandwidth in bytes per nanosecond (= GB/s).
    pub bytes_per_ns: f64,
    /// Minimum bus occupancy per transfer (command overhead), in ns.
    pub issue_overhead: Nanos,
    /// When `true`, transfers complete instantly — the "no demand paging
    /// overhead" idealization of Section 3.1.
    pub zero_overhead: bool,
    /// Core clock for converting to shader cycles.
    pub core_clock_mhz: f64,
}

impl IoBusConfig {
    /// Calibrated to the paper's GTX 1080 measurements: 55 µs per 4 KB
    /// fault and 318 µs per 2 MB fault.
    ///
    /// Solving `base + 4096/bw = 55 µs` and `base + 2 MiB/bw = 318 µs`
    /// gives `bw ≈ 7.96 GB/s` and `base ≈ 54.49 µs`.
    pub fn paper() -> Self {
        let bw = (2_097_152.0 - 4_096.0) / (318_000.0 - 55_000.0); // bytes per ns
        let base = 55_000.0 - 4_096.0 / bw;
        IoBusConfig {
            base_latency: Nanos(base),
            bytes_per_ns: bw,
            issue_overhead: Nanos(1_000.0),
            zero_overhead: false,
            core_clock_mhz: 1020.0,
        }
    }

    /// The paper configuration with transfer overheads disabled.
    pub fn paper_zero_overhead() -> Self {
        IoBusConfig { zero_overhead: true, ..Self::paper() }
    }

    /// The paper configuration with all transfer times divided by
    /// `divisor`.
    ///
    /// Experiments shrink application working sets by a divisor to keep
    /// simulations tractable; scaling the I/O bus by the same factor
    /// preserves the paper's execution-time-to-transfer-time ratio (a page
    /// is faulted once but executed against many times), which is what
    /// Figures 4 and 12 measure. `scaled(1)` is exactly [`Self::paper`].
    pub fn scaled(divisor: u32) -> Self {
        let d = f64::from(divisor.max(1));
        let p = Self::paper();
        IoBusConfig {
            // The fixed fault-handling latency scales with the run-length
            // compression; wire time scales only half as fast, because
            // the *bytes per fault* are not scaled (a large-page fault
            // still moves a real 2 MB) — only the number of faults is.
            // This keeps the paper's brutal large-page transfer cost
            // visible at reduced scale.
            base_latency: Nanos(p.base_latency.0 / d),
            bytes_per_ns: p.bytes_per_ns * (d / 2.0).max(1.0),
            issue_overhead: Nanos(p.issue_overhead.0 / (2.0 * d)),
            ..p
        }
    }

    /// Load-to-use latency of an uncontended transfer of `bytes`.
    pub fn uncontended_latency(&self, bytes: u64) -> Nanos {
        if self.zero_overhead {
            Nanos(0.0)
        } else {
            Nanos(self.base_latency.0 + bytes as f64 / self.bytes_per_ns)
        }
    }
}

/// The system I/O bus: one shared, serialized transfer engine.
///
/// # Examples
///
/// ```
/// use mosaic_iobus::{IoBus, IoBusConfig};
/// use mosaic_sim_core::Cycle;
///
/// let mut bus = IoBus::new(IoBusConfig::paper());
/// let done = bus.transfer(Cycle::new(0), 4096);
/// // 55 us at 1020 MHz ≈ 56,100 core cycles.
/// assert!((done.as_u64() as f64 - 56_100.0).abs() / 56_100.0 < 0.01);
/// ```
#[derive(Debug)]
pub struct IoBus {
    config: IoBusConfig,
    clock: ClockDomain,
    port: ThroughputPort,
    transfers: Counter,
    bytes: Counter,
    queue: Histogram,
    service: Histogram,
}

impl IoBus {
    /// Creates an idle bus.
    pub fn new(config: IoBusConfig) -> Self {
        let clock = ClockDomain::from_mhz(config.core_clock_mhz);
        IoBus {
            config,
            clock,
            port: ThroughputPort::serialized(1),
            transfers: Counter::new(),
            bytes: Counter::new(),
            queue: Histogram::default(),
            service: Histogram::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IoBusConfig {
        &self.config
    }

    /// Transfers `bytes` over the bus for a fault observed at `now`;
    /// returns the load-to-use completion cycle.
    ///
    /// The bus is occupied for the bandwidth portion of the transfer (plus
    /// command overhead); the fixed fault-handling latency pipelines across
    /// transfers.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.transfers.inc();
        self.bytes.add(bytes);
        if self.config.zero_overhead {
            // Instant transfers have neither queue nor service time; the
            // histograms stay empty rather than piling up zero samples.
            return now;
        }
        let wire_ns = bytes as f64 / self.config.bytes_per_ns;
        let occupy = self.clock.cycles_for(Nanos(wire_ns.max(self.config.issue_overhead.0))).max(1);
        let grant = self.port.acquire_for(now, occupy);
        let done = grant.start
            + self.clock.cycles_for(Nanos(wire_ns))
            + self.clock.cycles_for(self.config.base_latency);
        self.queue.record(grant.start.since(now));
        self.service.record(done.since(grant.start));
        done
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers.get()
    }

    /// Total bytes moved over the bus.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Distribution of time spent waiting for the bus (fault observed to
    /// transfer granted), in core cycles.
    pub fn queue(&self) -> &Histogram {
        &self.queue
    }

    /// Distribution of pure transfer time (grant to completion: wire plus
    /// the fixed fault-handling latency), in core cycles.
    pub fn service(&self) -> &Histogram {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_vm_geometry::*;

    /// Local copies of the page sizes to avoid a dependency cycle.
    mod mosaic_vm_geometry {
        pub const BASE_PAGE: u64 = 4096;
        pub const LARGE_PAGE: u64 = 2 * 1024 * 1024;
    }

    #[test]
    fn calibration_matches_paper_measurements() {
        let cfg = IoBusConfig::paper();
        let base = cfg.uncontended_latency(BASE_PAGE).as_micros();
        let large = cfg.uncontended_latency(LARGE_PAGE).as_micros();
        assert!((base - 55.0).abs() < 0.5, "4KB fault should be ~55us, got {base}");
        assert!((large - 318.0).abs() < 1.0, "2MB fault should be ~318us, got {large}");
        // The six-fold ratio the paper highlights.
        assert!((large / base - 318.0 / 55.0).abs() < 0.1);
    }

    #[test]
    fn transfers_serialize_on_bandwidth() {
        let mut bus = IoBus::new(IoBusConfig::paper());
        let a = bus.transfer(Cycle::new(0), LARGE_PAGE);
        let b = bus.transfer(Cycle::new(0), LARGE_PAGE);
        // The second 2 MB transfer waits for the first's wire time
        // (~263 us) before starting its own.
        assert!(b.since(a) > 200_000, "second transfer delayed by bus occupancy");
        assert_eq!(bus.transfers(), 2);
        assert_eq!(bus.bytes(), 2 * LARGE_PAGE);
    }

    #[test]
    fn small_transfers_pipeline_fixed_latency() {
        let mut bus = IoBus::new(IoBusConfig::paper());
        let a = bus.transfer(Cycle::new(0), BASE_PAGE);
        let b = bus.transfer(Cycle::new(0), BASE_PAGE);
        // Both complete within ~56us + ~1us spacing: the fixed fault
        // latency overlaps; only wire time serializes.
        assert!(b.since(a) < 2_000, "4KB transfers pipeline, got {}", b.since(a));
    }

    #[test]
    fn zero_overhead_mode_is_free() {
        let mut bus = IoBus::new(IoBusConfig::paper_zero_overhead());
        let done = bus.transfer(Cycle::new(123), LARGE_PAGE);
        assert_eq!(done, Cycle::new(123));
        assert_eq!(bus.transfers(), 1, "stats still recorded");
    }

    #[test]
    fn zero_overhead_mode_records_no_latency_samples() {
        let mut bus = IoBus::new(IoBusConfig::paper_zero_overhead());
        bus.transfer(Cycle::new(0), BASE_PAGE);
        bus.transfer(Cycle::new(0), LARGE_PAGE);
        assert_eq!(bus.queue().count(), 0, "instant transfers never queue");
        assert_eq!(bus.service().count(), 0, "instant transfers have no service time");
        assert_eq!(bus.transfers(), 2);
    }

    #[test]
    fn queue_and_service_histograms_split_contention_from_wire_time() {
        let mut bus = IoBus::new(IoBusConfig::paper());
        bus.transfer(Cycle::new(0), BASE_PAGE);
        bus.transfer(Cycle::new(0), BASE_PAGE);
        assert_eq!(bus.queue().count(), 2);
        assert_eq!(bus.service().count(), 2);
        // The first transfer finds the bus idle; the second waits its turn.
        assert_eq!(bus.queue().min(), Some(0));
        assert!(bus.queue().max().unwrap() > 0, "contended transfer shows queue time");
        // Service time is pure wire + fixed latency: identical payloads
        // take identical service time regardless of queueing.
        assert_eq!(bus.service().min(), bus.service().max());
    }

    #[test]
    fn idle_bus_resets() {
        let mut bus = IoBus::new(IoBusConfig::paper());
        let a = bus.transfer(Cycle::new(0), BASE_PAGE);
        // A fault long after the first sees no queueing.
        let later = a + 10_000_000;
        let b = bus.transfer(later, BASE_PAGE);
        let expect = IoBusConfig::paper().uncontended_latency(BASE_PAGE);
        let clock = ClockDomain::from_mhz(1020.0);
        // Within rounding (wire and base latency are ceiled separately).
        assert!(b.since(later).abs_diff(clock.cycles_for(expect)) <= 2);
    }
}
