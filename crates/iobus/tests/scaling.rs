//! Properties of the I/O-bus scaling rule used by the experiments.

use mosaic_iobus::{IoBus, IoBusConfig};
use mosaic_sim_core::Cycle;

const BASE_PAGE: u64 = 4096;
const LARGE_PAGE: u64 = 2 * 1024 * 1024;

#[test]
fn scaled_1_is_the_paper_calibration() {
    let a = IoBusConfig::scaled(1);
    let b = IoBusConfig::paper();
    assert!((a.uncontended_latency(BASE_PAGE).0 - b.uncontended_latency(BASE_PAGE).0).abs() < 1.0);
}

#[test]
fn scaling_shrinks_latency_monotonically() {
    let mut prev = f64::INFINITY;
    for d in [1, 2, 4, 8, 16, 32] {
        let lat = IoBusConfig::scaled(d).uncontended_latency(BASE_PAGE).0;
        assert!(lat < prev, "divisor {d}: {lat} not below {prev}");
        prev = lat;
    }
}

#[test]
fn large_fault_stays_much_costlier_than_base_fault_at_any_scale() {
    for d in [1, 4, 8, 16, 64] {
        let cfg = IoBusConfig::scaled(d);
        let ratio = cfg.uncontended_latency(LARGE_PAGE).0 / cfg.uncontended_latency(BASE_PAGE).0;
        assert!(
            ratio > 3.0,
            "divisor {d}: 2MB/4KB fault ratio {ratio:.1} lost the paper's asymmetry"
        );
    }
}

#[test]
fn bus_throughput_is_work_conserving() {
    // N serialized transfers finish no earlier than the sum of their wire
    // times and no later than sum + first-transfer latency.
    let cfg = IoBusConfig::scaled(8);
    let mut bus = IoBus::new(cfg);
    let n = 64;
    let mut last = Cycle::ZERO;
    for _ in 0..n {
        last = bus.transfer(Cycle::ZERO, BASE_PAGE);
    }
    let wire_ns = BASE_PAGE as f64 / cfg.bytes_per_ns;
    let min_ns = wire_ns * n as f64;
    let max_ns = wire_ns * n as f64 + cfg.base_latency.0 + 2_000.0;
    let got_ns = last.as_u64() as f64 / 1.020;
    assert!(got_ns >= min_ns * 0.9, "{got_ns} vs min {min_ns}");
    assert!(got_ns <= max_ns * 1.1, "{got_ns} vs max {max_ns}");
    assert_eq!(bus.transfers(), n);
}
