//! System and run configuration.

use mosaic_core::cac::CacConfig;
use mosaic_core::migrating::MigratingConfig;
use mosaic_core::placement::{PlacementPolicy, MAX_GPUS};
use mosaic_iobus::IoBusConfig;
use mosaic_mem::{CacheConfig, CrossbarConfig, DramConfig, InterconnectConfig, Topology};
use mosaic_vm::TlbConfig;
use mosaic_workloads::ScaleConfig;

/// Which memory manager the system runs (the paper's comparison points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ManagerKind {
    /// The GPU-MMU baseline with 4 KB pages (Section 3.1).
    GpuMmu4K,
    /// GPU-MMU managing only 2 MB pages (the Section 3.2 motivation
    /// configuration).
    GpuMmu2M,
    /// Mosaic with the given CAC policy.
    Mosaic(CacConfig),
    /// A CPU-style utilization-based coalescer that migrates data and
    /// shoots down TLBs to promote (Ingens/Navarro-like, Section 7.1).
    Migrating(MigratingConfig),
}

impl ManagerKind {
    /// Mosaic with default CAC.
    pub fn mosaic() -> Self {
        ManagerKind::Mosaic(CacConfig::default())
    }

    /// The CPU-style migrating coalescer with default policy.
    pub fn migrating() -> Self {
        ManagerKind::Migrating(MigratingConfig::default())
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ManagerKind::GpuMmu4K => "GPU-MMU",
            ManagerKind::GpuMmu2M => "GPU-MMU-2MB",
            ManagerKind::Migrating(_) => "Migrating-Coalescer",
            ManagerKind::Mosaic(c) if !c.enabled => "Mosaic (no CAC)",
            ManagerKind::Mosaic(c) if c.ideal => "Mosaic (Ideal CAC)",
            ManagerKind::Mosaic(c) if c.bulk_copy => "Mosaic (CAC-BC)",
            ManagerKind::Mosaic(_) => "Mosaic",
        }
    }
}

/// How pages reach GPU memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandPagingMode {
    /// Pages fault in on first touch; far-faults cross the I/O bus at the
    /// manager's transfer granularity.
    OnDemand,
    /// All reserved pages are resident before cycle 0 at no charge — the
    /// "no demand paging overhead" idealization used by Figures 3, 4
    /// and 12.
    PreloadedFree,
}

/// The simulated system (Table 1) plus experiment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of SMs (Table 1: 30).
    pub sm_count: usize,
    /// Core clock in MHz (Table 1: 1020).
    pub core_clock_mhz: f64,
    /// Per-SM L1 TLB geometry.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB geometry.
    pub l2_tlb: TlbConfig,
    /// Per-SM L1 data cache.
    pub l1_cache: CacheConfig,
    /// One shared-L2 slice per memory partition.
    pub l2_cache_slice: CacheConfig,
    /// SM-to-partition crossbar.
    pub xbar: CrossbarConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Concurrent page-table walks (Table 1 baseline: 64).
    pub walker_threads: usize,
    /// Page-walk cache entries; `0` disables it (the paper's baseline
    /// replaces it with the shared L2 TLB, Section 3.1).
    pub walk_cache_entries: usize,
    /// System I/O bus.
    pub iobus: IoBusConfig,
    /// GPU physical memory in bytes.
    pub memory_bytes: u64,
    /// When `true`, every translation behaves as an L1 TLB hit (the
    /// paper's Ideal TLB reference).
    pub ideal_tlb: bool,
    /// The paper's conservative worst-case compaction model: migrations
    /// stall every SM until the copy finishes (Section 5). Off by
    /// default in this reproduction: at reduced run lengths a whole-GPU
    /// stall per migration is proportionally far costlier than at the
    /// paper's 100M+-cycle runs; compaction still pays DRAM-channel
    /// occupancy either way.
    pub compaction_stalls_gpu: bool,
}

impl SystemConfig {
    /// The paper's configuration (Table 1), with 3 GB of memory.
    pub fn paper() -> Self {
        SystemConfig {
            sm_count: 30,
            core_clock_mhz: 1020.0,
            l1_tlb: TlbConfig::paper_l1(),
            l2_tlb: TlbConfig::paper_l2(),
            l1_cache: CacheConfig::paper_l1(),
            l2_cache_slice: CacheConfig::paper_l2_slice(),
            xbar: CrossbarConfig::paper(),
            dram: DramConfig::paper(),
            walker_threads: 64,
            walk_cache_entries: 0,
            iobus: IoBusConfig::paper(),
            memory_bytes: 3 * 1024 * 1024 * 1024,
            ideal_tlb: false,
            compaction_stalls_gpu: false,
        }
    }

    /// The paper configuration with physical memory *and I/O-bus transfer
    /// times* scaled to match a workload scale divisor: working sets,
    /// memory, and far-fault costs shrink together, preserving the
    /// execution-to-transfer ratio the demand-paging experiments measure.
    pub fn paper_scaled(ws_divisor: u32) -> Self {
        let mut c = Self::paper();
        c.memory_bytes = (3 * 1024 * 1024 * 1024) / u64::from(ws_divisor.max(1));
        c.iobus = IoBusConfig::scaled(ws_divisor);
        c
    }
}

/// The multi-GPU fleet: how many devices, how they are wired together,
/// and how pages are placed across them.
///
/// Each GPU in the fleet replicates the full single-GPU stack of
/// [`SystemConfig`] — its SMs, L1/L2 TLBs, walkers, caches, and DRAM —
/// so a fleet of `n` weak-scales the machine to `n × sm_count` SMs and
/// `n × memory_bytes` of physical memory. A warp access resolving to a
/// frame owned by another device crosses the inter-GPU interconnect and
/// is charged to the `remote` (and possibly `migrate`) stall buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of GPUs (1 = the classic single-GPU machine).
    pub gpus: usize,
    /// The inter-GPU link fabric.
    pub interconnect: InterconnectConfig,
    /// How pages are placed across devices.
    pub placement: PlacementPolicy,
}

impl FleetConfig {
    /// The single-GPU machine every experiment ran on before the fleet
    /// existed; output-isomorphic to the pre-fleet simulator.
    pub fn single() -> Self {
        FleetConfig {
            gpus: 1,
            interconnect: InterconnectConfig::paper(),
            placement: PlacementPolicy::FirstTouch,
        }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::single()
    }
}

/// Everything one simulation run needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// The simulated system.
    pub system: SystemConfig,
    /// Workload scaling.
    pub scale: ScaleConfig,
    /// Which manager to run.
    pub manager: ManagerKind,
    /// The multi-GPU fleet (defaults to a single GPU).
    pub fleet: FleetConfig,
    /// Demand paging mode.
    pub paging: DemandPagingMode,
    /// Master seed (workload streams, fragmentation).
    pub seed: u64,
    /// Optional pre-fragmentation `(fragmentation_index, occupancy)` for
    /// the Section 6.4 stress tests (Mosaic only).
    pub fragmentation: Option<(f64, f64)>,
    /// Optional memory oversubscription factor (working set ÷ GPU
    /// memory). `Some(2.0)` shrinks GPU memory to half the workload's
    /// total reservation (rounded up to a whole large frame), forcing the
    /// demand-paging engine to evict and write back under pressure.
    /// Requires [`DemandPagingMode::OnDemand`].
    pub oversubscription: Option<f64>,
    /// Runtime invariant auditing: sweep every component's invariants
    /// (frame conservation, ownership agreement, TLB coherence — see
    /// `GpuSystem::audit`) each time the simulation crosses this many
    /// cycles, panicking on the first violation. `None` applies the
    /// default: every [`RunConfig::DEFAULT_AUDIT_EVERY`] cycles in builds
    /// with debug assertions, never in release builds (enable there with
    /// the runner's `--audit` flag). `Some(0)` disables auditing outright.
    pub audit_every: Option<u64>,
}

impl RunConfig {
    /// Default audit cadence (in cycles) for builds with debug assertions.
    pub const DEFAULT_AUDIT_EVERY: u64 = 100_000;

    /// A default on-demand run of `manager` at the default scale.
    pub fn new(manager: ManagerKind) -> Self {
        let scale = ScaleConfig::default();
        RunConfig {
            system: SystemConfig::paper_scaled(scale.ws_divisor),
            scale,
            manager,
            fleet: FleetConfig::single(),
            paging: DemandPagingMode::OnDemand,
            seed: 42,
            fragmentation: None,
            oversubscription: None,
            audit_every: None,
        }
    }

    /// Same run with invariant audits every `cycles` cycles (`0` disables
    /// auditing even in debug builds).
    pub fn audited(mut self, cycles: u64) -> Self {
        self.audit_every = Some(cycles);
        self
    }

    /// The audit cadence in effect for this build: the explicit setting if
    /// present, else the debug-build default.
    pub fn effective_audit_every(&self) -> Option<u64> {
        match self.audit_every {
            Some(0) => None,
            Some(n) => Some(n),
            None if cfg!(debug_assertions) => Some(Self::DEFAULT_AUDIT_EVERY),
            None => None,
        }
    }

    /// Same run scaled out to a fleet of `gpus` devices wired by
    /// `topology`. GPU count and SM count weak-scale together: the fleet
    /// has `gpus × sm_count` SMs and `gpus ×` the physical memory.
    /// Placement defaults to first-touch; override it with
    /// [`RunConfig::with_placement`].
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero or exceeds
    /// [`MAX_GPUS`](mosaic_core::placement::MAX_GPUS).
    pub fn multi_gpu(mut self, gpus: usize, topology: Topology) -> Self {
        assert!((1..=MAX_GPUS).contains(&gpus), "fleet size {gpus} out of range 1..={MAX_GPUS}");
        self.fleet.gpus = gpus;
        self.fleet.interconnect.topology = topology;
        self
    }

    /// Same run with a different page-placement policy for the fleet.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.fleet.placement = placement;
        self
    }

    /// Total SMs across the fleet (`gpus × sm_count`): the machine size
    /// the runner partitions across applications.
    pub fn total_sms(&self) -> usize {
        self.fleet.gpus * self.system.sm_count
    }

    /// Same run with the Ideal TLB reference enabled.
    pub fn ideal_tlb(mut self) -> Self {
        self.system.ideal_tlb = true;
        self
    }

    /// Same run with free preloading ("no demand paging overhead").
    pub fn preloaded(mut self) -> Self {
        self.paging = DemandPagingMode::PreloadedFree;
        self
    }

    /// Same run with GPU memory shrunk so the workload oversubscribes it
    /// by `factor` (e.g. `2.0` = working set twice the GPU memory). The
    /// runner derives the actual memory size from the workload's
    /// reservations at launch.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn oversubscribed(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "oversubscription factor must be >= 1.0, got {factor}");
        self.oversubscription = Some(factor);
        self
    }

    /// Same run at a different scale (system memory follows).
    pub fn with_scale(mut self, scale: ScaleConfig) -> Self {
        self.scale = scale;
        self.system.memory_bytes = (3 * 1024 * 1024 * 1024) / u64::from(scale.ws_divisor.max(1));
        self.system.iobus = IoBusConfig::scaled(scale.ws_divisor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_1() {
        let c = SystemConfig::paper();
        assert_eq!(c.sm_count, 30);
        assert_eq!(c.core_clock_mhz, 1020.0);
        assert_eq!(c.l1_tlb.base_entries, 128);
        assert_eq!(c.l1_tlb.large_entries, 16);
        assert_eq!(c.l2_tlb.base_entries, 512);
        assert_eq!(c.l2_tlb.large_entries, 256);
        assert_eq!(c.dram.channels, 6);
        assert_eq!(c.dram.banks_per_channel, 16, "two ranks of eight banks");
        assert_eq!(c.walker_threads, 64);
        assert_eq!(c.walk_cache_entries, 0, "baseline uses a shared L2 TLB instead");
        assert_eq!(c.memory_bytes, 3 * 1024 * 1024 * 1024);
    }

    #[test]
    fn scaled_memory_follows_divisor() {
        let c = SystemConfig::paper_scaled(16);
        assert_eq!(c.memory_bytes, 192 * 1024 * 1024);
    }

    #[test]
    fn manager_labels() {
        assert_eq!(ManagerKind::GpuMmu4K.label(), "GPU-MMU");
        assert_eq!(ManagerKind::mosaic().label(), "Mosaic");
        assert_eq!(ManagerKind::Mosaic(CacConfig::disabled()).label(), "Mosaic (no CAC)");
        assert_eq!(ManagerKind::Mosaic(CacConfig::ideal()).label(), "Mosaic (Ideal CAC)");
        assert_eq!(ManagerKind::Mosaic(CacConfig::with_bulk_copy()).label(), "Mosaic (CAC-BC)");
    }

    #[test]
    fn run_config_builders_compose() {
        let r = RunConfig::new(ManagerKind::GpuMmu4K).ideal_tlb().preloaded();
        assert!(r.system.ideal_tlb);
        assert_eq!(r.paging, DemandPagingMode::PreloadedFree);
    }

    #[test]
    fn oversubscription_builder_sets_the_factor() {
        let r = RunConfig::new(ManagerKind::GpuMmu4K).oversubscribed(2.0);
        assert_eq!(r.oversubscription, Some(2.0));
        assert!(RunConfig::new(ManagerKind::GpuMmu4K).oversubscription.is_none());
    }

    #[test]
    #[should_panic(expected = "oversubscription factor")]
    fn oversubscription_below_one_is_rejected() {
        let _ = RunConfig::new(ManagerKind::GpuMmu4K).oversubscribed(0.5);
    }

    #[test]
    fn fleet_defaults_to_one_gpu_and_builders_compose() {
        let base = RunConfig::new(ManagerKind::GpuMmu4K);
        assert_eq!(base.fleet, FleetConfig::single());
        assert_eq!(base.fleet.gpus, 1);
        let r = base
            .multi_gpu(4, Topology::Ring)
            .with_placement(PlacementPolicy::MigrateOnThreshold { threshold: 8 });
        assert_eq!(r.fleet.gpus, 4);
        assert_eq!(r.fleet.interconnect.topology, Topology::Ring);
        assert_eq!(r.fleet.placement, PlacementPolicy::MigrateOnThreshold { threshold: 8 });
        // The rest of the fleet config keeps the paper link parameters.
        assert_eq!(r.fleet.interconnect.link_latency, InterconnectConfig::paper().link_latency);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_fleet_is_rejected() {
        let _ = RunConfig::new(ManagerKind::GpuMmu4K).multi_gpu(0, Topology::FullyConnected);
    }
}
