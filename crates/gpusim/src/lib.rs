//! Full-system GPU simulator for the Mosaic reproduction.
//!
//! Wires every substrate together into the system of Table 1 and Figure 2:
//!
//! ```text
//!  SM ─ L1 TLB ─ L1$ ─┐                       ┌─ DRAM channel 0
//!  SM ─ L1 TLB ─ L1$ ─┤                       ├─ DRAM channel 1
//!   ⋮        (30 SMs) ├─ crossbar ─ L2$/L2TLB ┤      ⋮
//!  SM ─ L1 TLB ─ L1$ ─┘        highly-threaded├─ DRAM channel 5
//!                              page-table walker
//!                                      │
//!                         memory manager (GPU-MMU / Mosaic)
//!                                      │
//!                            system I/O bus (PCIe)
//! ```
//!
//! * [`config`] — [`SystemConfig`]: the paper's simulated system
//!   (Table 1) plus the experiment knobs (ideal TLB, preload, manager
//!   selection, fragmentation injection).
//! * [`system`] — [`GpuSystem`]: the [`mosaic_gpu::MemoryInterface`]
//!   implementation that charges address translation (L1/L2 TLB, page
//!   walks), data access (L1/L2 caches, DRAM), demand paging
//!   (far-faults over the I/O bus), and management events (splinters →
//!   TLB shootdowns, compaction → DRAM copies and conservative whole-GPU
//!   stalls).
//! * [`runner`] — workload execution: SM partitioning, the
//!   smallest-clock-first scheduling loop, per-application IPC, and the
//!   weighted-speedup metric of Section 5.
//! * [`shard`] — intra-run parallelism (`--sim-threads N`): lanes of
//!   (SM, L1 TLB, L1 cache) speculate ahead on worker threads with undo
//!   journals, and their effects commit to the single-threaded shared
//!   stack in canonical scheduling order — bit-identical to the serial
//!   engine at any worker count (DESIGN.md §12).
//!
//! `RunConfig::multi_gpu(n, topology)` scales the machine out to an
//! indexed fleet: each device replicates the full stack above, a warp
//! access resolving to a remote device's 2MB region crosses the
//! inter-GPU interconnect, and page-placement policies (first-touch,
//! replicate-read-only, migrate-on-threshold) decide residency
//! (DESIGN.md §14).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod runner;
pub mod shard;
pub mod system;

pub use config::{DemandPagingMode, FleetConfig, ManagerKind, RunConfig, SystemConfig};
pub use mosaic_core::placement::{PlacementPolicy, MAX_GPUS};
pub use mosaic_mem::{InterconnectConfig, Topology};
pub use runner::{
    run_alone_baselines, run_workload, sm_share, weighted_speedup, AppResult, RunResult,
};
pub use shard::{set_sim_threads, sim_threads};
pub use system::{GpuSystem, SystemStats};
